//! Schedule rewrites implementing each evasion technique.

use liberate_packet::ipv4::IpOption;
use liberate_packet::mutate::ByteRegion;
use liberate_packet::tcp::TcpFlags;

use crate::schedule::{Craft, FragPlan, Schedule, ScheduledPacket, Step};

use super::Technique;

/// Everything a technique needs to know about the flow being evaded.
#[derive(Debug, Clone)]
pub struct EvasionContext {
    /// Matching fields found by characterization: (client data packet
    /// ordinal, byte range within that packet's payload).
    pub matching_fields: Vec<ByteRegion>,
    /// Decoy payload for inert insertions: a valid request for an
    /// innocuous traffic class A (Fig. 2), carrying none of the flow's
    /// matching fields.
    pub decoy: Vec<u8>,
    /// TTL that reaches the middlebox but expires before the server
    /// (from localization, §5.2).
    pub middlebox_ttl: u8,
}

impl EvasionContext {
    /// A context with no characterization: assume the first packet
    /// matches somewhere in its middle.
    pub fn blind(decoy: Vec<u8>, middlebox_ttl: u8) -> EvasionContext {
        EvasionContext {
            matching_fields: Vec::new(),
            decoy,
            middlebox_ttl,
        }
    }

    /// The primary matching field, defaulting to the middle of packet 0.
    fn primary_field(&self, packet_len: usize) -> (usize, std::ops::Range<usize>) {
        match self.matching_fields.first() {
            Some(r) => (r.packet, r.range.clone()),
            None => {
                let mid = (packet_len / 2).max(1);
                (0, mid.saturating_sub(1)..(mid + 1).min(packet_len))
            }
        }
    }
}

/// Split `payload` into `n` chunks such that `field` crosses the boundary
/// between the last two chunks. Returns (relative offset, chunk) pairs.
pub fn split_across_field(
    payload: &[u8],
    field: &std::ops::Range<usize>,
    n: usize,
) -> Vec<(usize, Vec<u8>)> {
    let len = payload.len();
    if len < 2 || n < 2 {
        return vec![(0, payload.to_vec())];
    }
    // The final boundary lands inside the field (or mid-payload when the
    // field is degenerate/out of range).
    let mut mid = (field.start + field.end) / 2;
    if mid == 0 || mid >= len {
        mid = len / 2;
    }
    mid = mid.clamp(1, len - 1);

    // Divide [0, mid) into n-1 boundaries as evenly as possible.
    let head_chunks = (n - 1).min(mid);
    let mut cuts = Vec::with_capacity(head_chunks + 1);
    for i in 1..head_chunks {
        cuts.push(i * mid / head_chunks);
    }
    cuts.push(mid);
    cuts.dedup();

    let mut out = Vec::new();
    let mut prev = 0usize;
    for cut in cuts {
        if cut > prev {
            out.push((prev, payload[prev..cut].to_vec()));
            prev = cut;
        }
    }
    if prev < len {
        out.push((prev, payload[prev..].to_vec()));
    }
    out
}

/// TCP window value stamped on lib·erate's own inert RSTs so that
/// captures can distinguish them from middlebox-injected RSTs.
pub const LIBERATE_RST_WINDOW: u16 = 0x1bee;

/// Locate the step index and payload of the `ordinal`-th data packet.
fn data_step(schedule: &Schedule, ordinal: usize) -> Option<usize> {
    schedule.data_packet_indices().get(ordinal).copied()
}

/// Split a payload into everything-but-the-last-byte and the last byte
/// (for the flush-after-match techniques).
fn holdback_split(payload: &[u8]) -> (Vec<u8>, Vec<u8>) {
    if payload.len() < 2 {
        return (payload.to_vec(), Vec::new());
    }
    let cut = payload.len() - 1;
    (payload[..cut].to_vec(), payload[cut..].to_vec())
}

fn inert_craft(technique: &Technique, mb_ttl: u8) -> Option<Craft> {
    use Technique::*;
    let craft = match technique {
        InertLowTtl => Craft {
            ttl: Some(mb_ttl),
            ..Craft::default()
        },
        InertIpInvalidVersion => Craft {
            ip_version: Some(6),
            ..Craft::default()
        },
        InertIpInvalidHeaderLength => Craft {
            ip_ihl: Some(3),
            ..Craft::default()
        },
        InertIpTotalLengthLong => Craft {
            ip_total_length_delta: Some(400),
            ..Craft::default()
        },
        InertIpTotalLengthShort => Craft {
            ip_total_length_delta: Some(-6),
            ..Craft::default()
        },
        InertIpWrongProtocol => Craft {
            ip_protocol: Some(liberate_packet::ipv4::protocol::UNASSIGNED),
            ..Craft::default()
        },
        InertIpWrongChecksum => Craft {
            ip_bad_checksum: true,
            ..Craft::default()
        },
        InertIpInvalidOptions => Craft {
            ip_options: vec![IpOption::InvalidOverrun {
                kind: 0x99,
                claimed_len: 40,
            }],
            ..Craft::default()
        },
        InertIpDeprecatedOptions => Craft {
            ip_options: vec![IpOption::StreamId(6)],
            ..Craft::default()
        },
        InertTcpWrongSeq => Craft {
            seq_delta: 1_000_000,
            ..Craft::default()
        },
        InertTcpWrongChecksum => Craft {
            tcp_bad_checksum: true,
            ..Craft::default()
        },
        InertTcpNoAckFlag => Craft {
            tcp_flags: Some(TcpFlags::PSH_ONLY),
            ..Craft::default()
        },
        // Below the 20-byte minimum: no compliant stack can parse it.
        // (An *overrunning* offset caps at 60 bytes, which a full-MTU
        // decoy payload would render structurally valid again.)
        InertTcpInvalidDataOffset => Craft {
            tcp_data_offset: Some(3),
            ..Craft::default()
        },
        InertTcpInvalidFlags => Craft {
            tcp_flags: Some(TcpFlags::XMAS),
            ..Craft::default()
        },
        InertUdpBadChecksum => Craft {
            udp_bad_checksum: true,
            ..Craft::default()
        },
        InertUdpLengthLong => Craft {
            udp_length_delta: Some(40),
            ..Craft::default()
        },
        InertUdpLengthShort => Craft {
            udp_length_delta: Some(-4),
            ..Craft::default()
        },
        _ => return None,
    };
    Some(craft)
}

/// Apply `technique` to `schedule`, producing the rewritten schedule.
pub fn apply(technique: &Technique, schedule: &Schedule, ctx: &EvasionContext) -> Option<Schedule> {
    use Technique::*;
    let proto = schedule.protocol?;
    if !technique.applicable(proto) {
        return None;
    }
    let mut out = schedule.clone();
    let data_indices = schedule.data_packet_indices();
    if data_indices.is_empty() {
        return None;
    }

    // Resolve the matching packet once. `data_packet_indices` only ever
    // points at `Step::Packet` entries; bail out rather than panic if that
    // invariant is ever broken.
    let Step::Packet(first_data) = &schedule.steps[data_indices[0]] else {
        return None;
    };
    let first_payload_len = first_data.payload.len();
    let (field_ordinal, field_range) = ctx.primary_field(first_payload_len);
    let match_step = data_step(schedule, field_ordinal).unwrap_or(data_indices[0]);
    let Step::Packet(match_packet) = &schedule.steps[match_step] else {
        return None;
    };
    let (match_offset, match_payload) = (match_packet.offset, match_packet.payload.clone());

    match technique {
        // ----- Inert insertion: decoy just before the matching packet.
        InertLowTtl
        | InertIpInvalidVersion
        | InertIpInvalidHeaderLength
        | InertIpTotalLengthLong
        | InertIpTotalLengthShort
        | InertIpWrongProtocol
        | InertIpWrongChecksum
        | InertIpInvalidOptions
        | InertIpDeprecatedOptions
        | InertTcpWrongSeq
        | InertTcpWrongChecksum
        | InertTcpNoAckFlag
        | InertTcpInvalidDataOffset
        | InertTcpInvalidFlags
        | InertUdpBadChecksum
        | InertUdpLengthLong
        | InertUdpLengthShort => {
            let craft = inert_craft(technique, ctx.middlebox_ttl)?;
            let decoy = ScheduledPacket::inert(match_offset, ctx.decoy.clone(), craft);
            out.steps.insert(match_step, Step::Packet(decoy));
        }

        // ----- Splitting.
        TcpSegmentSplit { segments } => {
            let parts = split_across_field(&match_payload, &field_range, *segments);
            let new_steps: Vec<Step> = parts
                .into_iter()
                .map(|(rel, chunk)| {
                    Step::Packet(ScheduledPacket::data(match_offset + rel as u64, chunk))
                })
                .collect();
            out.steps.splice(match_step..=match_step, new_steps);
        }
        IpFragmentSplit { pieces } => {
            if let Step::Packet(p) = &mut out.steps[match_step] {
                p.fragment = Some(FragPlan {
                    pieces: *pieces,
                    reverse: false,
                    boundary: Some((field_range.start + field_range.end) / 2),
                });
            }
        }

        // ----- Reordering.
        TcpSegmentReorder { segments } => {
            let parts = split_across_field(&match_payload, &field_range, *segments);
            let new_steps: Vec<Step> = parts
                .into_iter()
                .rev()
                .map(|(rel, chunk)| {
                    Step::Packet(ScheduledPacket::data(match_offset + rel as u64, chunk))
                })
                .collect();
            out.steps.splice(match_step..=match_step, new_steps);
        }
        IpFragmentReorder { pieces } => {
            if let Step::Packet(p) = &mut out.steps[match_step] {
                p.fragment = Some(FragPlan {
                    pieces: *pieces,
                    reverse: true,
                    boundary: Some((field_range.start + field_range.end) / 2),
                });
            }
        }
        UdpReorder => {
            if data_indices.len() < 2 {
                return None;
            }
            out.steps.swap(data_indices[0], data_indices[1]);
        }

        // ----- Flushing. The "after match" variants hold back the last
        // byte of the matching packet: the classifier sees (and matches)
        // everything up front, while the request only completes — and the
        // response only flows — after the middlebox's state has been
        // flushed (Fig. 2(f)).
        PauseAfterMatch(d) => {
            let (head, tail) = holdback_split(&match_payload);
            let new_steps = vec![
                Step::Packet(ScheduledPacket::data(match_offset, head)),
                Step::Pause(*d),
                Step::Packet(ScheduledPacket::data(
                    match_offset + match_payload.len() as u64 - 1,
                    tail,
                )),
            ];
            out.steps.splice(match_step..=match_step, new_steps);
        }
        PauseBeforeMatch(d) => {
            out.steps.insert(match_step, Step::Pause(*d));
        }
        TtlRstAfterMatch => {
            let (head, tail) = holdback_split(&match_payload);
            let rst = ScheduledPacket::inert(
                match_offset + head.len() as u64,
                Vec::new(),
                Craft {
                    ttl: Some(ctx.middlebox_ttl),
                    tcp_flags: Some(TcpFlags::RST),
                    tcp_window: Some(LIBERATE_RST_WINDOW),
                    ..Craft::default()
                },
            );
            let new_steps = vec![
                Step::Packet(ScheduledPacket::data(match_offset, head)),
                Step::Packet(rst),
                // Wait out any (shortened) result timeout.
                Step::Pause(crate::config::LiberateConfig::default().rst_flush_pause),
                Step::Packet(ScheduledPacket::data(
                    match_offset + match_payload.len() as u64 - 1,
                    tail,
                )),
            ];
            out.steps.splice(match_step..=match_step, new_steps);
        }
        TtlRstBeforeMatch => {
            let rst = ScheduledPacket::inert(
                match_offset,
                Vec::new(),
                Craft {
                    ttl: Some(ctx.middlebox_ttl),
                    tcp_flags: Some(TcpFlags::RST),
                    tcp_window: Some(LIBERATE_RST_WINDOW),
                    ..Craft::default()
                },
            );
            out.steps.insert(match_step, Step::Packet(rst));
        }

        // ----- Server-supported dummy prefix.
        DummyPrefixData { bytes } => {
            let dummy = vec![b'#'; *bytes];
            for step in &mut out.steps {
                if let Step::Packet(p) = step {
                    p.offset += *bytes as u64;
                }
            }
            out.steps
                .insert(0, Step::Packet(ScheduledPacket::data(0, dummy)));
            out.server_skip_prefix = *bytes as u64;
        }
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use liberate_traces::recorded::{RecordedTrace, TraceMessage, TraceProtocol};

    fn trace() -> RecordedTrace {
        let mut t = RecordedTrace::new("t", TraceProtocol::Tcp, 80);
        t.push_message(TraceMessage::client(
            &b"GET / HTTP/1.1\r\nHost: www.target.example\r\n\r\n"[..],
        ));
        t.push_message(TraceMessage::server(&b"HTTP/1.1 200 OK\r\n\r\nbody"[..]));
        t
    }

    fn ctx() -> EvasionContext {
        let req = trace().messages[0].payload.clone();
        let host = liberate_traces::http::find(&req, b"www.target.example").unwrap();
        EvasionContext {
            matching_fields: vec![ByteRegion::new(0, host..host + 18)],
            decoy: b"GET / HTTP/1.1\r\nHost: www.example.org\r\n\r\n".to_vec(),
            middlebox_ttl: 3,
        }
    }

    #[test]
    fn split_crosses_the_field() {
        let payload = trace().messages[0].payload.clone();
        let field = ctx().matching_fields[0].range.clone();
        for n in 2..=6 {
            let parts = split_across_field(&payload, &field, n);
            assert!(parts.len() >= 2, "n={n}");
            // Reassembles to the original.
            let mut whole = Vec::new();
            for (off, chunk) in &parts {
                assert_eq!(*off, whole.len());
                whole.extend_from_slice(chunk);
            }
            assert_eq!(whole, payload);
            // The final boundary lies strictly inside the field.
            let last_boundary = parts.last().unwrap().0;
            assert!(
                field.start < last_boundary && last_boundary < field.end,
                "n={n}: boundary {last_boundary} not inside {field:?}"
            );
        }
    }

    #[test]
    fn split_degenerate_inputs() {
        assert_eq!(split_across_field(b"a", &(0..1), 2).len(), 1);
        let parts = split_across_field(b"abcdef", &(100..200), 2);
        let whole: Vec<u8> = parts.iter().flat_map(|(_, c)| c.clone()).collect();
        assert_eq!(whole, b"abcdef");
    }

    #[test]
    fn inert_inserts_before_match_without_advancing_stream() {
        let sched = Schedule::from_trace(&trace());
        let out = Technique::InertTcpWrongChecksum
            .apply(&sched, &ctx())
            .unwrap();
        assert_eq!(out.inert_packet_count(), 1);
        assert_eq!(out.client_bytes(), sched.client_bytes());
        // The inert decoy is the first packet and claims the same offset.
        match (&out.steps[0], &out.steps[1]) {
            (Step::Packet(inert), Step::Packet(real)) => {
                assert!(!inert.counts);
                assert!(real.counts);
                assert_eq!(inert.offset, real.offset);
                assert!(inert.craft.tcp_bad_checksum);
            }
            other => panic!("unexpected steps: {other:?}"),
        }
    }

    #[test]
    fn every_inert_tcp_variant_produces_distinct_craft() {
        let sched = Schedule::from_trace(&trace());
        let mut crafts = std::collections::HashSet::new();
        for t in Technique::table3_rows() {
            if t.category() == super::super::Category::InertInsertion
                && t.applicable(TraceProtocol::Tcp)
            {
                let out = t.apply(&sched, &ctx()).unwrap();
                let craft = out
                    .steps
                    .iter()
                    .find_map(|s| match s {
                        Step::Packet(p) if !p.counts => Some(format!("{:?}", p.craft)),
                        _ => None,
                    })
                    .unwrap();
                assert!(crafts.insert(craft), "{t:?} duplicates another craft");
            }
        }
        assert_eq!(crafts.len(), 14); // 9 IP + 5 TCP variants
    }

    #[test]
    fn segment_split_and_reorder() {
        let sched = Schedule::from_trace(&trace());
        let split = Technique::TcpSegmentSplit { segments: 3 }
            .apply(&sched, &ctx())
            .unwrap();
        let offsets: Vec<u64> = split
            .steps
            .iter()
            .filter_map(|s| match s {
                Step::Packet(p) => Some(p.offset),
                _ => None,
            })
            .collect();
        assert_eq!(offsets.len(), 3);
        assert!(offsets.windows(2).all(|w| w[0] < w[1]));
        assert_eq!(split.client_bytes(), sched.client_bytes());

        let reorder = Technique::TcpSegmentReorder { segments: 2 }
            .apply(&sched, &ctx())
            .unwrap();
        let offsets: Vec<u64> = reorder
            .steps
            .iter()
            .filter_map(|s| match s {
                Step::Packet(p) => Some(p.offset),
                _ => None,
            })
            .collect();
        assert_eq!(offsets.len(), 2);
        assert!(offsets[0] > offsets[1], "reversed order");
    }

    #[test]
    fn pause_and_rst_placement() {
        let sched = Schedule::from_trace(&trace());
        let after = Technique::PauseAfterMatch(std::time::Duration::from_secs(130))
            .apply(&sched, &ctx())
            .unwrap();
        assert!(matches!(after.steps[1], Step::Pause(_)));

        let before = Technique::PauseBeforeMatch(std::time::Duration::from_secs(130))
            .apply(&sched, &ctx())
            .unwrap();
        assert!(matches!(before.steps[0], Step::Pause(_)));

        let rst_b = Technique::TtlRstBeforeMatch.apply(&sched, &ctx()).unwrap();
        match &rst_b.steps[0] {
            Step::Packet(p) => {
                assert!(!p.counts);
                assert_eq!(p.craft.tcp_flags, Some(TcpFlags::RST));
                assert_eq!(p.craft.ttl, Some(3));
            }
            other => panic!("{other:?}"),
        }

        let rst_a = Technique::TtlRstAfterMatch.apply(&sched, &ctx()).unwrap();
        assert!(matches!(&rst_a.steps[1], Step::Packet(p) if !p.counts));
        assert!(matches!(rst_a.steps[2], Step::Pause(_)));
    }

    #[test]
    fn udp_techniques_rejected_on_tcp() {
        let sched = Schedule::from_trace(&trace());
        assert!(Technique::InertUdpBadChecksum
            .apply(&sched, &ctx())
            .is_none());
        assert!(Technique::UdpReorder.apply(&sched, &ctx()).is_none());
    }

    #[test]
    fn udp_reorder_swaps_first_two() {
        let mut t = RecordedTrace::new("u", TraceProtocol::Udp, 3478);
        t.push_message(TraceMessage::client(&b"first"[..]));
        t.push_message(TraceMessage::client(&b"second"[..]));
        let sched = Schedule::from_trace(&t);
        let out = Technique::UdpReorder.apply(&sched, &ctx()).unwrap();
        match &out.steps[0] {
            Step::Packet(p) => assert_eq!(p.payload, b"second"),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn dummy_prefix_shifts_offsets_and_sets_skip() {
        let sched = Schedule::from_trace(&trace());
        let out = Technique::DummyPrefixData { bytes: 1 }
            .apply(&sched, &ctx())
            .unwrap();
        assert_eq!(out.server_skip_prefix, 1);
        match (&out.steps[0], &out.steps[1]) {
            (Step::Packet(dummy), Step::Packet(real)) => {
                assert_eq!(dummy.offset, 0);
                assert_eq!(dummy.payload.len(), 1);
                assert!(dummy.counts);
                assert_eq!(real.offset, 1);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn fragment_plans_attached() {
        let sched = Schedule::from_trace(&trace());
        let out = Technique::IpFragmentReorder { pieces: 2 }
            .apply(&sched, &ctx())
            .unwrap();
        match &out.steps[0] {
            Step::Packet(p) => {
                let f = p.fragment.as_ref().unwrap();
                assert!(f.reverse);
                assert_eq!(f.pieces, 2);
                assert!(f.boundary.is_some());
            }
            other => panic!("{other:?}"),
        }
    }
}
