//! The classifier-evasion taxonomy (§4.3, Table 3).
//!
//! Four families, all exploiting the gap between what a middlebox sees and
//! what the endpoints agree on:
//!
//! 1. **Inert packet insertion** — a decoy packet the classifier processes
//!    but the server never acts on (wrong checksums, bogus lengths, low
//!    TTLs, invalid flags, ...).
//! 2. **Payload splitting** — divide the payload so matching fields cross
//!    packet/fragment boundaries.
//! 3. **Payload reordering** — additionally deliver those pieces out of
//!    order.
//! 4. **Classification flushing** — make the middlebox forget (pauses
//!    that outlive its state, inert RSTs that tear state down).
//!
//! Every variant is a pure rewrite of a [`Schedule`]; the replay engine
//! and the deployment proxy both consume the same rewrites.

mod transform;

pub use transform::{EvasionContext, LIBERATE_RST_WINDOW};

/// Test-visible re-export of the splitter for property tests.
pub use transform::split_across_field as split_across_field_for_tests;

use std::time::Duration;

use liberate_traces::recorded::TraceProtocol;

use crate::schedule::Schedule;

/// The four technique families of Table 2.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Category {
    InertInsertion,
    Splitting,
    Reordering,
    Flushing,
}

impl Category {
    pub fn name(self) -> &'static str {
        match self {
            Category::InertInsertion => "Inert packet insertion",
            Category::Splitting => "Payload splitting",
            Category::Reordering => "Payload reordering",
            Category::Flushing => "Classification flushing",
        }
    }
}

/// Every evasion technique in the taxonomy. Variants map one-to-one onto
/// the rows of Table 3 (plus [`Technique::DummyPrefixData`], the
/// server-supported extension from §1/§7).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Technique {
    // --- Inert packet insertion: IP-level crafting ---
    /// TTL large enough to reach the classifier, too small to reach the
    /// server.
    InertLowTtl,
    /// IP version field not 4.
    InertIpInvalidVersion,
    /// IHL below the minimum header size.
    InertIpInvalidHeaderLength,
    /// Total length claiming more bytes than sent.
    InertIpTotalLengthLong,
    /// Total length claiming fewer bytes than sent.
    InertIpTotalLengthShort,
    /// Unassigned IP protocol number over a valid TCP segment.
    InertIpWrongProtocol,
    /// Corrupted IP header checksum.
    InertIpWrongChecksum,
    /// Structurally invalid IP options.
    InertIpInvalidOptions,
    /// Deprecated (RFC 6814) IP options.
    InertIpDeprecatedOptions,
    // --- Inert packet insertion: TCP-level crafting ---
    /// Sequence number far outside the receive window.
    InertTcpWrongSeq,
    /// Corrupted TCP checksum.
    InertTcpWrongChecksum,
    /// Data segment without the ACK flag.
    InertTcpNoAckFlag,
    /// Data offset overrunning the segment.
    InertTcpInvalidDataOffset,
    /// SYN+FIN+RST "christmas tree" flags.
    InertTcpInvalidFlags,
    // --- Inert packet insertion: UDP-level crafting ---
    /// Corrupted UDP checksum.
    InertUdpBadChecksum,
    /// UDP length claiming more bytes than sent.
    InertUdpLengthLong,
    /// UDP length claiming fewer bytes than sent.
    InertUdpLengthShort,
    // --- Payload splitting ---
    /// Split matching TCP payload across `segments` segments.
    TcpSegmentSplit { segments: usize },
    /// Split the matching packet into IP fragments.
    IpFragmentSplit { pieces: usize },
    // --- Payload reordering ---
    /// Fragment the matching packet and send fragments in reverse.
    IpFragmentReorder { pieces: usize },
    /// Split matching TCP payload and send the segments in reverse.
    TcpSegmentReorder { segments: usize },
    /// Swap the order of the first two UDP datagrams.
    UdpReorder,
    // --- Classification flushing ---
    /// Idle pause inserted after the matching packet.
    PauseAfterMatch(Duration),
    /// Idle pause inserted before the matching packet.
    PauseBeforeMatch(Duration),
    /// TTL-limited inert RST sent after the matching packet, then a short
    /// pause (Table 3 row "TTL-limited RST packet (a)").
    TtlRstAfterMatch,
    /// TTL-limited inert RST sent before the matching packet (row "(b)").
    TtlRstBeforeMatch,
    // --- Beyond Table 3: bilateral extension ---
    /// Prepend real dummy data the server agrees to skip (requires
    /// server-side support; evades the testbed, T-Mobile, AT&T, and the
    /// GFC per §1).
    DummyPrefixData { bytes: usize },
}

impl Technique {
    /// The 26 rows of Table 3, in the paper's order.
    // lint: allow(taxonomy-exhaustiveness: DummyPrefixData) beyond-Table-3
    // server-supported extension (§1/§7); deliberately not a Table 3 row.
    pub fn table3_rows() -> Vec<Technique> {
        use Technique::*;
        vec![
            InertLowTtl,
            InertIpInvalidVersion,
            InertIpInvalidHeaderLength,
            InertIpTotalLengthLong,
            InertIpTotalLengthShort,
            InertIpWrongProtocol,
            InertIpWrongChecksum,
            InertIpInvalidOptions,
            InertIpDeprecatedOptions,
            InertTcpWrongSeq,
            InertTcpWrongChecksum,
            InertTcpNoAckFlag,
            InertTcpInvalidDataOffset,
            InertTcpInvalidFlags,
            InertUdpBadChecksum,
            InertUdpLengthLong,
            InertUdpLengthShort,
            IpFragmentSplit { pieces: 2 },
            TcpSegmentSplit { segments: 2 },
            IpFragmentReorder { pieces: 2 },
            TcpSegmentReorder { segments: 2 },
            UdpReorder,
            PauseAfterMatch(Duration::from_secs(130)),
            PauseBeforeMatch(Duration::from_secs(130)),
            TtlRstAfterMatch,
            TtlRstBeforeMatch,
        ]
    }

    /// Table 3's "Prot." column.
    pub fn protocol_row(&self) -> &'static str {
        use Technique::*;
        match self {
            InertLowTtl
            | InertIpInvalidVersion
            | InertIpInvalidHeaderLength
            | InertIpTotalLengthLong
            | InertIpTotalLengthShort
            | InertIpWrongProtocol
            | InertIpWrongChecksum
            | InertIpInvalidOptions
            | InertIpDeprecatedOptions
            | IpFragmentSplit { .. }
            | IpFragmentReorder { .. }
            | PauseAfterMatch(_)
            | PauseBeforeMatch(_) => "IP",
            InertTcpWrongSeq
            | InertTcpWrongChecksum
            | InertTcpNoAckFlag
            | InertTcpInvalidDataOffset
            | InertTcpInvalidFlags
            | TcpSegmentSplit { .. }
            | TcpSegmentReorder { .. }
            | TtlRstAfterMatch
            | TtlRstBeforeMatch => "TCP",
            InertUdpBadChecksum | InertUdpLengthLong | InertUdpLengthShort | UdpReorder => "UDP",
            DummyPrefixData { .. } => "TCP",
        }
    }

    /// Table 3's technique description.
    pub fn description(&self) -> String {
        use Technique::*;
        match self {
            InertLowTtl => "Lower TTL to only reach classifier".into(),
            InertIpInvalidVersion => "Invalid Version".into(),
            InertIpInvalidHeaderLength => "Invalid Header Length".into(),
            InertIpTotalLengthLong => "Total Length longer than payload".into(),
            InertIpTotalLengthShort => "Total Length shorter than payload".into(),
            InertIpWrongProtocol => "Wrong Protocol".into(),
            InertIpWrongChecksum => "Wrong Checksum".into(),
            InertIpInvalidOptions => "Invalid Options".into(),
            InertIpDeprecatedOptions => "Deprecated Options".into(),
            InertTcpWrongSeq => "Wrong Sequence Number".into(),
            InertTcpWrongChecksum => "Wrong Checksum".into(),
            InertTcpNoAckFlag => "ACK flag not set".into(),
            InertTcpInvalidDataOffset => "Invalid Data Offset".into(),
            InertTcpInvalidFlags => "Invalid flag combination".into(),
            InertUdpBadChecksum => "Invalid Checksum".into(),
            InertUdpLengthLong => "Length longer than payload".into(),
            InertUdpLengthShort => "Length shorter than payload".into(),
            IpFragmentSplit { pieces } => format!("Break packet into {pieces} fragments"),
            TcpSegmentSplit { segments } => format!("Break packet into {segments} segments"),
            IpFragmentReorder { .. } => "Fragmented packet, out-of-order".into(),
            TcpSegmentReorder { .. } => "Segmented packet, out-of-order".into(),
            UdpReorder => "UDP packets out-of-order".into(),
            PauseAfterMatch(d) => format!("Pause for {} sec. (after match)", d.as_secs()),
            PauseBeforeMatch(d) => format!("Pause for {} sec. (before match)", d.as_secs()),
            TtlRstAfterMatch => "TTL-limited RST packet (a)".into(),
            TtlRstBeforeMatch => "TTL-limited RST packet (b)".into(),
            DummyPrefixData { bytes } => format!("Dummy prefix data ({bytes} B, server-side)"),
        }
    }

    pub fn category(&self) -> Category {
        use Technique::*;
        match self {
            InertLowTtl
            | InertIpInvalidVersion
            | InertIpInvalidHeaderLength
            | InertIpTotalLengthLong
            | InertIpTotalLengthShort
            | InertIpWrongProtocol
            | InertIpWrongChecksum
            | InertIpInvalidOptions
            | InertIpDeprecatedOptions
            | InertTcpWrongSeq
            | InertTcpWrongChecksum
            | InertTcpNoAckFlag
            | InertTcpInvalidDataOffset
            | InertTcpInvalidFlags
            | InertUdpBadChecksum
            | InertUdpLengthLong
            | InertUdpLengthShort => Category::InertInsertion,
            TcpSegmentSplit { .. } | IpFragmentSplit { .. } | DummyPrefixData { .. } => {
                Category::Splitting
            }
            IpFragmentReorder { .. } | TcpSegmentReorder { .. } | UdpReorder => {
                Category::Reordering
            }
            PauseAfterMatch(_) | PauseBeforeMatch(_) | TtlRstAfterMatch | TtlRstBeforeMatch => {
                Category::Flushing
            }
        }
    }

    /// Whether this technique makes sense for a flow of `proto`.
    ///
    /// Deliberately wildcard-free: adding a 27th technique must force a
    /// decision here (enforced by `liberate-lint`'s
    /// taxonomy-exhaustiveness rule and the compiler's match check).
    pub fn applicable(&self, proto: TraceProtocol) -> bool {
        use Technique::*;
        match self {
            InertTcpWrongSeq
            | InertTcpWrongChecksum
            | InertTcpNoAckFlag
            | InertTcpInvalidDataOffset
            | InertTcpInvalidFlags
            | TcpSegmentSplit { .. }
            | TcpSegmentReorder { .. }
            | TtlRstAfterMatch
            | TtlRstBeforeMatch
            | DummyPrefixData { .. } => proto == TraceProtocol::Tcp,
            InertUdpBadChecksum | InertUdpLengthLong | InertUdpLengthShort | UdpReorder => {
                proto == TraceProtocol::Udp
            }
            // IP-level techniques apply to both transports.
            InertLowTtl
            | InertIpInvalidVersion
            | InertIpInvalidHeaderLength
            | InertIpTotalLengthLong
            | InertIpTotalLengthShort
            | InertIpWrongProtocol
            | InertIpWrongChecksum
            | InertIpInvalidOptions
            | InertIpDeprecatedOptions
            | IpFragmentSplit { .. }
            | IpFragmentReorder { .. }
            | PauseAfterMatch(_)
            | PauseBeforeMatch(_) => true,
        }
    }

    /// Whether the technique only works with cooperation from the server
    /// application.
    pub fn requires_server_support(&self) -> bool {
        matches!(self, Technique::DummyPrefixData { .. })
    }

    /// Table 2's per-flow overhead class.
    ///
    /// A single wildcard-free match on the variant (rather than
    /// dispatching through [`Technique::category`]) so a new technique
    /// cannot silently inherit another family's overhead class.
    pub fn overhead(&self) -> Overhead {
        use Technique::*;
        match self {
            InertLowTtl
            | InertIpInvalidVersion
            | InertIpInvalidHeaderLength
            | InertIpTotalLengthLong
            | InertIpTotalLengthShort
            | InertIpWrongProtocol
            | InertIpWrongChecksum
            | InertIpInvalidOptions
            | InertIpDeprecatedOptions
            | InertTcpWrongSeq
            | InertTcpWrongChecksum
            | InertTcpNoAckFlag
            | InertTcpInvalidDataOffset
            | InertTcpInvalidFlags
            | InertUdpBadChecksum
            | InertUdpLengthLong
            | InertUdpLengthShort => Overhead::InertPackets(1),
            TcpSegmentSplit { segments } => Overhead::ExtraHeaders(segments - 1),
            IpFragmentSplit { pieces } => Overhead::ExtraHeaders(pieces - 1),
            TcpSegmentReorder { segments } => Overhead::ExtraHeaders(segments - 1),
            IpFragmentReorder { pieces } => Overhead::ExtraHeaders(pieces - 1),
            UdpReorder => Overhead::ExtraHeaders(0),
            PauseAfterMatch(d) | PauseBeforeMatch(d) => Overhead::PauseSeconds(d.as_secs()),
            TtlRstAfterMatch | TtlRstBeforeMatch => Overhead::InertPackets(1),
            DummyPrefixData { bytes } => Overhead::PrefixBytes(*bytes),
        }
    }

    /// Rewrite a schedule to apply this technique. Returns `None` when
    /// the technique does not apply (wrong transport, empty schedule).
    pub fn apply(&self, schedule: &Schedule, ctx: &EvasionContext) -> Option<Schedule> {
        transform::apply(self, schedule, ctx)
    }
}

/// Table 2's overhead classes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Overhead {
    /// k extra inert packets.
    InertPackets(usize),
    /// k extra packet headers (~40 bytes each) from splitting/reordering.
    ExtraHeaders(usize),
    /// t seconds of added latency.
    PauseSeconds(u64),
    /// n bytes of dummy prefix data.
    PrefixBytes(usize),
}

impl Overhead {
    /// A comparable cost estimate in "microseconds of added latency plus
    /// bytes", used to order candidate techniques cheapest-first (§4.4:
    /// "lib·erate deploys the most efficient, successful technique").
    pub fn cost(&self) -> u64 {
        match self {
            Overhead::ExtraHeaders(k) => *k as u64 * 40,
            Overhead::InertPackets(k) => *k as u64 * 1500,
            Overhead::PrefixBytes(n) => 1500 + *n as u64,
            Overhead::PauseSeconds(s) => 1_000_000 * *s,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table3_has_26_rows() {
        let rows = Technique::table3_rows();
        assert_eq!(rows.len(), 26);
        // No duplicates.
        let set: std::collections::HashSet<_> = rows.iter().collect();
        assert_eq!(set.len(), 26);
    }

    #[test]
    fn protocol_rows_partition() {
        let rows = Technique::table3_rows();
        let ip = rows.iter().filter(|t| t.protocol_row() == "IP").count();
        let tcp = rows.iter().filter(|t| t.protocol_row() == "TCP").count();
        let udp = rows.iter().filter(|t| t.protocol_row() == "UDP").count();
        assert_eq!((ip, tcp, udp), (13, 9, 4));
    }

    #[test]
    fn applicability() {
        assert!(Technique::InertTcpWrongSeq.applicable(TraceProtocol::Tcp));
        assert!(!Technique::InertTcpWrongSeq.applicable(TraceProtocol::Udp));
        assert!(Technique::InertUdpBadChecksum.applicable(TraceProtocol::Udp));
        assert!(!Technique::UdpReorder.applicable(TraceProtocol::Tcp));
        assert!(Technique::InertLowTtl.applicable(TraceProtocol::Udp));
        assert!(Technique::InertLowTtl.applicable(TraceProtocol::Tcp));
    }

    #[test]
    fn ordering_by_cost_prefers_splitting() {
        let split = Technique::TcpSegmentSplit { segments: 2 }.overhead().cost();
        let inert = Technique::InertLowTtl.overhead().cost();
        let pause = Technique::PauseBeforeMatch(Duration::from_secs(130))
            .overhead()
            .cost();
        assert!(split < inert);
        assert!(inert < pause);
    }

    #[test]
    fn server_support_flag() {
        assert!(Technique::DummyPrefixData { bytes: 1 }.requires_server_support());
        assert!(!Technique::InertLowTtl.requires_server_support());
        // No Table 3 row needs server support.
        assert!(Technique::table3_rows()
            .iter()
            .all(|t| !t.requires_server_support()));
    }
}
