//! A generation-stamped snapshot cell: seqlock-style reads for state
//! that is read by every worker on the hot path and written rarely, by
//! one driver, between waves.
//!
//! [`PublishedState`](crate::deploy::pool::PublishedState) and
//! [`SharedRuleCache`](crate::cache::SharedRuleCache) used to sit behind
//! an `RwLock`: every flow's snapshot took the read lock, so N workers
//! serialized on one cache line even though the driver writes at most
//! once per wave. [`Seqlock`] removes the reader-side lock:
//!
//! - A `seq` word carries the generation, doubled; it is **odd** while a
//!   publish is in flight. Readers load it, pick the slot the current
//!   generation lives in, clone the `Arc` out, and re-check `seq` — an
//!   unchanged even value proves the snapshot was fully published.
//! - Values live in **two slots**, generation `g` in slot `g % 2`. A
//!   writer installing generation `g+1` only touches the *other* slot, so
//!   a reader of the current generation never waits on the writer. The
//!   per-slot mutex is uncontended in the steady state; it only matters
//!   when a reader has fallen two generations behind, and the re-check
//!   makes it retry then anyway.
//! - Writers serialize on a dedicated mutex, bump `seq` to odd, install,
//!   and bump to the next even value. Generations are therefore exactly
//!   the number of completed writes — the monotonic stamp the deployment
//!   pool's "one re-learn per acknowledged change" protocol relies on.
//!
//! A torn read is impossible by construction: the value is a single
//! `Arc` pointer, slots are never written in place for the generation a
//! reader holds, and the seq re-check catches every interleaving where a
//! writer lapped the reader.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

/// The snapshot cell. `T` is the published value; readers get `Arc<T>`
/// clones, writers install whole new values.
#[derive(Debug, Default)]
pub struct Seqlock<T> {
    /// Generation * 2, odd while a write is in flight.
    seq: AtomicU64,
    /// Generation `g`'s value lives in slot `g % 2`.
    slots: [Mutex<Arc<T>>; 2],
    /// Serializes writers; readers never touch it.
    writer: Mutex<()>,
}

impl<T> Seqlock<T> {
    pub fn new(initial: T) -> Seqlock<T> {
        let initial = Arc::new(initial);
        Seqlock {
            seq: AtomicU64::new(0),
            slots: [Mutex::new(Arc::clone(&initial)), Mutex::new(initial)],
            writer: Mutex::new(()),
        }
    }

    /// Number of completed writes (0 = still the initial value).
    pub fn generation(&self) -> u64 {
        // An odd word means generation `(seq+1)/2` is mid-publish; the
        // last *completed* generation is seq/2 either way.
        self.seq.load(Ordering::Acquire) / 2
    }

    /// A consistent snapshot of the current value. Never blocks on a
    /// writer: retries while a publish is in flight (bounded by the
    /// writer's two atomic stores and one slot swap), and the slot mutex
    /// it takes is only ever contended by a writer two generations ahead.
    pub fn read(&self) -> Arc<T> {
        loop {
            let s = self.seq.load(Ordering::Acquire);
            if s & 1 == 1 {
                // A publish is in flight; its slot swap is imminent.
                std::hint::spin_loop();
                continue;
            }
            let slot = ((s / 2) % 2) as usize;
            let value = Arc::clone(&self.slots[slot].lock());
            // Unchanged even seq ⇒ the slot still held generation s/2 for
            // the whole clone: the snapshot is fully published.
            if self.seq.load(Ordering::Acquire) == s {
                return value;
            }
        }
    }

    /// Install `value` as the next generation; returns the new generation
    /// stamp. Writers serialize; readers of the current generation are
    /// never blocked (the write lands in the other slot).
    pub fn write(&self, value: T) -> u64 {
        self.install(Arc::new(value))
    }

    /// Copy-on-write update: clone the current value, let `f` mutate the
    /// copy, install it as the next generation. Returns the new stamp.
    pub fn update(&self, f: impl FnOnce(&mut T)) -> u64
    where
        T: Clone,
    {
        let _writer = self.writer.lock();
        let s = self.seq.load(Ordering::Relaxed);
        let current = ((s / 2) % 2) as usize;
        let mut fresh = T::clone(&self.slots[current].lock());
        f(&mut fresh);
        self.install_locked(s, Arc::new(fresh))
    }

    fn install(&self, value: Arc<T>) -> u64 {
        let _writer = self.writer.lock();
        let s = self.seq.load(Ordering::Relaxed);
        self.install_locked(s, value)
    }

    /// The publish protocol; caller holds the writer mutex and `s` is the
    /// current (even) seq word.
    fn install_locked(&self, s: u64, value: Arc<T>) -> u64 {
        let next = s / 2 + 1;
        // Odd: readers that load now will retry rather than trust a slot
        // mid-swap.
        self.seq.store(next * 2 - 1, Ordering::Release);
        *self.slots[(next % 2) as usize].lock() = value;
        self.seq.store(next * 2, Ordering::Release);
        next
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicBool;
    use std::thread;

    #[test]
    fn initial_value_is_generation_zero() {
        let cell = Seqlock::new(7u32);
        assert_eq!(cell.generation(), 0);
        assert_eq!(*cell.read(), 7);
    }

    #[test]
    fn writes_bump_the_generation() {
        let cell = Seqlock::new(0u32);
        assert_eq!(cell.write(1), 1);
        assert_eq!(cell.write(2), 2);
        assert_eq!(cell.generation(), 2);
        assert_eq!(*cell.read(), 2);
    }

    #[test]
    fn update_clones_and_mutates() {
        let cell = Seqlock::new(vec![1u8, 2]);
        let old = cell.read();
        let gen = cell.update(|v| v.push(3));
        assert_eq!(gen, 1);
        assert_eq!(*cell.read(), vec![1, 2, 3]);
        // The pre-update snapshot is untouched.
        assert_eq!(*old, vec![1, 2]);
    }

    /// 8 readers hammer the cell while a writer publishes; every snapshot
    /// must be internally consistent (a fully-published generation), and
    /// generations observed by any single reader must be monotone.
    #[test]
    fn concurrent_readers_see_only_full_generations() {
        let cell = Arc::new(Seqlock::new((0u64, vec![0u64; 32])));
        let stop = Arc::new(AtomicBool::new(false));
        let readers: Vec<_> = (0..8)
            .map(|_| {
                let cell = Arc::clone(&cell);
                let stop = Arc::clone(&stop);
                thread::spawn(move || {
                    let mut last = 0u64;
                    let mut seen = 0u64;
                    // `|| seen == 0`: the writer may finish all 500
                    // publishes before this thread is scheduled; every
                    // reader still takes at least one snapshot.
                    while !stop.load(Ordering::Relaxed) || seen == 0 {
                        let snap = cell.read();
                        let (gen, ref body) = *snap;
                        assert!(
                            body.iter().all(|&b| b == gen),
                            "torn snapshot: generation {gen} paired with {body:?}"
                        );
                        assert!(gen >= last, "generation went backwards");
                        last = gen;
                        seen += 1;
                    }
                    seen
                })
            })
            .collect();
        for g in 1..=500u64 {
            cell.write((g, vec![g; 32]));
        }
        stop.store(true, Ordering::Relaxed);
        for r in readers {
            assert!(r.join().unwrap() > 0, "reader made no progress");
        }
        assert_eq!(cell.generation(), 500);
        assert_eq!(cell.read().0, 500);
    }
}
