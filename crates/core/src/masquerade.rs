//! Masquerading (§7): the dual of evasion.
//!
//! Instead of making classified traffic look unclassified, make *any*
//! traffic look like a **favored** class — e.g. get arbitrary flows
//! zero-rated by a Binge-On-style middlebox. The mechanism is the same
//! inert-packet machinery run in reverse: supply a packet carrying the
//! favored class's matching fields, crafted so the middlebox processes it
//! but the server never does ("Our framework supports masquerading as
//! long as users supply traffic to place in inert packets").

use liberate_substrate::Substrate;
use liberate_traces::recorded::RecordedTrace;

use crate::detect::{read_billed_counter, was_classified, Signal};
use crate::evasion::{EvasionContext, Technique};
use crate::replay::{ReplayOpts, ReplayOutcome, Session};
use crate::schedule::Schedule;

/// A masquerade plan: which inert technique carries the disguise, and the
/// bait payload holding the favored class's matching fields.
#[derive(Debug, Clone)]
pub struct Masquerade {
    /// The inert-insertion vehicle (must be processed by the middlebox
    /// and ignored by the server — exactly an evasion-capable inert row
    /// of Table 3 for this environment).
    pub vehicle: Technique,
    /// A payload matching the favored class (e.g. a `cloudfront.net` GET).
    pub bait: Vec<u8>,
    /// TTL reaching the middlebox but not the server, for TTL-based
    /// vehicles.
    pub middlebox_ttl: u8,
}

impl Masquerade {
    /// Masquerade via a TTL-limited bait packet — the cheapest vehicle
    /// wherever "Lower TTL" has CC ✓ in Table 3.
    pub fn ttl_limited(bait: Vec<u8>, middlebox_ttl: u8) -> Masquerade {
        Masquerade {
            vehicle: Technique::InertLowTtl,
            bait,
            middlebox_ttl,
        }
    }

    /// Apply the disguise to a flow's schedule.
    pub fn apply(&self, schedule: &Schedule) -> Option<Schedule> {
        let ctx = EvasionContext {
            matching_fields: Vec::new(),
            decoy: self.bait.clone(),
            middlebox_ttl: self.middlebox_ttl,
        };
        self.vehicle.apply(schedule, &ctx)
    }
}

/// Outcome of a masqueraded flow.
#[derive(Debug)]
pub struct MasqueradeReport {
    pub outcome: ReplayOutcome,
    /// The middlebox treated the flow as the favored class.
    pub disguised: bool,
}

/// Run `trace` disguised as the favored class and judge the disguise with
/// `favored_signal` (e.g. [`Signal::ZeroRating`]: did the bytes ride
/// free?).
pub fn run_masqueraded<S: Substrate>(
    session: &mut Session<S>,
    trace: &RecordedTrace,
    masquerade: &Masquerade,
    favored_signal: &Signal,
) -> Option<MasqueradeReport> {
    let schedule = masquerade.apply(&Schedule::from_trace(trace))?;
    let billed_before = read_billed_counter(session);
    let outcome = session.replay_schedule(trace, &schedule, &ReplayOpts::default());
    let disguised = was_classified(session, favored_signal, &outcome, billed_before);
    let gap = session.config.round_gap;
    session.rest(gap);
    Some(MasqueradeReport { outcome, disguised })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::LiberateConfig;
    use crate::sim::OsKind;
    use liberate_dpi::profiles::EnvKind;
    use liberate_traces::generator::{generate, WorkloadSpec};

    fn bait_video() -> Vec<u8> {
        liberate_traces::http::get_request("x.cloudfront.net", "/liberate-decoy", "m/1")
    }

    #[test]
    fn arbitrary_flow_rides_zero_rated_on_tmobile() {
        let mut s = Session::new(EnvKind::TMobile, OsKind::Linux, LiberateConfig::default());
        // A big non-video workload that would normally bill.
        let workload = generate(&WorkloadSpec {
            server_bytes: 800_000,
            ..Default::default()
        });

        // Without the disguise: billed.
        let billed_before = read_billed_counter(&mut s);
        let plain = s.replay_trace(&workload, &ReplayOpts::default());
        let plain_zero = was_classified(&mut s, &Signal::ZeroRating, &plain, billed_before);
        assert!(plain.complete && !plain_zero, "undisguised flow bills");

        // With a TTL-limited video bait: zero-rated.
        let m = Masquerade::ttl_limited(bait_video(), 3);
        let report = run_masqueraded(&mut s, &workload, &m, &Signal::ZeroRating).unwrap();
        assert!(report.outcome.complete, "{:?}", report.outcome);
        assert!(report.outcome.integrity_ok, "the bait must stay inert");
        assert!(report.disguised, "the flow should ride zero-rated");
    }

    #[test]
    fn masquerade_does_not_fool_a_terminating_proxy() {
        // Against AT&T the bait is absorbed into the stream (side effect)
        // rather than staying inert, so masquerading as throttle-exempt
        // traffic cannot work — consistent with Table 3's AT&T column.
        let mut s = Session::new(EnvKind::Att, OsKind::Linux, LiberateConfig::default());
        let workload = generate(&WorkloadSpec {
            server_bytes: 400_000,
            ..Default::default()
        });
        let m = Masquerade::ttl_limited(bait_video(), 2);
        let report = run_masqueraded(
            &mut s,
            &workload,
            &m,
            &Signal::Throttling {
                control_bps: 1.0, // any flow "counts"; we only check side effects
                ratio: 0.0,
            },
        )
        .unwrap();
        assert!(
            !report.outcome.integrity_ok,
            "the proxy folds the bait into the stream — masquerade corrupts the flow"
        );
    }

    #[test]
    fn bait_must_reach_the_middlebox() {
        // TTL 1 dies before T-Mobile's classifier (3 hops out): no disguise.
        let mut s = Session::new(EnvKind::TMobile, OsKind::Linux, LiberateConfig::default());
        let workload = generate(&WorkloadSpec {
            server_bytes: 500_000,
            ..Default::default()
        });
        let m = Masquerade::ttl_limited(bait_video(), 1);
        let report = run_masqueraded(&mut s, &workload, &m, &Signal::ZeroRating).unwrap();
        assert!(report.outcome.complete);
        assert!(!report.disguised, "a dead bait disguises nothing");
    }
}
