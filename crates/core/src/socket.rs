//! The linked-library deployment mode (§3.1: lib·erate "is designed as
//! both a library that can be wrapped around existing socket libraries or
//! as a local proxy service").
//!
//! [`LiberateSocket`] looks like a plain stream socket — `connect`,
//! `send`, `recv`, `close` — while transparently rewriting the beginning
//! of each connection with the evasion technique the pipeline learned.
//! Applications keep their own wire bytes; only packetization and inert
//! insertions change.

use std::time::Duration;

use liberate_dpi::profiles::{CLIENT_ADDR, SERVER_ADDR};
use liberate_packet::packet::{Packet, ParsedPacket};
use liberate_packet::tcp::TcpFlags;
use liberate_substrate::Substrate;
use liberate_traces::recorded::{RecordedTrace, TraceMessage, TraceProtocol};

use crate::error::{LiberateError, Result};
use crate::evasion::{EvasionContext, Technique};
use crate::replay::Session;
use crate::schedule::{Schedule, ScheduledPacket, Step};

/// Per-connection state.
struct Conn {
    client_port: u16,
    server_port: u16,
    client_isn: u32,
    server_isn: u32,
    /// Next stream offset for client data.
    offset: u64,
    /// RSTs observed for this connection.
    rsts: usize,
    /// Server payload received and not yet handed to the application.
    rx: Vec<u8>,
    /// Whether the evasion transform has been applied yet (it rewrites
    /// only the start of the flow).
    start_transformed: bool,
}

/// A socket-like handle whose traffic is liberated transparently.
pub struct LiberateSocket<S: Substrate = crate::sim::SimSubstrate> {
    pub session: Session<S>,
    technique: Option<(Technique, EvasionContext)>,
    conn: Option<Conn>,
    /// MSS used when segmenting application sends.
    pub mss: usize,
}

impl<S: Substrate> LiberateSocket<S> {
    /// Wrap a session. Without a learned technique the socket behaves like
    /// a plain stack.
    pub fn new(session: Session<S>) -> LiberateSocket<S> {
        LiberateSocket {
            session,
            technique: None,
            conn: None,
            mss: 1460,
        }
    }

    /// Install the evasion technique to apply to new connections (from a
    /// pipeline run or a shared cache).
    pub fn use_technique(&mut self, technique: Technique, ctx: EvasionContext) {
        self.technique = Some((technique, ctx));
    }

    /// Open a connection to the environment's server.
    pub fn connect(&mut self, server_port: u16) -> Result<()> {
        let client_port = 50_000 + (self.session.replays % 10_000) as u16;
        self.session.replays += 1;
        let client_isn = 40_000 + self.session.replays as u32 * 91_000;

        let syn = Packet::tcp(
            CLIENT_ADDR,
            SERVER_ADDR,
            client_port,
            server_port,
            client_isn,
            0,
            Vec::new(),
        )
        .with_flags(TcpFlags::SYN);
        self.session
            .env
            .inject_client(Duration::ZERO, syn.serialize());
        self.session.env.run_until_idle();

        let inbox = self.session.env.take_client_inbox();
        // A blocking middlebox may inject RSTs during the handshake while
        // the SYN still reaches the server; record them.
        let handshake_rsts = inbox
            .iter()
            .filter(|(_, w)| {
                ParsedPacket::parse(w)
                    .and_then(|p| p.tcp().map(|t| t.flags.rst && t.dst_port == client_port))
                    .unwrap_or(false)
            })
            .count();
        let server_isn = inbox
            .iter()
            .find_map(|(_, w)| {
                let p = ParsedPacket::parse(w)?;
                let t = p.tcp()?;
                (t.flags.syn && t.flags.ack && t.dst_port == client_port).then_some(t.seq)
            })
            .ok_or(LiberateError::HandshakeFailed)?;

        let ack = Packet::tcp(
            CLIENT_ADDR,
            SERVER_ADDR,
            client_port,
            server_port,
            client_isn.wrapping_add(1),
            server_isn.wrapping_add(1),
            Vec::new(),
        )
        .with_flags(TcpFlags::ACK);
        self.session
            .env
            .inject_client(Duration::ZERO, ack.serialize());
        self.session.env.run_until_idle();

        self.conn = Some(Conn {
            client_port,
            server_port,
            client_isn,
            server_isn,
            offset: 0,
            rsts: handshake_rsts,
            rx: Vec::new(),
            start_transformed: false,
        });
        Ok(())
    }

    /// Send application bytes; the first send of a connection is rewritten
    /// by the installed technique (splits, inert insertions, pauses).
    pub fn send(&mut self, data: &[u8]) -> Result<()> {
        let conn = self.conn.as_mut().ok_or(LiberateError::HandshakeFailed)?;

        // Build the plain plan for this chunk of stream.
        let mut steps: Vec<Step> = Vec::new();
        let base = conn.offset;
        let mut rel = 0u64;
        for chunk in data.chunks(self.mss) {
            steps.push(Step::Packet(ScheduledPacket::data(
                base + rel,
                chunk.to_vec(),
            )));
            rel += chunk.len() as u64;
        }
        let mut schedule = Schedule {
            steps,
            protocol: Some(TraceProtocol::Tcp),
            server_skip_prefix: 0,
        };

        // The technique rewrites the flow start only.
        if !conn.start_transformed {
            if let Some((technique, ctx)) = &self.technique {
                // Rebase the context onto this send: a mini-trace makes the
                // technique's field-relative logic line up with `data`.
                let mut mini = RecordedTrace::new("live", TraceProtocol::Tcp, conn.server_port);
                mini.push_message(TraceMessage::client(data.to_vec()));
                let mini_schedule = Schedule::from_trace(&mini);
                if let Some(transformed) = technique.apply(&mini_schedule, ctx) {
                    // Shift the transformed steps to this connection's
                    // current offset.
                    schedule.steps = transformed
                        .steps
                        .into_iter()
                        .map(|s| match s {
                            Step::Packet(mut p) => {
                                p.offset += base;
                                Step::Packet(p)
                            }
                            other => other,
                        })
                        .collect();
                    schedule.server_skip_prefix = transformed.server_skip_prefix;
                }
            }
            conn.start_transformed = true;
        }

        // Emit.
        let (cport, sport, cisn, sisn) = (
            conn.client_port,
            conn.server_port,
            conn.client_isn,
            conn.server_isn,
        );
        for step in &schedule.steps {
            match step {
                Step::Pause(d) => {
                    self.session.env.run_until_idle();
                    self.session.env.advance(*d);
                }
                Step::AwaitServer { .. } => {}
                Step::Packet(sp) => {
                    let mut pkt = Packet::tcp(
                        CLIENT_ADDR,
                        SERVER_ADDR,
                        cport,
                        sport,
                        cisn.wrapping_add(1).wrapping_add(sp.offset as u32),
                        sisn.wrapping_add(1),
                        sp.payload.clone(),
                    );
                    sp.craft.apply(&mut pkt);
                    let wire = pkt.serialize();
                    match &sp.fragment {
                        None => self.session.env.inject_client(Duration::ZERO, wire),
                        Some(plan) => {
                            let chunk = (((wire.len() - 20) / plan.pieces.max(1)) / 8).max(1) * 8;
                            let mut frags =
                                liberate_packet::fragment::fragment_packet(&wire, chunk);
                            if plan.reverse {
                                frags.reverse();
                            }
                            for f in frags {
                                self.session.env.inject_client(Duration::ZERO, f);
                            }
                        }
                    }
                    self.session.env.run_until_idle();
                }
            }
            self.drain_inbox();
        }
        let conn = self.conn.as_mut().ok_or(LiberateError::HandshakeFailed)?;
        conn.offset += data.len() as u64;
        Ok(())
    }

    fn drain_inbox(&mut self) {
        let Some(conn) = self.conn.as_mut() else {
            return;
        };
        for (_, wire) in self.session.env.take_client_inbox() {
            let Some(p) = ParsedPacket::parse(&wire) else {
                continue;
            };
            if p.dst_port() != Some(conn.client_port) {
                continue;
            }
            if let Some(t) = p.tcp() {
                if t.flags.rst {
                    conn.rsts += 1;
                    continue;
                }
            }
            if !p.payload.is_empty() {
                conn.rx.extend_from_slice(&p.payload);
            }
        }
    }

    /// Receive whatever server payload has arrived.
    pub fn recv(&mut self) -> Vec<u8> {
        self.session.env.run_until_idle();
        self.drain_inbox();
        self.conn
            .as_mut()
            .map(|c| std::mem::take(&mut c.rx))
            .unwrap_or_default()
    }

    /// RSTs observed on the current connection (the blocking signal).
    pub fn reset_count(&self) -> usize {
        self.conn.as_ref().map(|c| c.rsts).unwrap_or(0)
    }

    /// Close the connection with a FIN.
    pub fn close(&mut self) {
        if let Some(conn) = self.conn.take() {
            let fin = Packet::tcp(
                CLIENT_ADDR,
                SERVER_ADDR,
                conn.client_port,
                conn.server_port,
                conn.client_isn
                    .wrapping_add(1)
                    .wrapping_add(conn.offset as u32),
                conn.server_isn.wrapping_add(1),
                Vec::new(),
            )
            .with_flags(TcpFlags::FIN_ACK);
            self.session
                .env
                .inject_client(Duration::ZERO, fin.serialize());
            self.session.env.run_until_idle();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::LiberateConfig;
    use crate::probe::decoy_request;
    use crate::sim::{EchoApp, OsKind};
    use liberate_dpi::profiles::EnvKind;
    use liberate_traces::http::get_request;

    fn socket(kind: EnvKind) -> LiberateSocket {
        let mut session = Session::new(kind, OsKind::Linux, LiberateConfig::default());
        session
            .env
            .network
            .server
            .set_app(Box::<EchoApp>::default());
        LiberateSocket::new(session)
    }

    #[test]
    fn plain_socket_echoes() {
        let mut s = socket(EnvKind::Sprint);
        s.connect(80).unwrap();
        s.send(b"hello through the socket api").unwrap();
        let got = s.recv();
        assert_eq!(got, b"hello through the socket api");
        assert_eq!(s.reset_count(), 0);
        s.close();
    }

    #[test]
    fn censored_request_blocked_without_technique() {
        let mut s = socket(EnvKind::Gfc);
        s.connect(80).unwrap();
        s.send(&get_request("www.economist.com", "/", "sock/1.0"))
            .unwrap();
        let _ = s.recv();
        assert!(s.reset_count() > 0, "the censor RSTs the plain socket");
    }

    #[test]
    fn technique_liberates_the_same_request() {
        let mut s = socket(EnvKind::Gfc);
        s.use_technique(
            Technique::TtlRstBeforeMatch,
            EvasionContext::blind(decoy_request(), 10),
        );
        s.connect(80).unwrap();
        let req = get_request("www.economist.com", "/", "sock/1.0");
        s.send(&req).unwrap();
        let got = s.recv();
        assert_eq!(s.reset_count(), 0, "no censor RSTs");
        assert_eq!(got, req, "the echo server saw the full request intact");
        s.close();
    }

    #[test]
    fn splitting_technique_preserves_the_stream() {
        let mut s = socket(EnvKind::Iran);
        let req = get_request("www.facebook.com", "/", "sock/1.0");
        let pos = liberate_traces::http::find(&req, b"facebook.com").unwrap();
        s.use_technique(
            Technique::TcpSegmentSplit { segments: 2 },
            EvasionContext {
                matching_fields: vec![liberate_packet::mutate::ByteRegion::new(0, pos..pos + 12)],
                decoy: decoy_request(),
                middlebox_ttl: 8,
            },
        );
        s.connect(80).unwrap();
        s.send(&req).unwrap();
        // A second send passes through untransformed.
        s.send(b" more data").unwrap();
        let got = s.recv();
        let mut expected = req.clone();
        expected.extend_from_slice(b" more data");
        assert_eq!(got, expected);
        assert_eq!(s.reset_count(), 0);
    }

    #[test]
    fn penalized_port_resets_even_the_handshake() {
        // Penalize the server:port with two classified flows.
        let mut s = socket(EnvKind::Gfc);
        for _ in 0..2 {
            s.connect(80).unwrap();
            s.send(&get_request("www.economist.com", "/", "sock/1.0"))
                .unwrap();
            let _ = s.recv();
        }
        // The GFC now RSTs the next connection from its very first packet
        // (the SYN itself still reaches the server off-path).
        s.connect(80).unwrap();
        assert!(
            s.reset_count() > 0,
            "censor RSTs arrive during the handshake on a penalized port"
        );
        // A clean port is unaffected.
        s.connect(8080).unwrap();
        assert_eq!(s.reset_count(), 0);
    }
}
