//! Classifier characterization (§4.2, §5.1): reverse-engineering *which
//! bytes* trigger classification and *how much of the flow* the classifier
//! inspects.
//!
//! Two instruments:
//!
//! 1. **Binary blinding search** — recursively invert ("blind") byte
//!    ranges of the trace and replay; ranges whose blinding stops
//!    classification contain matching fields. Runs over both directions
//!    (AT&T also matches on server-to-client `Content-Type`, §6.3).
//! 2. **Position probing** — prepend increasing numbers of random
//!    packets/bytes to find packet- or byte-count inspection limits and
//!    detect match-everything classifiers (Iran).

use std::ops::Range;
use std::time::Duration;

use rand::Rng;

use liberate_obs::{Counter, Hist, Phase};
use liberate_packet::mutate::{invert_range, merge_regions, ByteRegion};
use liberate_substrate::Substrate;
use liberate_traces::recorded::{RecordedTrace, Sender, TraceMessage};

use crate::detect::{probe, Signal};
use crate::replay::{ReplayOpts, Session};

/// A matching field located in the trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MatchingField {
    /// Index of the trace message containing the field.
    pub message: usize,
    /// Direction of that message.
    pub sender: Sender,
    /// Byte range within the message payload.
    pub range: Range<usize>,
    /// The matched bytes themselves.
    pub bytes: Vec<u8>,
}

impl MatchingField {
    /// Render printable fields as text (the paper: "matching fields in
    /// HTTP/S traffic typically contain human-readable text").
    pub fn as_text(&self) -> String {
        self.bytes
            .iter()
            .map(|&b| {
                if b.is_ascii_graphic() || b == b' ' {
                    b as char
                } else {
                    '·'
                }
            })
            .collect()
    }
}

/// What position probing learned.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PositionProfile {
    /// Smallest number of prepended MTU-sized packets that stopped
    /// classification (`None`: never, up to the configured maximum).
    pub prepend_break: Option<usize>,
    /// Prepending the same number of 1-byte packets also stopped it: the
    /// limit is packet-count-based, not byte-based.
    pub packet_based: bool,
    /// Classification survived every prepend: the classifier inspects all
    /// packets (Iran, §6.6).
    pub matches_all_packets: bool,
}

/// Options steering characterization.
#[derive(Debug, Clone)]
pub struct CharacterizeOpts {
    /// Rotate the server port every replay — required against the GFC,
    /// which blocks a server:port pair after two classified flows (§6.5).
    /// Must stay off against port-specific classifiers like Iran's.
    pub rotate_server_ports: bool,
    /// First port used when rotating.
    pub rotate_base: u16,
    /// Also search server-direction messages for matching fields.
    pub search_server_direction: bool,
}

impl Default for CharacterizeOpts {
    fn default() -> Self {
        CharacterizeOpts {
            rotate_server_ports: false,
            rotate_base: 10_000,
            search_server_direction: true,
        }
    }
}

/// Characterization output plus its cost accounting (§6 reports rounds,
/// time, and bytes for every network).
#[derive(Debug, Clone)]
pub struct Characterization {
    pub fields: Vec<MatchingField>,
    pub position: PositionProfile,
    /// Replay rounds consumed.
    pub rounds: u64,
    /// Client bytes sent while characterizing.
    pub bytes_sent: u64,
    /// Server payload bytes downloaded while characterizing (video traces
    /// dominate here — the paper's 140 MB upper bound, §5.3).
    pub bytes_received: u64,
    /// Simulated wall-clock consumed.
    pub elapsed: Duration,
}

impl Characterization {
    /// Total data consumed by characterization, both directions — the
    /// paper's cost metric (§5.3, §6).
    pub fn data_consumed(&self) -> u64 {
        self.bytes_sent + self.bytes_received
    }

    /// Convert fields to client-packet-ordinal regions for
    /// [`crate::evasion::EvasionContext`].
    pub fn client_field_regions(&self, trace: &RecordedTrace) -> Vec<ByteRegion> {
        let mut client_ordinal_of_message = Vec::with_capacity(trace.messages.len());
        let mut ordinal = 0usize;
        for m in &trace.messages {
            client_ordinal_of_message.push(ordinal);
            if m.sender == Sender::Client {
                ordinal += 1;
            }
        }
        let mut regions: Vec<ByteRegion> = self
            .fields
            .iter()
            .filter(|f| f.sender == Sender::Client)
            .map(|f| ByteRegion::new(client_ordinal_of_message[f.message], f.range.clone()))
            .collect();
        regions.sort_by_key(|r| (r.packet, r.range.start));
        merge_regions(regions)
    }
}

struct Prober<'a, S: Substrate> {
    session: &'a mut Session<S>,
    trace: &'a RecordedTrace,
    signal: &'a Signal,
    opts: &'a CharacterizeOpts,
    round: u64,
}

impl<'a, S: Substrate> Prober<'a, S> {
    /// Replay with the given ranges blinded; return whether classification
    /// still happened.
    fn classified_with_blinded(&mut self, blind: &[(usize, Range<usize>)]) -> bool {
        let round = self.round;
        self.round += 1;
        probe_blinded(
            self.session,
            self.trace,
            self.signal,
            self.opts,
            blind,
            round,
        )
    }
}

/// One blinding probe at an explicit round number — the shared primitive
/// under the sequential recursion and the engine's parallel wave search.
/// The round only feeds [`port_for_round`], so any execution order that
/// assigns the same round numbers produces the same replays.
pub(crate) fn probe_blinded<S: Substrate>(
    session: &mut Session<S>,
    trace: &RecordedTrace,
    signal: &Signal,
    opts: &CharacterizeOpts,
    blind: &[(usize, Range<usize>)],
    round: u64,
) -> bool {
    let mut t = trace.clone();
    let mut blinded_bytes = 0u64;
    for (msg, range) in blind {
        blinded_bytes += range.len() as u64;
        invert_range(&mut t.messages[*msg].payload, range.clone());
    }
    if blinded_bytes > 0 {
        session
            .env
            .journal()
            .metrics
            .add(Counter::BytesBlinded, blinded_bytes);
    }
    let replay_opts = ReplayOpts {
        server_port: port_for_round(opts, round),
        ..Default::default()
    };
    let (_, classified) = probe(session, &t, &replay_opts, signal);
    classified
}

pub(crate) fn port_for_round(opts: &CharacterizeOpts, round: u64) -> Option<u16> {
    if opts.rotate_server_ports {
        Some(opts.rotate_base.wrapping_add((round % 50_000) as u16))
    } else {
        None
    }
}

/// Binary blinding search over one message. Precondition: blinding the
/// whole message stops classification.
fn search_message<S: Substrate>(
    prober: &mut Prober<'_, S>,
    msg_idx: usize,
    range: Range<usize>,
    found: &mut Vec<Range<usize>>,
) {
    if range.len() <= 1 {
        found.push(range);
        return;
    }
    let mid = range.start + range.len() / 2;
    let left = range.start..mid;
    let right = mid..range.end;
    let left_kills = !prober.classified_with_blinded(&[(msg_idx, left.clone())]);
    let right_kills = !prober.classified_with_blinded(&[(msg_idx, right.clone())]);
    if left_kills {
        search_message(prober, msg_idx, left, found);
    }
    if right_kills {
        search_message(prober, msg_idx, right, found);
    }
    if !left_kills && !right_kills {
        // The field straddles the midpoint and neither half alone covers
        // enough of it: try the centered half.
        let quarter = range.len() / 4;
        let middle = (range.start + quarter)..(range.end - quarter).max(range.start + quarter + 1);
        if middle.len() < range.len()
            && !prober.classified_with_blinded(&[(msg_idx, middle.clone())])
        {
            search_message(prober, msg_idx, middle, found);
        } else {
            // Give up at this granularity: record the whole range.
            found.push(range);
        }
    }
}

/// Bisect over *message indices* first: find the messages whose blinding
/// stops classification, then byte-search inside each. This keeps round
/// counts logarithmic in trace length (a multi-megabyte video trace has
/// thousands of messages; probing each would take thousands of replays).
fn search_message_range<S: Substrate>(
    prober: &mut Prober<'_, S>,
    atoms: &[usize],
    fields: &mut Vec<MatchingField>,
) {
    let blind_all = |atoms: &[usize], trace: &RecordedTrace| -> Vec<(usize, Range<usize>)> {
        atoms
            .iter()
            .map(|&i| (i, 0..trace.messages[i].payload.len()))
            .collect()
    };
    if atoms.is_empty() {
        return;
    }
    if atoms.len() == 1 {
        let i = atoms[0];
        let msg = &prober.trace.messages[i];
        let mut ranges = Vec::new();
        search_message(prober, i, 0..msg.payload.len(), &mut ranges);
        let merged = merge_regions(
            ranges
                .into_iter()
                .map(|r| ByteRegion::new(i, r))
                .collect::<Vec<_>>(),
        );
        for region in merged {
            fields.push(MatchingField {
                message: i,
                sender: msg.sender,
                range: region.range.clone(),
                bytes: msg.payload[region.range.clone()].to_vec(),
            });
        }
        return;
    }
    let mid = atoms.len() / 2;
    let (left, right) = atoms.split_at(mid);
    let left_kills = !prober.classified_with_blinded(&blind_all(left, prober.trace));
    let right_kills = !prober.classified_with_blinded(&blind_all(right, prober.trace));
    if left_kills {
        search_message_range(prober, left, fields);
    }
    if right_kills {
        search_message_range(prober, right, fields);
    }
    if !left_kills && !right_kills {
        // Conjunctive fields split across the halves would make each half
        // alone insufficient — only possible for multi-keyword rules whose
        // keywords all sit within this range; recurse into both.
        search_message_range(prober, left, fields);
        search_message_range(prober, right, fields);
    }
}

/// Phase 2a: locate the matching fields.
pub fn find_matching_fields<S: Substrate>(
    session: &mut Session<S>,
    trace: &RecordedTrace,
    signal: &Signal,
    opts: &CharacterizeOpts,
) -> (Vec<MatchingField>, u64) {
    let journal = session.env.journal().clone();
    journal.span_start(session.env.clock().as_micros(), Phase::BlindSearch);
    let out = find_matching_fields_inner(session, trace, signal, opts);
    journal.span_end(session.env.clock().as_micros(), Phase::BlindSearch);
    // Rounds-per-characterization distribution (§6.1 reports the worst
    // case; the histogram shows where typical searches land).
    journal.observe(Hist::BlindRounds, out.1);
    out
}

fn find_matching_fields_inner<S: Substrate>(
    session: &mut Session<S>,
    trace: &RecordedTrace,
    signal: &Signal,
    opts: &CharacterizeOpts,
) -> (Vec<MatchingField>, u64) {
    let mut prober = Prober {
        session,
        trace,
        signal,
        opts,
        round: 0,
    };
    // Sanity: the unmodified trace must classify.
    if !prober.classified_with_blinded(&[]) {
        return (Vec::new(), prober.round);
    }

    let atoms: Vec<usize> = trace
        .messages
        .iter()
        .enumerate()
        .filter(|(_, m)| {
            !m.payload.is_empty() && (m.sender == Sender::Client || opts.search_server_direction)
        })
        .map(|(i, _)| i)
        .collect();

    // Establish the bisection invariant: blinding the whole searchable
    // space must stop classification (otherwise differentiation is not
    // based on these contents).
    let everything: Vec<(usize, Range<usize>)> = atoms
        .iter()
        .map(|&i| (i, 0..trace.messages[i].payload.len()))
        .collect();
    if prober.classified_with_blinded(&everything) {
        return (Vec::new(), prober.round);
    }

    let mut fields = Vec::new();
    search_message_range(&mut prober, &atoms, &mut fields);
    (fields, prober.round)
}

/// Phase 2b: position probing (prepend ladders).
pub fn probe_position<S: Substrate>(
    session: &mut Session<S>,
    trace: &RecordedTrace,
    signal: &Signal,
    opts: &CharacterizeOpts,
) -> (PositionProfile, u64) {
    let journal = session.env.journal().clone();
    journal.span_start(session.env.clock().as_micros(), Phase::PositionProbe);
    let out = probe_position_inner(session, trace, signal, opts);
    journal.span_end(session.env.clock().as_micros(), Phase::PositionProbe);
    out
}

pub(crate) fn probe_position_inner<S: Substrate>(
    session: &mut Session<S>,
    trace: &RecordedTrace,
    signal: &Signal,
    opts: &CharacterizeOpts,
) -> (PositionProfile, u64) {
    let max = session.config.max_prepend_packets;
    let mut rounds = 0u64;
    let mut prepend_break = None;

    let run = |session: &mut Session<S>, k: usize, size: usize, round: u64| -> bool {
        let mut t = trace.clone();
        let mut rng_bytes = vec![0u8; size * k];
        session.rng.fill(&mut rng_bytes[..]);
        for j in 0..k {
            t.messages.insert(
                0,
                TraceMessage::client(rng_bytes[j * size..(j + 1) * size].to_vec()),
            );
        }
        let replay_opts = ReplayOpts {
            server_port: opts
                .rotate_server_ports
                .then_some(opts.rotate_base.wrapping_add(20_000 + round as u16)),
            ..Default::default()
        };
        let (_, classified) = probe(session, &t, &replay_opts, signal);
        classified
    };

    for k in 1..=max {
        rounds += 1;
        if !run(session, k, 1400, rounds) {
            prepend_break = Some(k);
            break;
        }
    }

    let packet_based = match prepend_break {
        Some(k) => {
            rounds += 1;
            // The same count of 1-byte packets: if it also breaks
            // classification, the limit counts packets, not bytes.
            !run(session, k, 1, rounds)
        }
        None => false,
    };

    (
        PositionProfile {
            prepend_break,
            packet_based,
            matches_all_packets: prepend_break.is_none(),
        },
        rounds,
    )
}

/// Full characterization: fields + position profile + cost accounting.
pub fn characterize<S: Substrate>(
    session: &mut Session<S>,
    trace: &RecordedTrace,
    signal: &Signal,
    opts: &CharacterizeOpts,
) -> Characterization {
    let t0 = session.env.clock();
    let bytes0 = session.bytes_sent_total;
    let recv0 = session.bytes_received_total;
    let (fields, rounds_a) = find_matching_fields(session, trace, signal, opts);
    let (position, rounds_b) = probe_position(session, trace, signal, opts);
    Characterization {
        fields,
        position,
        rounds: rounds_a + rounds_b,
        bytes_sent: session.bytes_sent_total - bytes0,
        bytes_received: session.bytes_received_total - recv0,
        elapsed: session.env.clock() - t0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::LiberateConfig;
    use crate::sim::OsKind;
    use liberate_dpi::profiles::EnvKind;
    use liberate_traces::apps;

    fn session(kind: EnvKind) -> Session {
        Session::new(kind, OsKind::Linux, LiberateConfig::default())
    }

    #[test]
    fn finds_cloudfront_host_in_testbed() {
        let mut s = session(EnvKind::Testbed);
        let trace = apps::amazon_prime_http(20_000);
        let c = characterize(
            &mut s,
            &trace,
            &Signal::Readout,
            &CharacterizeOpts::default(),
        );
        assert!(!c.fields.is_empty(), "should find matching fields");
        let all_text: String = c.fields.iter().map(|f| f.as_text()).collect();
        assert!(
            all_text.contains("cloudfront"),
            "found fields: {all_text:?}"
        );
        // Efficiency: the paper needed at most 70 rounds for HTTP (§6.1).
        assert!(c.rounds <= 90, "rounds = {}", c.rounds);
        // Classifier gates on flow start: one prepended packet breaks it.
        assert_eq!(c.position.prepend_break, Some(1));
        assert!(c.position.packet_based);
        assert!(!c.position.matches_all_packets);
    }

    #[test]
    fn finds_stun_attribute_in_testbed_udp() {
        let mut s = session(EnvKind::Testbed);
        let trace = apps::skype_stun(4);
        let c = characterize(
            &mut s,
            &trace,
            &Signal::Readout,
            &CharacterizeOpts::default(),
        );
        assert!(!c.fields.is_empty());
        // The 0x8055 attribute type must be inside one of the fields.
        let covered = c.fields.iter().any(|f| {
            f.message == 0 && f.bytes.windows(2).any(|w| w == [0x80, 0x55])
                || (f.message == 0 && {
                    // Or the field sits exactly on those bytes.
                    let payload = &trace.messages[0].payload;
                    payload[f.range.clone()]
                        .windows(2)
                        .any(|w| w == [0x80, 0x55])
                })
        });
        assert!(covered, "fields: {:?}", c.fields);
    }

    #[test]
    fn gfc_characterization_with_port_rotation() {
        let mut s = session(EnvKind::Gfc);
        let trace = apps::economist_http();
        let opts = CharacterizeOpts {
            rotate_server_ports: true,
            ..Default::default()
        };
        let c = characterize(&mut s, &trace, &Signal::Blocking, &opts);
        let all_text: String = c.fields.iter().map(|f| f.as_text()).collect();
        assert!(
            all_text.contains("economist"),
            "found: {all_text:?} ({} rounds)",
            c.rounds
        );
        assert_eq!(c.position.prepend_break, Some(1));
    }

    #[test]
    fn iran_inspects_all_packets() {
        let mut s = session(EnvKind::Iran);
        let trace = apps::facebook_http();
        let c = characterize(
            &mut s,
            &trace,
            &Signal::Blocking,
            &CharacterizeOpts::default(),
        );
        let all_text: String = c.fields.iter().map(|f| f.as_text()).collect();
        assert!(all_text.contains("facebook"), "found: {all_text:?}");
        assert!(c.position.matches_all_packets, "{:?}", c.position);
    }

    #[test]
    fn client_field_regions_map_to_packet_ordinals() {
        let mut s = session(EnvKind::Testbed);
        let trace = apps::amazon_prime_http(20_000);
        let c = characterize(
            &mut s,
            &trace,
            &Signal::Readout,
            &CharacterizeOpts::default(),
        );
        let regions = c.client_field_regions(&trace);
        assert!(!regions.is_empty());
        assert_eq!(regions[0].packet, 0, "host header is in the first packet");
    }

    #[test]
    fn byte_limited_classifiers_are_distinguished() {
        // §5.1: "we first append random bytes in increments of one MTU
        // until we observe a change in classification ... then k 1-byte
        // packets ... If so, we conclude there is a fixed packet-based
        // limit; else, we conclude that the limit is no more than k*MTU
        // bytes." Build a classifier with a 3,000-*byte* window and check
        // the probe tells it apart from the packet-limited testbed.
        let mut s = session(EnvKind::Testbed);
        {
            let dpi = s.env.dpi_mut().unwrap();
            dpi.config.inspect.scope = liberate_dpi::inspect::InspectScope::Bytes(3_000);
            dpi.config.inspect.reassembly = liberate_dpi::inspect::ReassemblyMode::PerPacket;
        }
        let trace = apps::amazon_prime_http(20_000);
        let (position, _) = probe_position(
            &mut s,
            &trace,
            &Signal::Readout,
            &CharacterizeOpts::default(),
        );
        // Three 1,400 B prepends push the request past 3,000 bytes...
        assert_eq!(position.prepend_break, Some(3), "{position:?}");
        // ...but three 1-byte prepends do not: the limit is byte-based.
        assert!(!position.packet_based);
        assert!(!position.matches_all_packets);
    }

    #[test]
    fn unclassified_trace_yields_no_fields() {
        let mut s = session(EnvKind::Testbed);
        let trace = apps::control_http();
        // control_http matches the "web" no-op class only: no effective
        // differentiation, so characterization refuses to run.
        let (fields, rounds) = find_matching_fields(
            &mut s,
            &trace,
            &Signal::Readout,
            &CharacterizeOpts::default(),
        );
        assert!(fields.is_empty());
        assert_eq!(rounds, 1);
    }
}
