//! The event-driven replay reactor: drives thousands of in-flight
//! [`FlowTask`]s on **one** worker [`Session`] by virtualizing per-flow
//! timelines ([`liberate_substrate::LaneState`]) instead of spending an
//! OS thread per flow.
//!
//! ## Execution model
//!
//! Tasks are admitted in job order to a FIFO ready queue. Each tick pops
//! one task, swaps its lane (private clock, step-epoch baseline, capture
//! buffer, staging journal) into the backend, applies any pending timer
//! advance, and polls the task through one *quiesced segment* (see
//! [`crate::task`]). A [`Wake::Ready`] yield re-queues the task;
//! a [`Wake::Timer`] yield parks it on a hierarchical [`TimerWheel`]
//! keyed by lane-relative elapsed time, so flows progress in lockstep
//! fairness regardless of how long each one's schedule is. When the
//! ready queue drains, the reactor jumps the wheel to its next deadline
//! and re-admits the fired batch in `(deadline, insertion seq)` order.
//!
//! ## Determinism contract
//!
//! A reactor wave is journal-equivalent to running the same tasks
//! sequentially on the worker: every lane records into a private staged
//! journal on a virtual timeline starting at the wave's opening instant,
//! and the caller splices lanes back in admission order via
//! [`liberate_obs::Journal::splice_staged`] (timestamps rebased by the
//! sum of earlier lanes' durations, replay ordinals rebased onto the
//! session's canonical numbering). The reactor's own scheduling
//! telemetry (ticks, queue depth, timer fires) goes to a separate
//! journal that is never merged, so it cannot perturb the contract.
//!
//! ## Fault containment
//!
//! A panicking task poll is caught: the backend is drained into the
//! (still swapped-in) dead lane, the worker timeline is swapped back,
//! and the task is reported failed (`None` result) — the wave completes
//! and no shard lock is poisoned (`parking_lot` locks do not poison).
//! Dropping a mid-wave reactor releases every parked task, lane, and
//! wheel entry; nothing owns backend state, so shutdown leaks no flows.

use std::collections::{HashSet, VecDeque};
use std::marker::PhantomData;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;
use std::time::Duration;

use liberate_obs::{Counter, Hist, Journal};
use liberate_substrate::time::SimTime;
use liberate_substrate::{LaneState, Substrate};

use crate::replay::{Session, SESSION_TAPS};
use crate::task::{FlowTask, TaskPoll, Wake};

/// Timer-wheel tick granularity, microseconds. Only resumption *order*
/// is quantized by this: the advance a task asked for is replayed
/// exactly (`env.advance(d)`), so lane clocks never lose precision.
pub const TICK_US: u64 = 1024;
/// log2(slots per level).
const SLOT_BITS: u32 = 6;
/// Slots per level.
const SLOTS: usize = 1 << SLOT_BITS;
/// Hierarchy depth; level `k` slots span `TICK_US * 64^k` µs. Six levels
/// cover ~2.2 simulated years before the overflow list kicks in.
const LEVELS: usize = 6;

/// The client address a reactor lane replays from: a private block
/// (`10.64.0.0`) indexed by the flow's global job number. Unique
/// addresses keep DPI flow keys, IP-fragment reassembly idents, and
/// server-side connection state disjoint across interleaved lanes —
/// including across workers, whose DPI devices front one shared flow
/// table.
pub fn lane_addr(job_index: usize) -> std::net::Ipv4Addr {
    std::net::Ipv4Addr::from(u32::from(std::net::Ipv4Addr::new(10, 64, 0, 1)) + job_index as u32)
}

/// One parked timer.
#[derive(Debug, Clone)]
struct TimerEntry {
    deadline_us: u64,
    seq: u64,
    task: usize,
    advance: Duration,
}

/// A fired timer, in `(deadline_us, seq)` order within its batch.
#[derive(Debug, Clone)]
pub struct TimerFire {
    pub deadline_us: u64,
    pub seq: u64,
    pub task: usize,
    /// The exact advance the task asked for at its yield; the reactor
    /// applies it (`env.advance`) right before the resuming poll.
    pub advance: Duration,
}

/// Hierarchical timer wheel over an absolute microsecond axis.
///
/// Contract (pinned by `tests/timer_wheel_props.rs`):
/// - [`TimerWheel::advance_to`]`(t)` fires exactly the live entries with
///   `deadline_us <= t` — never early, even for sub-tick stragglers
///   sharing a tick with the target;
/// - a batch is returned sorted by `(deadline_us, seq)`: FIFO among
///   equal deadlines, regardless of slot cascades in between;
/// - cancellation is lazy (an O(1) set removal); cancelled entries are
///   skimmed off during cascades and never fire.
pub struct TimerWheel {
    current_ticks: u64,
    levels: Vec<Vec<Vec<TimerEntry>>>,
    /// Per-level bitmask of occupied slots (bit = slot may hold entries).
    occupancy: [u64; LEVELS],
    /// Entries farther out than the top level spans.
    overflow: Vec<TimerEntry>,
    /// Entries whose tick has been reached but whose sub-tick deadline
    /// is beyond the last advance target.
    due: Vec<TimerEntry>,
    /// Seqs inserted and neither fired nor cancelled.
    pending: HashSet<u64>,
    next_seq: u64,
}

impl Default for TimerWheel {
    fn default() -> TimerWheel {
        TimerWheel {
            current_ticks: 0,
            levels: (0..LEVELS)
                .map(|_| (0..SLOTS).map(|_| Vec::new()).collect())
                .collect(),
            occupancy: [0; LEVELS],
            overflow: Vec::new(),
            due: Vec::new(),
            pending: HashSet::new(),
            next_seq: 0,
        }
    }
}

impl TimerWheel {
    pub fn new() -> TimerWheel {
        TimerWheel::default()
    }

    /// Live (unfired, uncancelled) entries.
    pub fn len(&self) -> usize {
        self.pending.len()
    }

    pub fn is_empty(&self) -> bool {
        self.pending.is_empty()
    }

    /// The wheel's notion of "now", quantized to ticks.
    pub fn now_us(&self) -> u64 {
        self.current_ticks * TICK_US
    }

    /// Park a timer; returns a token for [`TimerWheel::cancel`]. Tokens
    /// are a strictly increasing sequence — the FIFO tie-breaker for
    /// equal deadlines.
    pub fn insert(&mut self, deadline_us: u64, task: usize, advance: Duration) -> u64 {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.pending.insert(seq);
        self.place(TimerEntry {
            deadline_us,
            seq,
            task,
            advance,
        });
        seq
    }

    /// Cancel a parked timer. Returns false if it already fired (or was
    /// already cancelled). The slot entry is left behind and skimmed
    /// lazily.
    pub fn cancel(&mut self, seq: u64) -> bool {
        self.pending.remove(&seq)
    }

    /// File an entry under the lowest level whose window (relative to
    /// the current time) contains its tick: level `k` holds entries
    /// sharing the current level-`k+1` aligned block. Past-or-present
    /// ticks go to the `due` holding area; ticks beyond the top level's
    /// block go to `overflow`.
    fn place(&mut self, e: TimerEntry) {
        let ticks = e.deadline_us / TICK_US;
        if ticks <= self.current_ticks {
            self.due.push(e);
            return;
        }
        for level in 0..LEVELS {
            let shift = SLOT_BITS * (level as u32 + 1);
            if (ticks >> shift) == (self.current_ticks >> shift) {
                let slot = ((ticks >> (SLOT_BITS * level as u32)) & (SLOTS as u64 - 1)) as usize;
                self.levels[level][slot].push(e);
                self.occupancy[level] |= 1 << slot;
                return;
            }
        }
        self.overflow.push(e);
    }

    /// Re-place every entry of one slot relative to the current time
    /// (the cascade step), dropping cancelled ones.
    fn cascade_slot(&mut self, level: usize, slot: usize) {
        if self.occupancy[level] & (1 << slot) == 0 {
            return;
        }
        self.occupancy[level] &= !(1u64 << slot);
        let entries = std::mem::take(&mut self.levels[level][slot]);
        for e in entries {
            if self.pending.contains(&e.seq) {
                self.place(e);
            }
        }
    }

    /// After `current_ticks` moves across one or more slot boundaries:
    /// re-place, at every level, the slot whose window now contains the
    /// current time (its entries belong at a lower level or in `due`),
    /// plus the overflow list. Entries in strictly later slots are
    /// untouched — forward movement never passes a live deadline, so
    /// their residency (same aligned block as the current time, one
    /// level up) is preserved.
    fn resync(&mut self) {
        for level in 0..LEVELS {
            let slot =
                ((self.current_ticks >> (SLOT_BITS * level as u32)) & (SLOTS as u64 - 1)) as usize;
            self.cascade_slot(level, slot);
        }
        if !self.overflow.is_empty() {
            let overflow = std::mem::take(&mut self.overflow);
            for e in overflow {
                if self.pending.contains(&e.seq) {
                    self.place(e);
                }
            }
        }
    }

    /// Earliest live deadline among parked (slot/overflow) entries,
    /// excluding the `due` holding area.
    fn next_parked_deadline(&self) -> Option<u64> {
        let mut min: Option<u64> = None;
        let mut update = |d: u64| min = Some(min.map_or(d, |m| m.min(d)));
        for e in &self.overflow {
            if self.pending.contains(&e.seq) {
                update(e.deadline_us);
            }
        }
        for level in 0..LEVELS {
            let mut occ = self.occupancy[level];
            while occ != 0 {
                let slot = occ.trailing_zeros() as usize;
                occ &= occ - 1;
                for e in &self.levels[level][slot] {
                    if self.pending.contains(&e.seq) {
                        update(e.deadline_us);
                    }
                }
            }
        }
        min
    }

    /// Earliest live deadline, if any.
    pub fn next_deadline(&self) -> Option<u64> {
        let mut min = self.next_parked_deadline();
        for e in &self.due {
            if self.pending.contains(&e.seq) {
                min = Some(min.map_or(e.deadline_us, |m| m.min(e.deadline_us)));
            }
        }
        min
    }

    /// Advance the wheel to `target_us`, firing every live entry with
    /// `deadline_us <= target_us`, sorted by `(deadline_us, seq)`.
    pub fn advance_to(&mut self, target_us: u64) -> Vec<TimerFire> {
        let target_ticks = target_us / TICK_US;
        if self.pending.is_empty() {
            // Nothing live anywhere: jump (stale slot entries are
            // skimmed whenever their slot next cascades or drains).
            self.current_ticks = self.current_ticks.max(target_ticks);
            self.due.clear();
            return Vec::new();
        }
        while self.current_ticks < target_ticks {
            let window_base = self.current_ticks & !(SLOTS as u64 - 1);
            let cur_slot = (self.current_ticks - window_base) as u32;
            let ahead = self.occupancy[0] & ((!0u64).checked_shl(cur_slot + 1).unwrap_or(0));
            if ahead != 0 {
                let slot = ahead.trailing_zeros() as u64;
                let tick = window_base + slot;
                if tick > target_ticks {
                    break;
                }
                self.current_ticks = tick;
                self.occupancy[0] &= !(1u64 << slot);
                let entries = std::mem::take(&mut self.levels[0][slot as usize]);
                self.due.extend(entries);
            } else {
                // Nothing left at level 0 in this window: jump straight
                // to the next parked deadline (or the target), then
                // resync the slots that now contain the current time.
                match self.next_parked_deadline() {
                    Some(nd) if nd / TICK_US <= target_ticks => {
                        self.current_ticks = nd / TICK_US;
                        self.resync();
                    }
                    _ => break,
                }
            }
        }
        if self.current_ticks < target_ticks {
            self.current_ticks = target_ticks;
            self.resync();
        }
        let mut fired: Vec<TimerFire> = Vec::new();
        let mut keep: Vec<TimerEntry> = Vec::new();
        for e in std::mem::take(&mut self.due) {
            if !self.pending.contains(&e.seq) {
                continue;
            }
            if e.deadline_us <= target_us {
                self.pending.remove(&e.seq);
                fired.push(TimerFire {
                    deadline_us: e.deadline_us,
                    seq: e.seq,
                    task: e.task,
                    advance: e.advance,
                });
            } else {
                keep.push(e);
            }
        }
        self.due = keep;
        fired.sort_by_key(|f| (f.deadline_us, f.seq));
        fired
    }
}

/// Everything a finished (or abandoned) reactor wave hands back for
/// canonical splicing.
pub struct ReactorOutcome<R> {
    /// Per task, in admission (job) order; `None` marks a panicked task.
    pub results: Vec<Option<R>>,
    /// Each task's lane: final virtual clock and staged journal.
    pub lanes: Vec<LaneState>,
    /// Replays each task started (its lane-local ordinal count), for
    /// chaining `replay_base` across splices.
    pub replays: Vec<u64>,
}

/// Per-task scheduler state.
struct TaskSlot<T> {
    task: T,
    lane: LaneState,
    /// Set when this task's timer fired; applied (swapped-in
    /// `env.advance`) immediately before the next poll.
    pending_advance: Option<Duration>,
    done: bool,
}

/// The reactor over one worker session's bucket of tasks. Create with
/// [`Reactor::new`], drive with [`Reactor::run`] (or [`Reactor::step`]
/// for test harnesses), then take the wave via
/// [`Reactor::into_outcome`]. Dropping it mid-wave abandons all parked
/// state cleanly.
pub struct Reactor<S: Substrate, T: FlowTask<S>> {
    t0: SimTime,
    slots: Vec<TaskSlot<T>>,
    results: Vec<Option<T::Output>>,
    ready: VecDeque<usize>,
    wheel: TimerWheel,
    live: usize,
    _substrate: PhantomData<fn(S)>,
}

impl<S: Substrate, T: FlowTask<S>> Reactor<S, T> {
    /// Admit `tasks` (in order) against the session's current instant.
    /// Lane journals mirror the worker journal's enabled flag so a
    /// journal-off run stays journal-off (counters always live).
    pub fn new(session: &Session<S>, tasks: Vec<T>, telemetry: &Journal) -> Reactor<S, T> {
        let t0 = session.env.clock();
        let enabled = session.journal().is_enabled();
        let n = tasks.len();
        let slots: Vec<TaskSlot<T>> = tasks
            .into_iter()
            .map(|task| {
                telemetry.metrics.incr(Counter::ReactorTasksAdmitted);
                let staging = Arc::new(if enabled {
                    Journal::new()
                } else {
                    Journal::disabled()
                });
                TaskSlot {
                    task,
                    lane: LaneState::new(t0, SESSION_TAPS, staging),
                    pending_advance: None,
                    done: false,
                }
            })
            .collect();
        Reactor {
            t0,
            slots,
            results: (0..n).map(|_| None).collect(),
            ready: (0..n).collect(),
            wheel: TimerWheel::new(),
            live: n,
            _substrate: PhantomData,
        }
    }

    /// Override the ready-queue admission order (determinism tests
    /// shuffle it; the spliced journal must not change). `order` must be
    /// a permutation of `0..tasks`.
    pub fn set_admission_order(&mut self, order: &[usize]) {
        debug_assert_eq!(order.len(), self.slots.len());
        self.ready = order.iter().copied().collect();
    }

    /// Unfinished tasks still owned by the scheduler.
    pub fn live(&self) -> usize {
        self.live
    }

    /// Tasks currently parked on the timer wheel.
    pub fn parked(&self) -> usize {
        self.wheel.len()
    }

    /// Drive every task to completion (or containment).
    pub fn run(&mut self, session: &mut Session<S>, telemetry: &Journal) {
        while self.step(session, telemetry) {}
    }

    /// One scheduling step: either fire the next timer batch or poll the
    /// head of the ready queue. Returns false when no work remains.
    pub fn step(&mut self, session: &mut Session<S>, telemetry: &Journal) -> bool {
        if self.live == 0 {
            return false;
        }
        if self.ready.is_empty() {
            let Some(next) = self.wheel.next_deadline() else {
                // Live tasks but nothing runnable — a task bug; abandon
                // rather than spin (results stay None).
                return false;
            };
            let fired = self.wheel.advance_to(next);
            telemetry
                .metrics
                .add(Counter::ReactorTimerFires, fired.len() as u64);
            for f in fired {
                self.slots[f.task].pending_advance = Some(f.advance);
                self.ready.push_back(f.task);
            }
            return true;
        }
        let tick_start = std::time::Instant::now();
        telemetry.metrics.incr(Counter::ReactorTicks);
        telemetry
            .metrics
            .observe(Hist::ReadyQueueDepth, self.ready.len() as u64);
        // lint: allow(no-panic) invariant: non-empty checked above
        let id = self.ready.pop_front().expect("ready queue is non-empty");
        self.poll_task(session, telemetry, id);
        telemetry.metrics.observe(
            Hist::ReactorTickMicros,
            tick_start.elapsed().as_micros() as u64,
        );
        true
    }

    /// Swap the task's lane in, poll one quiesced segment (repeatedly,
    /// for atomic tasks), swap back out, and route the yield.
    fn poll_task(&mut self, session: &mut Session<S>, telemetry: &Journal, id: usize) {
        let slot = &mut self.slots[id];
        session.env.swap_lane(&mut slot.lane);
        loop {
            if let Some(d) = slot.pending_advance.take() {
                session.env.advance(d);
            }
            let polled = catch_unwind(AssertUnwindSafe(|| slot.task.poll(session)));
            match polled {
                Ok(TaskPoll::Done(out)) => {
                    session.env.swap_lane(&mut slot.lane);
                    // Nothing reads a finished lane's capture (splicing
                    // takes only clock + journal); release its packet
                    // buffers now so a 100k-task wave's footprint tracks
                    // the *live* flows, not every flow ever admitted.
                    slot.lane.capture.clear();
                    slot.done = true;
                    self.results[id] = Some(out);
                    self.live -= 1;
                    return;
                }
                Ok(TaskPoll::Pending(Wake::Ready)) => {
                    if slot.task.atomic() {
                        continue;
                    }
                    session.env.swap_lane(&mut slot.lane);
                    self.ready.push_back(id);
                    return;
                }
                Ok(TaskPoll::Pending(Wake::Timer(d))) => {
                    if slot.task.atomic() {
                        // Chained execution: the advance happens inline,
                        // on this task's own (swapped-in) timeline.
                        slot.pending_advance = Some(d);
                        continue;
                    }
                    session.env.swap_lane(&mut slot.lane);
                    let elapsed = slot.lane.clock - self.t0;
                    let deadline_us = (elapsed + d).as_micros() as u64;
                    self.wheel.insert(deadline_us, id, d);
                    return;
                }
                Err(_panic) => {
                    // Containment: flush whatever the dead task left in
                    // flight into its own (still swapped-in) lane, then
                    // restore the worker timeline. The lane's staged
                    // journal is never spliced; the wave carries on.
                    session.env.run_until_idle();
                    drop(session.env.take_client_inbox());
                    session.env.swap_lane(&mut slot.lane);
                    slot.lane.capture.clear();
                    slot.done = true;
                    self.live -= 1;
                    telemetry.metrics.incr(Counter::ReactorTaskPanics);
                    return;
                }
            }
        }
    }

    /// Dismantle into the per-task results, lanes, and replay counts the
    /// splicing pass needs.
    pub fn into_outcome(self) -> ReactorOutcome<T::Output> {
        let mut lanes = Vec::with_capacity(self.slots.len());
        let mut replays = Vec::with_capacity(self.slots.len());
        for slot in self.slots {
            replays.push(slot.task.replays_done());
            lanes.push(slot.lane);
        }
        ReactorOutcome {
            results: self.results,
            lanes,
            replays,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wheel_fires_in_deadline_then_seq_order() {
        let mut w = TimerWheel::new();
        let gap = Duration::ZERO;
        w.insert(5_000, 0, gap);
        w.insert(3_000, 1, gap);
        w.insert(5_000, 2, gap);
        w.insert(200_000, 3, gap);
        let fired = w.advance_to(10_000);
        let order: Vec<usize> = fired.iter().map(|f| f.task).collect();
        assert_eq!(order, vec![1, 0, 2]);
        assert_eq!(w.len(), 1);
        let late = w.advance_to(300_000);
        assert_eq!(late.len(), 1);
        assert_eq!(late[0].task, 3);
        assert!(w.is_empty());
    }

    #[test]
    fn wheel_never_fires_sub_tick_early() {
        let mut w = TimerWheel::new();
        w.insert(2_500, 7, Duration::ZERO);
        // 2_500 µs sits in tick 2 (2048..3072); advancing to 2_400 µs
        // crosses the tick but not the deadline.
        assert!(w.advance_to(2_400).is_empty());
        let fired = w.advance_to(2_500);
        assert_eq!(fired.len(), 1);
        assert_eq!(fired[0].deadline_us, 2_500);
    }

    #[test]
    fn wheel_cancel_prevents_fire() {
        let mut w = TimerWheel::new();
        let a = w.insert(4_000, 0, Duration::ZERO);
        let b = w.insert(4_000, 1, Duration::ZERO);
        assert!(w.cancel(a));
        assert!(!w.cancel(a));
        let fired = w.advance_to(10_000);
        assert_eq!(fired.len(), 1);
        assert_eq!(fired[0].seq, b);
    }

    #[test]
    fn wheel_survives_cascade_boundaries() {
        let mut w = TimerWheel::new();
        // One entry per level boundary neighborhood: 64^k ticks out.
        let mut expect: Vec<(u64, usize)> = Vec::new();
        for k in 0..LEVELS {
            let ticks = (SLOTS as u64).pow(k as u32 + 1) + 3;
            let deadline = ticks * TICK_US + 17;
            w.insert(deadline, k, Duration::ZERO);
            expect.push((deadline, k));
        }
        expect.sort_unstable();
        let fired = w.advance_to(u64::MAX / 4);
        let got: Vec<(u64, usize)> = fired.iter().map(|f| (f.deadline_us, f.task)).collect();
        assert_eq!(got, expect);
    }

    #[test]
    fn wheel_jump_past_parked_entry_does_not_strand_it() {
        let mut w = TimerWheel::new();
        // Parked at level >= 1; a jump to just before its deadline (all
        // other entries absent) must resync its slot so the next advance
        // still finds it.
        w.insert(10_000 * TICK_US, 0, Duration::ZERO);
        assert!(w.advance_to(9_999 * TICK_US).is_empty());
        let fired = w.advance_to(10_001 * TICK_US);
        assert_eq!(fired.len(), 1);
    }
}
