//! # lib·erate
//!
//! A Rust reproduction of *"lib·erate, (n): A library for exposing
//! (traffic-classification) rules and avoiding them efficiently"*
//! (Li et al., IMC 2017).
//!
//! lib·erate automatically, adaptively, and *unilaterally* evades
//! middleboxes that differentiate traffic with DPI classifiers. Its key
//! insight: a middlebox necessarily classifies with an **incomplete
//! model** of end-to-end communication — it cannot know whether a packet
//! reached, or was accepted by, the endpoint — and those gaps can be
//! measured and exploited systematically.
//!
//! ## The four phases (Fig. 1 of the paper)
//!
//! 1. **[`detect`]** — replay recorded application traffic and a
//!    bit-inverted control; compare blocking, throughput, and zero-rating
//!    signals.
//! 2. **[`characterize`]** — binary blinding search for the classifier's
//!    *matching fields*, plus prepend probes for packet/byte inspection
//!    limits and match-everything detection.
//! 3. **[`evaluate`]** (with **[`probe`]** for middlebox localization) —
//!    try the 26-technique taxonomy of **[`evasion`]**, pruned and
//!    ordered by what characterization learned, judging CC? and RS? per
//!    Table 3.
//! 4. **[`deploy`]** — apply the cheapest working technique to live
//!    application flows, re-learning when the classifier changes.
//!
//! The **[`engine`]** module parallelizes phases 1–3: a [`engine::SessionPool`]
//! of worker sessions over one shared sharded DPI flow table executes
//! probe waves concurrently while keeping results canonical and
//! deterministic.
//!
//! ## Quick start
//!
//! ```no_run
//! use liberate::prelude::*;
//!
//! // A client behind the Great Firewall model fetching a blocked site.
//! let session = Session::new(EnvKind::Gfc, OsKind::Linux, LiberateConfig::default());
//! let mut proxy = LiberateProxy::new(
//!     session,
//!     CharacterizeOpts { rotate_server_ports: true, ..Default::default() },
//! );
//! let flow = liberate_traces::apps::economist_http();
//! let report = proxy.run_flow(&flow).expect("an evasion technique exists");
//! assert!(!report.outcome.blocked());
//! ```

pub mod bilateral;
pub mod cache;
pub mod characterize;
pub mod config;
pub mod deploy;
pub mod detect;
pub mod engine;
pub mod error;
pub mod evaluate;
pub mod evasion;
pub mod masquerade;
pub mod probe;
pub mod reactor;
pub mod replay;
pub mod report;
pub mod schedule;
pub mod seqlock;
pub mod sim;
pub mod socket;
pub mod task;

/// One-stop imports for applications and experiments.
pub mod prelude {
    pub use crate::bilateral::{run_bilateral, BilateralCodec, BilateralReport};
    pub use crate::cache::{CachedRules, RuleCache, SharedRuleCache};
    pub use crate::characterize::{
        characterize, Characterization, CharacterizeOpts, MatchingField, PositionProfile,
    };
    pub use crate::config::LiberateConfig;
    pub use crate::deploy::{
        run_pipeline, signal_from_detection, ActiveEvasion, DeployWave, DeploymentPool, FlowReport,
        LiberateProxy, PipelineReport, PoolFlowReport, PublishedState, PublishedTechnique,
    };
    pub use crate::detect::{
        detect, detect_parallel, inverted_trace, probe, DetectionOutcome, Signal,
    };
    pub use crate::engine::{characterize_many, characterize_parallel, Engine, SessionPool};
    pub use crate::error::{LiberateError, Result};
    pub use crate::evaluate::{
        cheapest, evaluate_technique, evaluate_techniques_parallel, find_working_technique, plan,
        EvaluationInputs, Reach, TechniqueResult,
    };
    pub use crate::evasion::{Category, EvasionContext, Overhead, Technique};
    pub use crate::masquerade::{run_masqueraded, Masquerade, MasqueradeReport};
    pub use crate::probe::{
        decoy_request, inert_reach, locate_middlebox, InertReach, Localization, DECOY_MARKER,
    };
    pub use crate::reactor::{Reactor, ReactorOutcome, TimerFire, TimerWheel};
    pub use crate::replay::{server_script, ReplayOpts, ReplayOutcome, Session};
    pub use crate::schedule::{Craft, FragPlan, Schedule, ScheduledPacket, Step};
    pub use crate::sim::{OsKind, SimSubstrate};
    pub use crate::socket::LiberateSocket;
    pub use liberate_dpi::profiles::EnvKind;
    pub use liberate_substrate::nft::{NftSubstrate, RecordingSink, RuleProgramSink};
    pub use liberate_substrate::{ClassVerdict, Substrate};
}
