//! The replay engine: lowers a [`Schedule`] onto a live connection over a
//! [`Substrate`] and reports everything lib·erate's phases need to
//! observe (Fig. 3, step 2).
//!
//! The client side is driven packet-by-packet with raw-socket-level
//! control (the real tool does the same via a transparent proxy); the
//! server side runs a scripted replay server
//! ([`liberate_substrate::script::ScriptEngine`]) installed through the
//! substrate, answering scripted responses once the expected client bytes
//! arrive. The engine itself is generic: the same code drives the
//! simulator backend ([`crate::sim::SimSubstrate`], the default) and the
//! nftables-shaped real-wire backend
//! ([`liberate_substrate::nft::NftSubstrate`]).

use std::borrow::Borrow;
use std::net::Ipv4Addr;
use std::time::Duration;

use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::SeedableRng;

use liberate_dpi::profiles::{EnvKind, EnvironmentBlueprint, CLIENT_ADDR, SERVER_ADDR};
use liberate_obs::{Counter, EventKind, Hist, Journal, Phase};
use liberate_packet::fragment::fragment_packet;
use liberate_packet::packet::{Packet, ParsedPacket};
use liberate_packet::tcp::TcpFlags;
use liberate_substrate::buf::PacketBuf;
use liberate_substrate::capture::TapPoint;
use liberate_substrate::icmp::{parse_icmp_error, IcmpError};
use liberate_substrate::script::{ServerObs, ServerScript};
use liberate_substrate::stats::ThroughputMeter;
use liberate_substrate::time::SimTime;
use liberate_substrate::Substrate;
use liberate_traces::recorded::{RecordedTrace, Sender, TraceProtocol};
use std::sync::Arc;

use crate::config::LiberateConfig;
use crate::evasion::{EvasionContext, Technique};
use crate::schedule::{Schedule, ScheduledPacket, Step};
use crate::sim::{OsKind, SimSubstrate};
use crate::task::{TaskPoll, Wake};

/// The capture narrowing every session applies: the detectors (RS? in
/// evaluate/probe) only read the server-ingress vantage. Reactor lanes
/// mirror this when they build their per-flow capture buffers.
pub(crate) const SESSION_TAPS: &[TapPoint] = &[TapPoint::ServerIngress];

/// Build the scripted replay server for a (possibly transformed) trace:
/// `(cumulative client bytes required, response payload)` for TCP and
/// `(client datagram count required, response payload)` for UDP, plus the
/// stream prefix to discard (server-side support for the dummy-prefix
/// technique).
pub fn server_script(trace: &RecordedTrace, skip_prefix: u64) -> ServerScript {
    let mut tcp_script = Vec::new();
    let mut udp_script = Vec::new();
    let mut client_bytes = 0u64;
    let mut client_dgrams = 0usize;
    for msg in &trace.messages {
        match msg.sender {
            Sender::Client => {
                client_bytes += msg.payload.len() as u64;
                client_dgrams += 1;
            }
            Sender::Server => {
                tcp_script.push((client_bytes, msg.payload.clone()));
                udp_script.push((client_dgrams, msg.payload.clone()));
            }
        }
    }
    ServerScript {
        tcp_script,
        udp_script,
        skip_prefix,
    }
}

/// Options for one replay.
#[derive(Debug, Clone, Default)]
pub struct ReplayOpts {
    /// Override the trace's server port (GFC characterization rotates
    /// ports, §6.5; AT&T's port-change evasion needs it, §6.3).
    pub server_port: Option<u16>,
    /// Force this TTL on all client *data* packets (middlebox
    /// localization, §5.2). The handshake keeps a normal TTL.
    pub data_ttl: Option<u8>,
}

/// Everything observed during one replay.
#[derive(Debug, Clone)]
pub struct ReplayOutcome {
    /// Source address the client side used. [`CLIENT_ADDR`] for ordinary
    /// sessions; reactor lanes assign each in-flight flow its own.
    pub client_addr: Ipv4Addr,
    pub client_port: u16,
    pub server_port: u16,
    /// TCP only: did the handshake complete?
    pub handshake_ok: bool,
    /// RST packets received by the client for this flow.
    pub rsts: usize,
    /// An unsolicited "403 Forbidden" page arrived (Iran's censor, §6.6).
    pub block_page: bool,
    /// Server payload bytes that reached the client application.
    pub server_payload_bytes: u64,
    /// Server payload bytes the trace expected.
    pub expected_server_bytes: u64,
    /// `server_payload_bytes >= expected_server_bytes`.
    pub complete: bool,
    /// The server application received exactly the client stream the
    /// (possibly transformed) trace intended — i.e. the technique had no
    /// server-side side effects.
    pub integrity_ok: bool,
    /// Total client wire bytes sent (data-consumption accounting, §5.3).
    pub bytes_sent: u64,
    /// Wall-clock (simulated) duration of the replay.
    pub duration: Duration,
    /// Downlink throughput statistics.
    pub avg_bps: f64,
    pub peak_bps: f64,
    /// Latency from the first data packet sent to the first server
    /// payload received (the §4.1 "latency differences" signal).
    pub request_to_response: Option<Duration>,
    /// The received server payload matches the trace byte-for-byte (the
    /// §4.1 content-modification signal).
    pub response_matches: bool,
    /// ICMP errors received (TTL probing).
    pub icmp: Vec<IcmpError>,
}

impl ReplayOutcome {
    /// The blocking signal: RSTs or a block page.
    pub fn blocked(&self) -> bool {
        self.rsts > 0 || self.block_page || !self.handshake_ok
    }
}

/// A measurement session against one environment: owns the substrate,
/// hands out client ports, accumulates cost accounting. Generic over the
/// backend; `Session` with no parameter is the simulator-backed default.
pub struct Session<S: Substrate = SimSubstrate> {
    pub env: S,
    pub config: LiberateConfig,
    pub rng: StdRng,
    next_client_port: u16,
    /// Client-port advance per replay. A solo session strides by 1; pool
    /// workers stride by the worker count (each starting at a distinct
    /// offset) so concurrent probes land on disjoint
    /// [`liberate_packet::flow::FlowKey`]s of the shared sharded flow
    /// table.
    port_stride: u16,
    isn_counter: u32,
    /// Total replays run (the paper's "rounds" metric).
    pub replays: u64,
    /// Total client bytes sent across all replays.
    pub bytes_sent_total: u64,
    /// Total server payload bytes received across all replays.
    pub bytes_received_total: u64,
    /// Simulated time consumed by testing.
    pub started: SimTime,
}

impl Session<SimSubstrate> {
    /// Build a session against a freshly constructed simulator
    /// environment.
    pub fn new(kind: EnvKind, os: OsKind, config: LiberateConfig) -> Session {
        Session::with_start_time(kind, os, config, 0)
    }

    /// Like [`Session::new`] with control over the wall-clock time of day
    /// at simulation start (Figure 4 sweeps it for the GFC).
    pub fn with_start_time(
        kind: EnvKind,
        os: OsKind,
        config: LiberateConfig,
        start_time_of_day_secs: u64,
    ) -> Session {
        Session::over(SimSubstrate::new(kind, os, start_time_of_day_secs), config)
    }

    /// Build one pool worker's session from a shared
    /// [`EnvironmentBlueprint`]: its own network and journal, the pool's
    /// sharded flow table, a deterministic per-worker RNG seed, and a
    /// client-port lane disjoint from every other worker's
    /// (`42_000 + worker`, striding by `workers`).
    pub fn worker_from_blueprint(
        blueprint: &EnvironmentBlueprint,
        os: OsKind,
        config: LiberateConfig,
        worker: usize,
        workers: usize,
    ) -> Session {
        Session::worker_over(
            SimSubstrate::from_blueprint(blueprint, os),
            config,
            worker,
            workers,
        )
    }
}

impl<S: Substrate> Session<S> {
    /// Wrap any substrate as a solo session (the generic counterpart of
    /// [`Session::new`]).
    pub fn over(mut env: S, config: LiberateConfig) -> Session<S> {
        let seed = config.seed;
        // The session's detectors (RS? in evaluate/probe) only ever read
        // the server-ingress vantage; narrowing the capture there keeps
        // the other taps from aliasing in-flight buffers, so in-path
        // mutation (TTL decrements) stays copy-free.
        env.set_capture_points(SESSION_TAPS);
        let session = Session {
            env,
            config,
            rng: StdRng::seed_from_u64(seed),
            next_client_port: 42_000,
            port_stride: 1,
            isn_counter: 11_000,
            replays: 0,
            bytes_sent_total: 0,
            bytes_received_total: 0,
            started: SimTime::ZERO,
        };
        session.record_session_started();
        session
    }

    /// Wrap any substrate as pool worker `worker` of `workers` (the
    /// generic counterpart of [`Session::worker_from_blueprint`]).
    pub fn worker_over(
        mut env: S,
        config: LiberateConfig,
        worker: usize,
        workers: usize,
    ) -> Session<S> {
        let seed = config.seed.wrapping_add(worker as u64);
        // Same BPF-style capture narrowing as [`Session::over`].
        env.set_capture_points(SESSION_TAPS);
        let session = Session {
            env,
            config,
            rng: StdRng::seed_from_u64(seed),
            next_client_port: 42_000u16.wrapping_add(worker as u16),
            port_stride: (workers.max(1)) as u16,
            isn_counter: 11_000,
            replays: 0,
            bytes_sent_total: 0,
            bytes_received_total: 0,
            started: SimTime::ZERO,
        };
        session.record_session_started();
        session
    }

    /// The observability journal shared with the substrate.
    pub fn journal(&self) -> &Arc<Journal> {
        self.env.journal()
    }

    /// Share a journal with this session (e.g. one journal across all the
    /// sessions an experiment binary creates). Re-records the session
    /// header so the journal stays self-describing.
    pub fn attach_journal(&mut self, journal: Arc<Journal>) {
        self.env.set_journal(journal);
        self.record_session_started();
    }

    fn record_session_started(&self) {
        self.env.journal().record(
            self.env.clock().as_micros(),
            EventKind::SessionStarted {
                env: self.env.env_name(),
                seed: self.config.seed,
                substrate: self.env.backend_name().to_string(),
            },
        );
    }

    /// Replay a trace unmodified.
    pub fn replay_trace(&mut self, trace: &RecordedTrace, opts: &ReplayOpts) -> ReplayOutcome {
        let schedule = Schedule::from_trace(trace);
        self.replay_schedule(trace, &schedule, opts)
    }

    /// Replay a trace with an evasion technique applied. Returns `None`
    /// when the technique does not apply to this trace's transport.
    pub fn replay_with(
        &mut self,
        trace: &RecordedTrace,
        technique: &Technique,
        ctx: &EvasionContext,
        opts: &ReplayOpts,
    ) -> Option<ReplayOutcome> {
        let schedule = technique.apply(&Schedule::from_trace(trace), ctx)?;
        Some(self.replay_schedule(trace, &schedule, opts))
    }

    /// Idle the environment between rounds.
    pub fn rest(&mut self, d: Duration) {
        self.env.advance(d);
    }

    /// Replay an explicit schedule derived from `trace`. A thin inline
    /// driver over [`ReplaySm`]: constructs the state machine and polls
    /// it to completion, performing `Timer` advances itself — the exact
    /// loop the reactor runs, minus the lane swaps.
    pub fn replay_schedule(
        &mut self,
        trace: &RecordedTrace,
        schedule: &Schedule,
        opts: &ReplayOpts,
    ) -> ReplayOutcome {
        let mut sm = ReplaySm::new(trace, schedule, opts.clone(), None);
        loop {
            match sm.poll(self) {
                TaskPoll::Done(out) => return out,
                TaskPoll::Pending(Wake::Ready) => {}
                TaskPoll::Pending(Wake::Timer(d)) => self.env.advance(d),
            }
        }
    }
}

/// Reactor-lane addressing for one replay: the flow's own client
/// address (every in-flight task gets a unique one, keeping DPI flow
/// keys, IP-fragment reassembly idents, and server-side connections
/// disjoint across interleaved lanes) and its lane-local replay number
/// (the canonical session-wide number is restored when the lane journal
/// is spliced back via [`liberate_obs::Journal::splice_staged`]).
#[derive(Debug, Clone, Copy)]
pub(crate) struct LaneAddr {
    pub client_addr: Ipv4Addr,
    pub replay_no: u64,
}

/// Where one [`ReplaySm`] is in its replay.
enum SmState {
    /// Nothing has run yet: the first poll opens the span, installs the
    /// scripted server, and performs the TCP handshake atomically.
    Init,
    /// Walking the schedule; the index is the next step to lower.
    Steps(usize),
    /// Finished (terminal; polling again is a bug).
    Done,
}

/// One replay as a resumable state machine — the poll-style core of both
/// the sequential [`Session::replay_schedule`] driver and the reactor's
/// interleaved flow tasks. Generic over trace/schedule ownership so the
/// sequential path borrows (`&RecordedTrace`) while reactor tasks share
/// wave-compiled schedules (`Arc<Schedule>`) without cloning.
///
/// Invariant: every yield happens with the substrate quiesced — event
/// heap drained (`run_until_idle`) and client inbox emptied into the
/// machine's own log — so a reactor can swap whole lanes around each
/// poll without leaking in-flight state across flows.
pub(crate) struct ReplaySm<Tr, Sc> {
    trace: Tr,
    schedule: Sc,
    opts: ReplayOpts,
    lane: Option<LaneAddr>,
    state: SmState,
    // ---- live replay context, populated by the Init poll.
    host_start: Option<std::time::Instant>,
    replay_no: u64,
    client_addr: Ipv4Addr,
    client_port: u16,
    server_port: u16,
    client_isn: u32,
    server_isn: u32,
    protocol: TraceProtocol,
    handshake_ok: bool,
    bytes_sent: u64,
    first_data_sent: Option<SimTime>,
    inbox_log: Vec<(SimTime, PacketBuf)>,
    obs: Option<Arc<Mutex<ServerObs>>>,
    t_start: SimTime,
}

impl<Tr, Sc> ReplaySm<Tr, Sc>
where
    Tr: Borrow<RecordedTrace>,
    Sc: Borrow<Schedule>,
{
    /// A machine ready for its first poll. `lane` is `None` for ordinary
    /// (sequential / threads-engine) replays, which use [`CLIENT_ADDR`]
    /// and the session-global replay numbering.
    pub(crate) fn new(trace: Tr, schedule: Sc, opts: ReplayOpts, lane: Option<LaneAddr>) -> Self {
        ReplaySm {
            trace,
            schedule,
            opts,
            lane,
            state: SmState::Init,
            host_start: None,
            replay_no: 0,
            client_addr: CLIENT_ADDR,
            client_port: 0,
            server_port: 0,
            client_isn: 0,
            server_isn: 0,
            protocol: TraceProtocol::Tcp,
            handshake_ok: true,
            bytes_sent: 0,
            first_data_sent: None,
            inbox_log: Vec::new(),
            obs: None,
            t_start: SimTime::ZERO,
        }
    }

    /// Run one quiesced segment.
    pub(crate) fn poll<S: Substrate>(
        &mut self,
        session: &mut Session<S>,
    ) -> TaskPoll<ReplayOutcome> {
        match self.state {
            SmState::Init => self.poll_init(session),
            SmState::Steps(idx) => self.poll_step(session, idx),
            // lint: allow(no-panic) contract: drivers stop at Done; a
            // re-poll is a reactor bug, not a recoverable condition.
            SmState::Done => unreachable!("ReplaySm polled after completion"),
        }
    }

    fn poll_init<S: Substrate>(&mut self, session: &mut Session<S>) -> TaskPoll<ReplayOutcome> {
        session.replays += 1;
        self.replay_no = match self.lane {
            Some(l) => l.replay_no,
            None => session.replays,
        };
        session.env.journal().metrics.incr(Counter::ReplaysExecuted);
        // Each replay is a micro span under whichever Fig. 3 phase is
        // running it, and the one place host time is measured: core is
        // outside the simulator's determinism boundary, and the wall
        // clock feeds only the non-deterministic replay-host-micros
        // histogram (never the JSONL export).
        self.host_start = Some(std::time::Instant::now());
        session
            .env
            .journal()
            .span_start(session.env.clock().as_micros(), Phase::Replay);
        session.env.clear_capture();
        // Restart inter-event-gap accounting at the replay boundary so
        // the step-sim-micros distribution is a per-replay property,
        // identical across back-to-back and lane-interleaved execution.
        session.env.mark_step_epoch();

        if let Some(l) = self.lane {
            self.client_addr = l.client_addr;
        }
        self.client_port = session.next_client_port;
        session.next_client_port = session
            .next_client_port
            .wrapping_add(session.port_stride.max(1))
            .max(20_000);
        self.server_port = self
            .opts
            .server_port
            .unwrap_or(self.trace.borrow().server_port);

        // Install the scripted server for this (possibly transformed)
        // trace — keyed by client address in lane mode, so concurrent
        // flows each talk to their own script.
        let script = server_script(
            self.trace.borrow(),
            self.schedule.borrow().server_skip_prefix,
        );
        self.obs = Some(match self.lane {
            Some(l) => session.env.install_server_script_for(l.client_addr, script),
            None => session.env.install_server_script(script),
        });

        self.t_start = session.env.clock();
        self.protocol = self
            .schedule
            .borrow()
            .protocol
            .unwrap_or(self.trace.borrow().protocol);

        if self.protocol == TraceProtocol::Tcp {
            session.isn_counter = session.isn_counter.wrapping_add(97_000);
            self.client_isn = session.isn_counter;
            let syn = Packet::tcp(
                self.client_addr,
                SERVER_ADDR,
                self.client_port,
                self.server_port,
                self.client_isn,
                0,
                Vec::new(),
            )
            .with_flags(TcpFlags::SYN);
            self.bytes_sent += syn.serialize().len() as u64;
            session.env.inject_client(Duration::ZERO, syn.serialize());
            session.env.run_until_idle();
            let inbox = session.env.take_client_inbox();
            let client_port = self.client_port;
            let syn_ack = inbox.iter().find_map(|(_, w)| {
                let p = ParsedPacket::parse(w)?;
                let t = p.tcp()?;
                (t.flags.syn && t.flags.ack && t.dst_port == client_port).then(|| t.seq)
            });
            self.inbox_log.extend(inbox);
            match syn_ack {
                Some(s) => {
                    self.server_isn = s;
                    let ack = Packet::tcp(
                        self.client_addr,
                        SERVER_ADDR,
                        self.client_port,
                        self.server_port,
                        self.client_isn.wrapping_add(1),
                        self.server_isn.wrapping_add(1),
                        Vec::new(),
                    )
                    .with_flags(TcpFlags::ACK);
                    self.bytes_sent += ack.serialize().len() as u64;
                    session.env.inject_client(Duration::ZERO, ack.serialize());
                    session.env.run_until_idle();
                }
                None => self.handshake_ok = false,
            }
        }
        // Quiesce for the yield: anything already delivered belongs to
        // this machine's log (collection time is invisible — the log is
        // only read at observation, in delivery order either way).
        self.inbox_log.extend(session.env.take_client_inbox());

        if !self.handshake_ok {
            return self.finish(session);
        }
        self.state = SmState::Steps(0);
        TaskPoll::Pending(Wake::Ready)
    }

    fn poll_step<S: Substrate>(
        &mut self,
        session: &mut Session<S>,
        idx: usize,
    ) -> TaskPoll<ReplayOutcome> {
        if idx >= self.schedule.borrow().steps.len() {
            // Trailing drain, exactly as the inline loop had after the
            // last step (a no-op on an already-quiesced backend).
            session.env.run_until_idle();
            self.inbox_log.extend(session.env.take_client_inbox());
            return self.finish(session);
        }
        session.env.journal().metrics.incr(Counter::StepsLowered);
        self.state = SmState::Steps(idx + 1);
        let wake = {
            let schedule = self.schedule.borrow();
            match &schedule.steps[idx] {
                Step::Pause(d) => Wake::Timer(*d),
                Step::AwaitServer { .. } => {
                    // run_until_idle drains even shaper-delayed
                    // deliveries, so one pass suffices.
                    Wake::Ready
                }
                Step::Packet(sp) => {
                    if sp.counts && !sp.payload.is_empty() && self.first_data_sent.is_none() {
                        self.first_data_sent = Some(session.env.clock());
                    }
                    for wire in build_wire_packets(
                        self.protocol,
                        sp,
                        self.client_addr,
                        self.client_port,
                        self.server_port,
                        self.client_isn,
                        self.server_isn,
                        self.replay_no,
                        &self.opts,
                    ) {
                        self.bytes_sent += wire.len() as u64;
                        session.env.inject_client(Duration::ZERO, wire);
                    }
                    Wake::Ready
                }
            }
        };
        session.env.run_until_idle();
        self.inbox_log.extend(session.env.take_client_inbox());
        TaskPoll::Pending(wake)
    }

    /// Observation and bookkeeping — the back half of the old inline
    /// replay, byte-for-byte.
    fn finish<S: Substrate>(&mut self, session: &mut Session<S>) -> TaskPoll<ReplayOutcome> {
        session.bytes_sent_total += self.bytes_sent;
        let trace = self.trace.borrow();
        let client_port = self.client_port;
        let protocol = self.protocol;

        // ----- Observe.
        let mut rsts = 0usize;
        let mut block_page = false;
        let mut meter = ThroughputMeter::default();
        let mut server_payload = 0u64;
        let mut icmp = Vec::new();
        let mut first_payload_at: Option<SimTime> = None;
        let mut received_stream: Vec<u8> = Vec::new();
        for (at, wire) in &self.inbox_log {
            if let Some(e) = parse_icmp_error(wire) {
                icmp.push(e);
                continue;
            }
            let Some(p) = ParsedPacket::parse(wire) else {
                continue;
            };
            let ours = p.dst_port() == Some(client_port) || protocol == TraceProtocol::Udp;
            if !ours {
                continue;
            }
            if let Some(t) = p.tcp() {
                if t.flags.rst {
                    rsts += 1;
                    continue;
                }
            }
            if p.payload.starts_with(b"HTTP/1.1 403 Forbidden") {
                block_page = true;
                continue;
            }
            if !p.payload.is_empty() {
                server_payload += p.payload.len() as u64;
                meter.record(*at, p.payload.len());
                first_payload_at.get_or_insert(*at);
                if received_stream.len() < 1 << 20 {
                    received_stream.extend_from_slice(&p.payload);
                }
            }
        }

        let expected_server_bytes: u64 = trace
            .server_messages()
            .map(|m| m.payload.len() as u64)
            .sum();

        // Server-side integrity: the delivered stream must match the
        // trace's client stream (after prefix skipping).
        let expected_client = trace.client_stream();
        let integrity_ok = {
            // lint: allow(no-panic) contract: obs installed in the Init poll
            let obs = self.obs.as_ref().expect("script installed at init").lock();
            match protocol {
                TraceProtocol::Tcp => {
                    let got = &obs.received_stream;
                    expected_client.starts_with(got.as_slice())
                        || got.as_slice().starts_with(&expected_client)
                }
                TraceProtocol::Udp => obs.datagrams.iter().all(|d| {
                    trace
                        .client_messages()
                        .any(|m| m.payload == *d || m.payload.starts_with(d))
                }),
            }
        };

        session.bytes_received_total += server_payload;
        // Content-modification check: the bytes the client received must
        // be a prefix of the trace's server stream (bounded to the first
        // MiB for large video traces).
        let mut expected_stream: Vec<u8> = Vec::new();
        for m in trace.server_messages() {
            if expected_stream.len() >= 1 << 20 {
                break;
            }
            expected_stream.extend_from_slice(&m.payload);
        }
        let cmp_len = received_stream
            .len()
            .min(expected_stream.len())
            .min(1 << 20);
        let response_matches = received_stream[..cmp_len] == expected_stream[..cmp_len];

        let request_to_response = match (self.first_data_sent, first_payload_at) {
            (Some(a), Some(b)) if b >= a => Some(b - a),
            _ => None,
        };

        let duration = session.env.clock() - self.t_start;
        let outcome = ReplayOutcome {
            client_addr: self.client_addr,
            client_port,
            server_port: self.server_port,
            handshake_ok: self.handshake_ok,
            rsts,
            block_page,
            server_payload_bytes: server_payload,
            expected_server_bytes,
            complete: server_payload >= expected_server_bytes && expected_server_bytes > 0,
            integrity_ok,
            bytes_sent: self.bytes_sent,
            duration,
            avg_bps: meter.average_bps(),
            peak_bps: meter.peak_bps(Duration::from_secs(1)),
            request_to_response,
            response_matches,
            icmp,
        };
        // lint: allow(obs-coverage: ReplayFinished) the paired
        // ReplaysExecuted increment happens in poll_init — one state
        // machine, split across polls.
        session.env.journal().record(
            session.env.clock().as_micros(),
            EventKind::ReplayFinished {
                replay: self.replay_no,
                bytes_sent: self.bytes_sent,
                server_bytes: server_payload,
                blocked: outcome.blocked(),
            },
        );
        session
            .env
            .journal()
            .span_end(session.env.clock().as_micros(), Phase::Replay);
        if let Some(host_start) = self.host_start {
            // lint: allow(obs-coverage: ReplayHostMicros) paired with the
            // ReplaysExecuted increment in poll_init.
            session.env.journal().observe(
                Hist::ReplayHostMicros,
                host_start.elapsed().as_micros() as u64,
            );
        }
        // Lane flows tear their scripted server (and its connection
        // state) down on completion, bounding endpoint memory when a
        // reactor drives very many flows through one host.
        if let Some(l) = self.lane {
            session.env.remove_server_script_for(l.client_addr);
        }
        self.state = SmState::Done;
        TaskPoll::Done(outcome)
    }
}

/// Lower one scheduled packet to wire bytes. `ident` seeds the IP
/// identification pattern (the session-global replay number inline;
/// the lane-local one on reactor lanes, where the per-lane client
/// address keeps reassembly keys disjoint anyway).
#[allow(clippy::too_many_arguments)]
fn build_wire_packets(
    protocol: TraceProtocol,
    sp: &ScheduledPacket,
    client_addr: Ipv4Addr,
    client_port: u16,
    server_port: u16,
    client_isn: u32,
    server_isn: u32,
    ident: u64,
    opts: &ReplayOpts,
) -> Vec<Vec<u8>> {
    let mut pkt = match protocol {
        TraceProtocol::Tcp => {
            let seq = client_isn.wrapping_add(1).wrapping_add(sp.offset as u32);
            Packet::tcp(
                client_addr,
                SERVER_ADDR,
                client_port,
                server_port,
                seq,
                server_isn.wrapping_add(1),
                sp.payload.clone(),
            )
        }
        TraceProtocol::Udp => Packet::udp(
            client_addr,
            SERVER_ADDR,
            client_port,
            server_port,
            sp.payload.clone(),
        ),
    };
    if let Some(ttl) = opts.data_ttl {
        pkt.ip.ttl = ttl;
    }
    pkt.ip.identification = (ident as u16)
        .wrapping_mul(251)
        .wrapping_add((sp.offset as u16).wrapping_mul(31));
    sp.craft.apply(&mut pkt);
    let wire = pkt.serialize();

    match &sp.fragment {
        None => vec![wire],
        Some(plan) => {
            // Convert the payload-relative boundary into an IP-payload
            // boundary (transport header included), rounded down to
            // the fragmentation granularity.
            let transport_header = wire.len() - 20 - sp.payload.len();
            let boundary = plan
                .boundary
                .map(|b| transport_header + b)
                .unwrap_or((wire.len() - 20) / plan.pieces.max(1));
            let chunk = (boundary / 8).max(1) * 8;
            let mut frags = fragment_packet(&wire, chunk);
            if plan.reverse {
                frags.reverse();
            }
            frags
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use liberate_traces::apps;

    fn session(kind: EnvKind) -> Session {
        Session::new(kind, OsKind::Linux, LiberateConfig::default())
    }

    #[test]
    fn clean_replay_in_sprint_completes() {
        let mut s = session(EnvKind::Sprint);
        let trace = apps::control_http();
        let out = s.replay_trace(&trace, &ReplayOpts::default());
        assert!(out.handshake_ok);
        assert!(out.complete, "{out:?}");
        assert!(out.integrity_ok);
        assert!(!out.blocked());
        assert_eq!(out.server_payload_bytes, out.expected_server_bytes);
        assert!(out.bytes_sent > 0);
    }

    #[test]
    fn blocked_replay_in_gfc_reports_rsts() {
        let mut s = session(EnvKind::Gfc);
        let trace = apps::economist_http();
        let out = s.replay_trace(&trace, &ReplayOpts::default());
        assert!(out.blocked());
        assert!(out.rsts >= 3, "GFC sends 3-5 RSTs, got {}", out.rsts);
    }

    #[test]
    fn iran_reports_block_page() {
        let mut s = session(EnvKind::Iran);
        let trace = apps::facebook_http();
        let out = s.replay_trace(&trace, &ReplayOpts::default());
        assert!(out.block_page);
        assert!(out.rsts >= 1);
    }

    #[test]
    fn udp_replay_round_trips() {
        let mut s = session(EnvKind::Sprint);
        let trace = apps::skype_stun(6);
        let out = s.replay_trace(&trace, &ReplayOpts::default());
        assert!(out.complete, "{out:?}");
        assert!(out.integrity_ok);
    }

    #[test]
    fn throttling_shows_in_throughput() {
        let mut tm = session(EnvKind::TMobile);
        let video = apps::amazon_prime_http(2_000_000);
        let throttled = tm.replay_trace(&video, &ReplayOpts::default());
        assert!(throttled.complete);
        let mut sp = session(EnvKind::Sprint);
        let free = sp.replay_trace(&video, &ReplayOpts::default());
        assert!(free.complete);
        assert!(
            throttled.avg_bps < free.avg_bps * 0.7,
            "throttled {} vs free {}",
            throttled.avg_bps,
            free.avg_bps
        );
    }

    #[test]
    fn technique_replay_evades_gfc_with_rst_before_match() {
        let mut s = session(EnvKind::Gfc);
        let trace = apps::economist_http();
        let ctx = EvasionContext::blind(
            b"GET / HTTP/1.1\r\nHost: www.example.org\r\n\r\n".to_vec(),
            s.env.hops_before_middlebox + 1,
        );
        let out = s
            .replay_with(
                &trace,
                &Technique::TtlRstBeforeMatch,
                &ctx,
                &ReplayOpts::default(),
            )
            .unwrap();
        assert!(!out.blocked(), "{out:?}");
        assert!(out.complete);
        assert!(out.integrity_ok);
    }

    #[test]
    fn data_ttl_probe_gets_icmp() {
        let mut s = session(EnvKind::Gfc);
        let trace = apps::control_http();
        let out = s.replay_trace(
            &trace,
            &ReplayOpts {
                data_ttl: Some(2),
                ..Default::default()
            },
        );
        assert!(!out.icmp.is_empty(), "TTL=2 data should trigger ICMP");
        assert!(!out.complete);
    }

    #[test]
    fn dummy_prefix_with_server_support() {
        let mut s = session(EnvKind::Gfc);
        let trace = apps::economist_http();
        let ctx = EvasionContext::blind(Vec::new(), 10);
        let out = s
            .replay_with(
                &trace,
                &Technique::DummyPrefixData { bytes: 1 },
                &ctx,
                &ReplayOpts::default(),
            )
            .unwrap();
        assert!(!out.blocked(), "dummy prefix evades the GFC: {out:?}");
        assert!(out.complete);
        assert!(out.integrity_ok, "server skipped the prefix");
    }

    #[test]
    fn port_rotation_changes_server_port() {
        let mut s = session(EnvKind::Sprint);
        let trace = apps::control_http();
        let out = s.replay_trace(
            &trace,
            &ReplayOpts {
                server_port: Some(8080),
                ..Default::default()
            },
        );
        assert_eq!(out.server_port, 8080);
        assert!(out.complete);
    }
}
