//! Flow schedules: the intermediate representation between a recorded
//! trace and wire packets.
//!
//! A [`Schedule`] is the ordered plan of everything the client side will
//! do for one replay — data segments at stream offsets, crafted inert
//! packets, pauses, waits for server data. Evasion techniques are
//! *schedule rewrites* ([`crate::evasion`]), and the replay engine
//! ([`crate::replay`]) lowers the schedule onto a live connection.

use std::time::Duration;

use liberate_packet::checksum::ChecksumSpec;
use liberate_packet::ipv4::IpOption;
use liberate_packet::packet::{Packet, Transport};
use liberate_packet::tcp::TcpFlags;
use liberate_traces::recorded::{RecordedTrace, Sender, TraceProtocol};

/// Header mutations applied to one scheduled packet — the raw material of
/// inert-packet crafting (Table 3's rows).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Craft {
    pub ttl: Option<u8>,
    pub ip_version: Option<u8>,
    pub ip_ihl: Option<u8>,
    /// Added to the correct total length.
    pub ip_total_length_delta: Option<i32>,
    pub ip_bad_checksum: bool,
    pub ip_protocol: Option<u8>,
    pub ip_options: Vec<IpOption>,
    /// Added to the in-stream sequence number (TCP only).
    pub seq_delta: i64,
    pub tcp_bad_checksum: bool,
    pub tcp_flags: Option<TcpFlags>,
    pub tcp_data_offset: Option<u8>,
    /// Override the TCP window (used to watermark lib·erate's own inert
    /// RSTs so captures can tell them apart from censor-injected ones).
    pub tcp_window: Option<u16>,
    pub udp_bad_checksum: bool,
    /// Added to the correct UDP length field.
    pub udp_length_delta: Option<i32>,
}

impl Craft {
    pub fn is_default(&self) -> bool {
        *self == Craft::default()
    }

    /// Apply these mutations to a fully built packet.
    pub fn apply(&self, pkt: &mut Packet) {
        if let Some(ttl) = self.ttl {
            pkt.ip.ttl = ttl;
        }
        if let Some(v) = self.ip_version {
            pkt.ip.version = v;
        }
        if let Some(ihl) = self.ip_ihl {
            pkt.ip.ihl = Some(ihl);
        }
        if !self.ip_options.is_empty() {
            pkt.ip.options = self.ip_options.clone();
        }
        if let Some(delta) = self.ip_total_length_delta {
            let transport_len = match &pkt.transport {
                Transport::Tcp(t) => t.actual_header_len(),
                Transport::Udp(_) => liberate_packet::udp::UDP_HEADER_LEN,
                Transport::Raw(_) => 0,
            };
            let actual = pkt.ip.actual_header_len() + transport_len + pkt.payload.len();
            let target = (actual as i64 + delta as i64).clamp(0, u16::MAX as i64) as u16;
            pkt.ip.total_length = Some(target);
        }
        if self.ip_bad_checksum {
            pkt.ip.checksum = ChecksumSpec::Fixed(0x0bad);
        }
        if let Some(p) = self.ip_protocol {
            pkt.ip.protocol = Some(p);
        }
        match &mut pkt.transport {
            Transport::Tcp(t) => {
                if self.seq_delta != 0 {
                    t.seq = (t.seq as i64).wrapping_add(self.seq_delta) as u32;
                }
                if self.tcp_bad_checksum {
                    t.checksum = ChecksumSpec::Fixed(0xbadc);
                }
                if let Some(flags) = self.tcp_flags {
                    t.flags = flags;
                }
                if let Some(off) = self.tcp_data_offset {
                    t.data_offset = Some(off);
                }
                if let Some(w) = self.tcp_window {
                    t.window = w;
                }
            }
            Transport::Udp(u) => {
                if self.udp_bad_checksum {
                    u.checksum = ChecksumSpec::Fixed(0xbadc);
                }
                if let Some(delta) = self.udp_length_delta {
                    let actual = (liberate_packet::udp::UDP_HEADER_LEN + pkt.payload.len()) as i64;
                    u.length = Some((actual + delta as i64).clamp(0, u16::MAX as i64) as u16);
                }
            }
            Transport::Raw(_) => {}
        }
    }
}

/// Fragmentation plan for one scheduled packet.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FragPlan {
    /// Number of fragments to produce (the paper uses m = 2, §5.2).
    pub pieces: usize,
    /// Send the fragments in reverse order.
    pub reverse: bool,
    /// Payload byte that must fall on a fragment boundary (so a matching
    /// field is split across fragments). The engine rounds it to the
    /// 8-byte fragmentation granularity.
    pub boundary: Option<usize>,
}

/// One client packet to emit.
#[derive(Debug, Clone, PartialEq)]
pub struct ScheduledPacket {
    /// Byte offset within the client stream this payload claims
    /// (determines the TCP sequence number). For UDP it is only used for
    /// bookkeeping.
    pub offset: u64,
    pub payload: Vec<u8>,
    /// Whether this packet is real data (true) or an inert insertion
    /// (false). Inert packets never advance the expected stream.
    pub counts: bool,
    pub craft: Craft,
    pub fragment: Option<FragPlan>,
}

impl ScheduledPacket {
    pub fn data(offset: u64, payload: Vec<u8>) -> ScheduledPacket {
        ScheduledPacket {
            offset,
            payload,
            counts: true,
            craft: Craft::default(),
            fragment: None,
        }
    }

    pub fn inert(offset: u64, payload: Vec<u8>, craft: Craft) -> ScheduledPacket {
        ScheduledPacket {
            offset,
            payload,
            counts: false,
            craft,
            fragment: None,
        }
    }
}

/// One step of a client-side replay plan.
#[derive(Debug, Clone, PartialEq)]
pub enum Step {
    Packet(ScheduledPacket),
    /// Advance simulated time with no traffic.
    Pause(Duration),
    /// Wait until the client has received at least this many cumulative
    /// payload bytes from the server.
    AwaitServer {
        cumulative_bytes: u64,
    },
}

/// The full client-side plan for one replay.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Schedule {
    pub steps: Vec<Step>,
    pub protocol: Option<TraceProtocol>,
    /// Bytes at the start of the client stream the server application
    /// should discard (used by the server-supported dummy-prefix
    /// technique).
    pub server_skip_prefix: u64,
}

impl Schedule {
    /// Build the base schedule from a recorded trace: one data packet per
    /// client message, an await after each run of server messages.
    pub fn from_trace(trace: &RecordedTrace) -> Schedule {
        let mut steps = Vec::new();
        let mut offset = 0u64;
        let mut server_cumulative = 0u64;
        let mut pending_await = false;
        for msg in &trace.messages {
            match msg.sender {
                Sender::Client => {
                    if pending_await {
                        steps.push(Step::AwaitServer {
                            cumulative_bytes: server_cumulative,
                        });
                        pending_await = false;
                    }
                    if msg.gap_micros > 0 {
                        steps.push(Step::Pause(Duration::from_micros(msg.gap_micros)));
                    }
                    steps.push(Step::Packet(ScheduledPacket::data(
                        offset,
                        msg.payload.clone(),
                    )));
                    offset += msg.payload.len() as u64;
                }
                Sender::Server => {
                    server_cumulative += msg.payload.len() as u64;
                    pending_await = true;
                }
            }
        }
        if pending_await {
            steps.push(Step::AwaitServer {
                cumulative_bytes: server_cumulative,
            });
        }
        Schedule {
            steps,
            protocol: Some(trace.protocol),
            server_skip_prefix: 0,
        }
    }

    /// Indices (into `steps`) of data packets, in order.
    pub fn data_packet_indices(&self) -> Vec<usize> {
        self.steps
            .iter()
            .enumerate()
            .filter_map(|(i, s)| match s {
                Step::Packet(p) if p.counts => Some(i),
                _ => None,
            })
            .collect()
    }

    /// Total client payload bytes of real data.
    pub fn client_bytes(&self) -> u64 {
        self.steps
            .iter()
            .map(|s| match s {
                Step::Packet(p) if p.counts => p.payload.len() as u64,
                _ => 0,
            })
            .sum()
    }

    /// Extra packets this schedule emits beyond the base data packets
    /// (inert insertions) — the technique-overhead metric of Table 2.
    pub fn inert_packet_count(&self) -> usize {
        self.steps
            .iter()
            .filter(|s| matches!(s, Step::Packet(p) if !p.counts))
            .count()
    }

    /// Total pause time inserted.
    pub fn pause_total(&self) -> Duration {
        self.steps
            .iter()
            .map(|s| match s {
                Step::Pause(d) => *d,
                _ => Duration::ZERO,
            })
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use liberate_traces::recorded::TraceMessage;
    use std::net::Ipv4Addr;

    fn trace() -> RecordedTrace {
        let mut t = RecordedTrace::new("t", TraceProtocol::Tcp, 80);
        t.push_message(TraceMessage::client(&b"GET /"[..]));
        t.push_message(TraceMessage::server(&b"HTTP/1.1 200 OK"[..]));
        t.push_message(TraceMessage::server(&b"body"[..]));
        t.push_message(TraceMessage::client(&b"GET /2"[..]));
        t.push_message(TraceMessage::server(&b"resp2"[..]));
        t
    }

    #[test]
    fn base_schedule_structure() {
        let s = Schedule::from_trace(&trace());
        // pkt, await(19), pkt, await(24)
        assert_eq!(s.steps.len(), 4);
        assert!(matches!(&s.steps[0], Step::Packet(p) if p.payload == b"GET /" && p.offset == 0));
        assert!(matches!(
            &s.steps[1],
            Step::AwaitServer {
                cumulative_bytes: 19
            }
        ));
        assert!(matches!(&s.steps[2], Step::Packet(p) if p.offset == 5));
        assert!(matches!(
            &s.steps[3],
            Step::AwaitServer {
                cumulative_bytes: 24
            }
        ));
        assert_eq!(s.client_bytes(), 11);
        assert_eq!(s.inert_packet_count(), 0);
    }

    #[test]
    fn craft_applies_all_fields() {
        let mut pkt = Packet::tcp(
            Ipv4Addr::new(1, 1, 1, 1),
            Ipv4Addr::new(2, 2, 2, 2),
            10,
            80,
            1000,
            2000,
            &b"payload"[..],
        );
        let craft = Craft {
            ttl: Some(3),
            ip_bad_checksum: true,
            seq_delta: 1_000_000,
            tcp_flags: Some(TcpFlags::PSH_ONLY),
            ..Craft::default()
        };
        craft.apply(&mut pkt);
        assert_eq!(pkt.ip.ttl, 3);
        let wire = pkt.serialize();
        let defects = liberate_packet::validate::validate_wire(&wire);
        assert!(defects.contains(&liberate_packet::validate::Malformation::IpChecksumWrong));
        assert!(defects.contains(&liberate_packet::validate::Malformation::TcpAckFlagMissing));
        let parsed = liberate_packet::packet::ParsedPacket::parse(&wire).unwrap();
        assert_eq!(parsed.tcp().unwrap().seq, 1_001_000);
    }

    #[test]
    fn craft_total_length_delta() {
        let mut pkt = Packet::tcp(
            Ipv4Addr::new(1, 1, 1, 1),
            Ipv4Addr::new(2, 2, 2, 2),
            10,
            80,
            0,
            0,
            &b"1234567890"[..],
        );
        Craft {
            ip_total_length_delta: Some(20),
            ..Craft::default()
        }
        .apply(&mut pkt);
        let wire = pkt.serialize();
        let parsed = liberate_packet::packet::ParsedPacket::parse(&wire).unwrap();
        assert_eq!(parsed.ip.total_length as usize, wire.len() + 20);
    }

    #[test]
    fn craft_udp_length() {
        let mut pkt = Packet::udp(
            Ipv4Addr::new(1, 1, 1, 1),
            Ipv4Addr::new(2, 2, 2, 2),
            10,
            99,
            &b"12345678"[..],
        );
        Craft {
            udp_length_delta: Some(-4),
            ..Craft::default()
        }
        .apply(&mut pkt);
        let wire = pkt.serialize();
        let parsed = liberate_packet::packet::ParsedPacket::parse(&wire).unwrap();
        assert_eq!(parsed.udp().unwrap().length, 12);
    }

    #[test]
    fn gaps_become_pauses() {
        let mut t = RecordedTrace::new("t", TraceProtocol::Udp, 9);
        t.push_message(TraceMessage::client(&b"a"[..]));
        t.push_message(TraceMessage::client(&b"b"[..]).after(Duration::from_millis(20)));
        let s = Schedule::from_trace(&t);
        assert!(matches!(s.steps[1], Step::Pause(d) if d == Duration::from_millis(20)));
    }
}
