//! A statement-level IR over the token stream: per-function block trees
//! with statement segmentation and `let`-binding extraction.
//!
//! The token rules of PRs 1–5 pattern-match flat token windows, which is
//! enough for "this identifier appears" checks but blind to *lifetimes*:
//! a lock guard bound by destructuring, shadowed, or moved into a helper
//! is invisible to a window scan. This module recovers just enough
//! structure to reason about binding lifetimes — a brace-matched block
//! tree per `fn`, statements segmented at top-level `;`/`,`, and the
//! names each `let` pattern binds (tuples, slices, structs, tuple
//! structs, `ref`/`mut` modifiers) — without becoming a Rust parser. The
//! guard-lifetime dataflow in [`crate::dataflow`] runs on top of it.
//!
//! Deliberate approximations (documented so rule authors know the edges):
//! statement segmentation treats `,` at brace depth 0 as a separator (so
//! match arms and struct-literal fields become "statements", which only
//! makes scopes finer, never coarser), `if let`/`while let` condition
//! bindings are not tracked (no guard in the workspace is bound that
//! way), and pattern idents starting with an uppercase letter are treated
//! as paths/variants rather than bindings, per Rust naming convention.

use crate::items::{fn_spans, matching_brace};
use crate::lexer::Token;

/// One name introduced by a `let` pattern.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Binding {
    pub name: String,
    /// Token index of the binding identifier.
    pub at: usize,
    pub line: u32,
}

/// One statement: a run of tokens ended by a top-level `;`/`,`, a
/// statement-level block, or the enclosing block's close.
#[derive(Debug, Clone)]
pub struct Stmt {
    /// First token of the statement (inclusive).
    pub start: usize,
    /// Token just past the statement, including its separator (exclusive).
    pub end: usize,
    pub line: u32,
    /// Names bound when this is a `let` statement (destructuring yields
    /// several, in pattern order).
    pub bindings: Vec<Binding>,
    /// Token span of the initializer expression — after `=`, before the
    /// terminating `;` (or the `else` of a `let ... else`).
    pub init: Option<(usize, usize)>,
    /// Brace blocks lexically inside this statement, in source order:
    /// if/else arms, loop and match bodies, closure bodies, struct
    /// literals, `let ... else` blocks.
    pub blocks: Vec<Block>,
}

/// A `{ ... }` region holding a statement sequence.
#[derive(Debug, Clone)]
pub struct Block {
    /// Token index of the opening `{`.
    pub start: usize,
    /// Token just past the matching `}` (exclusive).
    pub end: usize,
    pub stmts: Vec<Stmt>,
}

/// One function lowered to the IR.
#[derive(Debug, Clone)]
pub struct FnIr {
    pub name: String,
    pub line: u32,
    /// Token index of the `fn` keyword.
    pub start: usize,
    /// Token just past the body's closing `}` (exclusive).
    pub end: usize,
    /// The body block; `None` for bodyless trait-method declarations.
    pub body: Option<Block>,
}

impl FnIr {
    /// Does token index `i` fall inside this fn's span?
    pub fn contains(&self, i: usize) -> bool {
        self.start <= i && i < self.end
    }
}

/// Lower every `fn` in the token stream. Nested fns appear both as their
/// own `FnIr` and (as an opaque block) inside their parent's tree; the
/// dataflow skips nested spans when scanning parents.
pub fn lower(tokens: &[Token]) -> Vec<FnIr> {
    fn_spans(tokens)
        .into_iter()
        .map(|s| FnIr {
            body: s.body_start.map(|b| parse_block(tokens, b)),
            name: s.name,
            line: s.line,
            start: s.start,
            end: s.end,
        })
        .collect()
}

/// Keywords that open a control-flow statement whose body block (rather
/// than a `;`) can terminate the statement.
const CTRL_KEYWORDS: &[&str] = &["if", "match", "while", "for", "loop", "unsafe"];

/// Parse the block whose `{` sits at `open`.
fn parse_block(tokens: &[Token], open: usize) -> Block {
    let end = matching_brace(tokens, open);
    let close = end.saturating_sub(1); // index of the `}` itself
    let mut stmts = Vec::new();
    let mut i = open + 1;
    while i < close {
        let stmt = parse_stmt(tokens, i, close);
        let next = stmt.end.max(i + 1);
        stmts.push(stmt);
        i = next;
    }
    Block {
        start: open,
        end,
        stmts,
    }
}

/// Parse one statement starting at `start`, not scanning past `limit`
/// (the enclosing block's `}`).
fn parse_stmt(tokens: &[Token], start: usize, limit: usize) -> Stmt {
    let line = tokens[start].line;
    let mut bindings = Vec::new();
    let mut init: Option<(usize, usize)> = None;
    let mut blocks = Vec::new();

    let is_let = tokens[start].is("let");
    // Bare `{ ... }` statements terminate at their close, like control
    // statements do.
    let is_ctrl = CTRL_KEYWORDS.contains(&tokens[start].text.as_str()) || tokens[start].is("{");

    let mut i = start;
    if is_let {
        // Pattern runs to the `=` (or type `:`) at bracket depth 0.
        let mut j = start + 1;
        let mut depth = 0i32;
        let mut pat_end = None;
        while j < limit {
            let t = &tokens[j];
            match t.text.as_str() {
                "(" | "[" | "{" => depth += 1,
                ")" | "]" | "}" => depth -= 1,
                "=" if depth == 0 && !tokens.get(j + 1).is_some_and(|n| n.is("=")) => {
                    pat_end = Some(j);
                    break;
                }
                ";" if depth == 0 => break,
                ":" if depth == 0 && !tokens.get(j + 1).is_some_and(|n| n.is(":")) => {
                    // Type annotation: pattern is done, keep looking for `=`.
                    bindings = pattern_bindings(tokens, start + 1, j);
                    let mut k = j + 1;
                    let mut tdepth = 0i32;
                    while k < limit {
                        match tokens[k].text.as_str() {
                            "(" | "[" | "{" => tdepth += 1,
                            ")" | "]" | "}" => tdepth -= 1,
                            "=" if tdepth == 0 && !tokens.get(k + 1).is_some_and(|n| n.is("=")) => {
                                pat_end = Some(k);
                                break;
                            }
                            ";" if tdepth == 0 => break,
                            _ => {}
                        }
                        k += 1;
                    }
                    break;
                }
                _ => {}
            }
            j += 1;
        }
        if let Some(eq) = pat_end {
            if bindings.is_empty() {
                bindings = pattern_bindings(tokens, start + 1, eq);
            }
            i = eq + 1;
            let init_start = i;
            let end = scan_expr(tokens, &mut i, limit, &mut blocks, false);
            // The initializer stops before a `let ... else { .. }` block.
            let mut init_end = end.saturating_sub(1).max(init_start);
            if let Some(else_at) = (init_start..init_end).find(|&k| tokens[k].is("else")) {
                init_end = else_at;
            }
            init = Some((init_start, init_end));
            return Stmt {
                start,
                end,
                line,
                bindings,
                init,
                blocks,
            };
        }
        // `let` without `=` before the terminator (malformed or `let x;`):
        // fall through and consume to the separator.
        if bindings.is_empty() {
            let stop = pat_end.unwrap_or(j.min(limit));
            bindings = pattern_bindings(tokens, start + 1, stop);
        }
        i = j;
        let end = scan_expr(tokens, &mut i, limit, &mut blocks, false);
        return Stmt {
            start,
            end,
            line,
            bindings,
            init,
            blocks,
        };
    }

    let end = scan_expr(tokens, &mut i, limit, &mut blocks, is_ctrl);
    Stmt {
        start,
        end,
        line,
        bindings,
        init,
        blocks,
    }
}

/// Advance `*i` to the end of the current statement, collecting nested
/// blocks along the way. Returns the exclusive end index (past the
/// `;`/`,` separator when one terminated the statement).
///
/// `block_terminates`: for control statements (`if`/`match`/...), a brace
/// block at paren depth 0 ends the statement unless followed by `else`
/// (else-if chains keep going) or by `.`/`?` (a block expression being
/// methoded on).
fn scan_expr(
    tokens: &[Token],
    i: &mut usize,
    limit: usize,
    blocks: &mut Vec<Block>,
    block_terminates: bool,
) -> usize {
    let mut paren_depth = 0i32;
    while *i < limit {
        let t = &tokens[*i];
        match t.text.as_str() {
            "(" | "[" => {
                paren_depth += 1;
                *i += 1;
            }
            ")" | "]" => {
                paren_depth -= 1;
                *i += 1;
            }
            "{" => {
                let block = parse_block(tokens, *i);
                let after = block.end;
                blocks.push(block);
                *i = after;
                if paren_depth == 0 {
                    let next = tokens.get(*i);
                    let chained =
                        next.is_some_and(|n| n.is("else") || n.is(".") || n.is("?") || n.is("{"));
                    if block_terminates && !chained {
                        return *i;
                    }
                    if !block_terminates && next.is_some_and(|n| n.is("}")) {
                        // Trailing block expression at the end of the
                        // enclosing block.
                        return *i;
                    }
                }
            }
            ";" | "," if paren_depth <= 0 => {
                *i += 1;
                return *i;
            }
            _ => *i += 1,
        }
    }
    *i
}

/// Rust keywords and pattern atoms that are never bindings.
const NON_BINDING: &[&str] = &[
    "mut", "ref", "box", "_", "true", "false", "self", "Self", "super", "crate", "dyn", "move",
    "static", "const", "if", "else", "in",
];

/// Extract the names a pattern in `tokens[lo..hi]` binds.
pub fn pattern_bindings(tokens: &[Token], lo: usize, hi: usize) -> Vec<Binding> {
    let mut out = Vec::new();
    let mut j = lo;
    while j < hi {
        let t = &tokens[j];
        let is_ident = !t.text.is_empty()
            && t.text
                .chars()
                .all(|c| c.is_ascii_alphanumeric() || c == '_')
            && !t.text.chars().next().is_some_and(|c| c.is_ascii_digit());
        if !is_ident || NON_BINDING.contains(&t.text.as_str()) {
            j += 1;
            continue;
        }
        // Uppercase-initial idents are paths/variants by convention.
        if t.text
            .chars()
            .next()
            .is_some_and(|c| c.is_ascii_uppercase())
        {
            j += 1;
            continue;
        }
        // Path segments (`foo::Bar`, `Foo::baz`) are not bindings.
        let after_path_sep = j >= 2 && tokens[j - 1].is(":") && tokens[j - 2].is(":");
        // Lookahead stays inside the pattern span: a `:` just past `hi`
        // is the statement's type annotation, not part of the pattern.
        let next = tokens.get(j + 1).filter(|_| j + 1 < hi);
        let next2 = tokens.get(j + 2).filter(|_| j + 2 < hi);
        // A constructor/path head: `ident(`, `ident{`, `ident::`, `ident!`.
        let is_head = next.is_some_and(|n| n.is("(") || n.is("{") || n.is("!"))
            || (next.is_some_and(|n| n.is(":")) && next2.is_some_and(|n| n.is(":")));
        // A struct-pattern field name before `:` binds the ident after
        // the colon, not this one (`Point { x: px }`).
        let is_field_label = next.is_some_and(|n| n.is(":")) && !next2.is_some_and(|n| n.is(":"));
        if !after_path_sep && !is_head && !is_field_label {
            out.push(Binding {
                name: t.text.clone(),
                at: j,
                line: t.line,
            });
        }
        j += 1;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn ir_of(src: &str) -> Vec<FnIr> {
        lower(&lex(src).tokens)
    }

    fn binding_names(stmt: &Stmt) -> Vec<&str> {
        stmt.bindings.iter().map(|b| b.name.as_str()).collect()
    }

    #[test]
    fn simple_let_statements_segment() {
        let fns = ir_of("fn f() { let a = 1; let b = a + 2; b }");
        assert_eq!(fns.len(), 1);
        let body = fns[0].body.as_ref().unwrap();
        assert_eq!(body.stmts.len(), 3);
        assert_eq!(binding_names(&body.stmts[0]), vec!["a"]);
        assert_eq!(binding_names(&body.stmts[1]), vec!["b"]);
        assert!(body.stmts[2].bindings.is_empty());
    }

    #[test]
    fn tuple_destructuring_binds_all_names() {
        let fns = ir_of("fn f() { let (a, mut b, _) = three(); }");
        let body = fns[0].body.as_ref().unwrap();
        assert_eq!(binding_names(&body.stmts[0]), vec!["a", "b"]);
    }

    #[test]
    fn struct_destructuring_binds_renamed_fields() {
        let fns = ir_of("fn f() { let Point { x: px, y, .. } = p; }");
        let body = fns[0].body.as_ref().unwrap();
        assert_eq!(binding_names(&body.stmts[0]), vec!["px", "y"]);
    }

    #[test]
    fn tuple_struct_pattern_skips_the_constructor() {
        let fns = ir_of("fn f() { let Some(inner) = opt else { return; }; }");
        let body = fns[0].body.as_ref().unwrap();
        assert_eq!(binding_names(&body.stmts[0]), vec!["inner"]);
        // The let-else block is captured as a nested block.
        assert_eq!(body.stmts[0].blocks.len(), 1);
        // The initializer stops before `else`.
        let (lo, hi) = body.stmts[0].init.unwrap();
        let toks = lex("fn f() { let Some(inner) = opt else { return; }; }").tokens;
        let init_text: Vec<&str> = toks[lo..hi].iter().map(|t| t.text.as_str()).collect();
        assert_eq!(init_text, vec!["opt"]);
    }

    #[test]
    fn typed_let_finds_the_initializer() {
        let fns = ir_of("fn f() { let v: Vec<(u8, u8)> = make(); v; }");
        let body = fns[0].body.as_ref().unwrap();
        assert_eq!(binding_names(&body.stmts[0]), vec!["v"]);
        assert!(body.stmts[0].init.is_some());
    }

    #[test]
    fn nested_blocks_attach_to_their_statement() {
        let fns = ir_of("fn f() { if x { let a = 1; } else { let b = 2; } let c = 3; }");
        let body = fns[0].body.as_ref().unwrap();
        assert_eq!(body.stmts.len(), 2, "{:?}", body.stmts);
        assert_eq!(body.stmts[0].blocks.len(), 2);
        assert_eq!(binding_names(&body.stmts[0].blocks[0].stmts[0]), vec!["a"]);
        assert_eq!(binding_names(&body.stmts[0].blocks[1].stmts[0]), vec!["b"]);
        assert_eq!(binding_names(&body.stmts[1]), vec!["c"]);
    }

    #[test]
    fn closure_bodies_inside_calls_become_blocks() {
        let fns = ir_of("fn f() { items.iter().map(|s| { s.len() }).sum::<usize>(); }");
        let body = fns[0].body.as_ref().unwrap();
        assert_eq!(body.stmts.len(), 1);
        assert_eq!(body.stmts[0].blocks.len(), 1);
    }

    #[test]
    fn match_statement_ends_at_its_block() {
        let fns = ir_of("fn f() { match x { A => 1, B => 2 } let tail = 9; }");
        let body = fns[0].body.as_ref().unwrap();
        assert_eq!(body.stmts.len(), 2, "{:?}", body.stmts);
        assert_eq!(binding_names(&body.stmts[1]), vec!["tail"]);
    }

    #[test]
    fn let_with_match_initializer_runs_to_semicolon() {
        let fns = ir_of("fn f() { let v = match x { A => 1, B => 2 }; v }");
        let body = fns[0].body.as_ref().unwrap();
        assert_eq!(body.stmts.len(), 2);
        assert_eq!(binding_names(&body.stmts[0]), vec!["v"]);
        // init span covers through the match block's end.
        assert!(body.stmts[0].init.is_some());
        assert_eq!(body.stmts[0].blocks.len(), 1);
    }

    #[test]
    fn shadowing_lets_are_separate_statements() {
        let fns = ir_of("fn f() { let g = a.lock(); let g = b.lock(); }");
        let body = fns[0].body.as_ref().unwrap();
        assert_eq!(body.stmts.len(), 2);
        assert_eq!(binding_names(&body.stmts[0]), vec!["g"]);
        assert_eq!(binding_names(&body.stmts[1]), vec!["g"]);
    }

    #[test]
    fn bodyless_trait_methods_have_no_body() {
        let fns = ir_of("trait T { fn decl(&self) -> u8; } fn real() { }");
        assert_eq!(fns.len(), 2);
        assert!(fns[0].body.is_none());
        assert!(fns[1].body.is_some());
    }

    #[test]
    fn nested_fns_lower_separately_and_nest_in_parent() {
        let fns = ir_of("fn outer() { fn inner() { let x = 1; } let y = 2; }");
        let names: Vec<&str> = fns.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, vec!["outer", "inner"]);
        assert!(fns[0].contains(fns[1].start));
    }
}
