//! reactor-blocking: nothing on the reactor dispatch path may block the
//! host thread.
//!
//! The event-driven replay engine multiplexes thousands of flow tasks
//! onto one worker thread: `Reactor::step` polls one task, the task
//! yields, the next task runs. A `std::thread::sleep`, a condvar
//! `wait`, a channel `recv`, or a thread `park` inside a
//! `FlowTask::poll` body therefore stalls *every* lane behind the
//! current one — the simulated clock does not move, it is the host that
//! hangs. Waiting is expressed in virtual time instead: return
//! `TaskPoll::Pending(Wake::Timer(..))` and let the timer wheel resume
//! the task at its deadline. This rule scans every method of an impl
//! whose header names `FlowTask` (task implementations and the
//! scheduler generic over them) and flags host-blocking call heads.

use crate::rules::{Finding, Rule, RuleCtx};

pub struct ReactorBlocking;

/// Host-blocking call heads. Matched as `name(` (method or free fn).
/// `lock()` is deliberately absent: journals and the shared flow table
/// take short mutex sections inside polls by design — the discipline for
/// those is LIB009's guard-lifetime rule, not a ban.
const BLOCKING: &[&str] = &[
    "sleep",
    "sleep_ms",
    "park",
    "park_timeout",
    "recv",
    "recv_timeout",
    "wait",
    "wait_timeout",
    "wait_while",
    "yield_now",
];

/// Spans (token-index ranges) of impl-block bodies whose header mentions
/// `FlowTask` — task impls (`impl FlowTask<S> for T`) and anything
/// generic over one (`impl<S, T: FlowTask<S>> Reactor<S, T>`).
fn flowtask_impl_bodies(toks: &[crate::lexer::Token]) -> Vec<(usize, usize)> {
    let mut spans = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        if !toks[i].is("impl") {
            i += 1;
            continue;
        }
        let mut j = i + 1;
        let mut mentions = false;
        while j < toks.len() && !toks[j].is("{") {
            if toks[j].is("FlowTask") {
                mentions = true;
            }
            j += 1;
        }
        if j < toks.len() && mentions {
            let start = j;
            let mut depth = 0usize;
            while j < toks.len() {
                if toks[j].is("{") {
                    depth += 1;
                } else if toks[j].is("}") {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                j += 1;
            }
            spans.push((start, j.min(toks.len())));
        }
        i = j + 1;
    }
    spans
}

impl Rule for ReactorBlocking {
    fn name(&self) -> &'static str {
        "reactor-blocking"
    }

    fn code(&self) -> &'static str {
        "LIB015"
    }

    fn explain(&self) -> &'static str {
        "No host-blocking call (thread::sleep, condvar wait, channel recv, \
thread park/yield) may run on the reactor dispatch path: every method of \
an impl whose header names FlowTask executes with thousands of flow \
lanes multiplexed onto one worker thread, and blocking the host stalls \
all of them without moving the simulated clock. Express waiting in \
virtual time — return TaskPoll::Pending(Wake::Timer(..)) and let the \
timer wheel resume the task at its deadline. Suppress a proven \
exception with `// lint: allow(reactor-blocking)`."
    }

    fn applies(&self, rel_path: &str) -> bool {
        (rel_path.starts_with("crates/core/") || rel_path.starts_with("crates/bench/"))
            && !crate::rules::in_test_tree(rel_path)
    }

    fn check(&self, ctx: &RuleCtx<'_>) -> Vec<Finding> {
        let mut findings = Vec::new();
        let toks = ctx.tokens;
        for &(start, end) in &flowtask_impl_bodies(toks) {
            for fir in ctx.ir {
                if fir.body.is_none() || fir.start < start || fir.end > end + 1 {
                    continue;
                }
                for i in fir.start + 1..fir.end.min(toks.len()) {
                    if ctx.test_mask.get(i).copied().unwrap_or(false) {
                        continue;
                    }
                    let t = &toks[i];
                    let is_call = BLOCKING.contains(&t.text.as_str())
                        && toks.get(i + 1).is_some_and(|n| n.is("("))
                        && !(i > 0 && toks[i - 1].is("fn"));
                    if is_call {
                        findings.push(Finding {
                            line: t.line,
                            message: format!(
                                "host-blocking call `{}()` on the reactor dispatch path \
(`{}` is reachable from FlowTask polling); park in virtual time with \
TaskPoll::Pending(Wake::Timer(..)) instead of stalling every lane on this worker",
                                t.text, fir.name
                            ),
                            subject: Some(fir.name.clone()),
                        });
                    }
                }
            }
        }
        findings
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::run_rule;

    fn run(src: &str) -> Vec<Finding> {
        run_rule(&ReactorBlocking, "crates/core/src/deploy/pool.rs", src)
    }

    #[test]
    fn thread_sleep_inside_poll_is_flagged() {
        let src = "impl FlowTask<SimSubstrate> for T { \
fn poll(&mut self, s: &mut Session) -> TaskPoll<u64> { \
std::thread::sleep(Duration::from_millis(5)); TaskPoll::Done(0) } }";
        let findings = run(src);
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert!(findings[0].message.contains("sleep"));
        assert!(findings[0].message.contains("Wake::Timer"));
    }

    #[test]
    fn timer_yield_instead_of_sleep_passes() {
        let src = "impl FlowTask<SimSubstrate> for T { \
fn poll(&mut self, s: &mut Session) -> TaskPoll<u64> { \
TaskPoll::Pending(Wake::Timer(Duration::from_millis(5))) } }";
        assert!(run(src).is_empty());
    }

    #[test]
    fn condvar_wait_in_task_helper_is_flagged() {
        let src = "impl FlowTask<SimSubstrate> for T { \
fn poll(&mut self, s: &mut Session) -> TaskPoll<u64> { self.sync() } \
fn sync(&self) -> TaskPoll<u64> { \
let g = self.cv.wait(self.state.lock()); TaskPoll::Done(g.id) } }";
        let findings = run(src);
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert!(findings[0].message.contains("wait"));
    }

    #[test]
    fn channel_recv_in_scheduler_generic_over_flowtask_is_flagged() {
        let src = "impl<S: Substrate, T: FlowTask<S>> Reactor<S, T> { \
fn drain(&mut self) { let msg = self.rx.recv(); } }";
        let findings = run(src);
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert!(findings[0].message.contains("recv"));
    }

    #[test]
    fn sleep_outside_any_flowtask_impl_is_ignored() {
        let src = "impl Harness { fn settle(&self) { \
std::thread::sleep(Duration::from_millis(5)); } }";
        assert!(run(src).is_empty());
    }

    #[test]
    fn blocking_names_as_fn_definitions_pass() {
        let src = "impl FlowTask<SimSubstrate> for T { \
fn poll(&mut self, s: &mut Session) -> TaskPoll<u64> { TaskPoll::Done(0) } \
fn recv(&self) -> u64 { 7 } }";
        assert!(run(src).is_empty());
    }

    #[test]
    fn lock_inside_poll_is_not_this_rules_business() {
        let src = "impl FlowTask<SimSubstrate> for T { \
fn poll(&mut self, s: &mut Session) -> TaskPoll<u64> { \
let n = self.shared.lock().len(); TaskPoll::Done(n as u64) } }";
        assert!(run(src).is_empty());
    }

    #[test]
    fn test_masked_sleep_is_skipped() {
        let src = "impl FlowTask<SimSubstrate> for T { \
fn poll(&mut self, s: &mut Session) -> TaskPoll<u64> { TaskPoll::Done(0) } } \
#[cfg(test)] mod t { fn f() { std::thread::sleep(d); } }";
        assert!(run(src).is_empty());
    }
}
