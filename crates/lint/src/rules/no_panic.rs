//! no-panic: library code in `crates/core` and `crates/packet` reports
//! failures through `LiberateError`, never by unwinding.
//!
//! The evasion proxy sits inline on live flows (§6: browser → liberate
//! proxy → network). A panic while crafting or mutating packets doesn't
//! just fail one experiment — it drops the user's connection mid-flow.
//! Recoverable conditions (malformed trace, missing handshake, truncated
//! packet) must surface as `Result`/`Option` so callers degrade to the
//! untransformed schedule instead of aborting.

use crate::rules::{in_test_tree, Finding, Rule, RuleCtx};

pub struct NoPanic;

/// Macros that unwind. `panic!`-family only: `assert!` in library code is
/// a deliberate invariant check and stays legal.
const PANIC_MACROS: &[&str] = &["panic", "unreachable", "todo", "unimplemented"];

/// Methods that unwind on the error/none path.
const PANIC_METHODS: &[&str] = &["unwrap", "expect"];

impl Rule for NoPanic {
    fn name(&self) -> &'static str {
        "no-panic"
    }

    fn code(&self) -> &'static str {
        "LIB004"
    }

    fn explain(&self) -> &'static str {
        "Non-test code in crates/core and crates/packet must not call .unwrap() or \
.expect(), or invoke panic!/unreachable!/todo!/unimplemented!. The evasion \
proxy runs inline on live connections (paper S6); unwinding there tears down \
the user's flow instead of degrading to the untransformed schedule. Route \
failures through LiberateError (or return Option) so callers choose. \
#[cfg(test)] code is exempt. For a genuinely unreachable arm whose invariant \
the caller guarantees, write `// lint: allow(no-panic) <why>` directly above \
the call."
    }

    fn applies(&self, rel_path: &str) -> bool {
        (rel_path.starts_with("crates/core/") || rel_path.starts_with("crates/packet/"))
            && !in_test_tree(rel_path)
    }

    fn check(&self, ctx: &RuleCtx<'_>) -> Vec<Finding> {
        let mut findings = Vec::new();
        let toks = ctx.tokens;
        for (i, t) in toks.iter().enumerate() {
            if ctx.test_mask.get(i).copied().unwrap_or(false) {
                continue;
            }
            // `.unwrap(` / `.expect(` — the leading dot keeps fn
            // definitions named `unwrap` (none exist, but cheap) legal.
            if PANIC_METHODS.contains(&t.text.as_str())
                && i > 0
                && toks[i - 1].is(".")
                && toks.get(i + 1).is_some_and(|t| t.is("("))
            {
                findings.push(Finding {
                    line: t.line,
                    message: format!(
                        "`.{}()` outside test code; route the failure through \
                         LiberateError or return Option",
                        t.text
                    ),
                    subject: None,
                });
            }
            if PANIC_MACROS.contains(&t.text.as_str()) && toks.get(i + 1).is_some_and(|t| t.is("!"))
            {
                findings.push(Finding {
                    line: t.line,
                    message: format!(
                        "`{}!` outside test code; library code must not unwind",
                        t.text
                    ),
                    subject: None,
                });
            }
        }
        findings
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::run_rule;

    fn run(src: &str) -> Vec<Finding> {
        run_rule(&NoPanic, "crates/core/src/deploy.rs", src)
    }

    #[test]
    fn unwrap_and_expect_calls_are_flagged() {
        let findings = run("fn f(x: Option<u8>) -> u8 { x.unwrap() + x.expect(\"y\") }");
        assert_eq!(findings.len(), 2);
        assert!(findings[0].message.contains(".unwrap()"));
        assert!(findings[1].message.contains(".expect()"));
    }

    #[test]
    fn panic_family_macros_are_flagged() {
        let findings = run(
            "fn f(n: u8) { match n { 0 => panic!(\"no\"), 1 => todo!(), _ => unreachable!() } }",
        );
        assert_eq!(findings.len(), 3);
    }

    #[test]
    fn unwrap_or_and_friends_pass() {
        let findings =
            run("fn f(x: Option<u8>) -> u8 { x.unwrap_or(0).max(x.unwrap_or_default()) }");
        assert!(findings.is_empty());
    }

    #[test]
    fn cfg_test_code_is_exempt() {
        let findings = run("fn lib() -> u8 { 0 }\n\
             #[cfg(test)]\nmod tests {\n  #[test]\n  fn t() { Some(1).unwrap(); panic!(); }\n}");
        assert!(findings.is_empty());
    }

    #[test]
    fn assert_macros_pass() {
        assert!(run("fn f(n: usize) { assert!(n > 0); debug_assert_eq!(n, n); }").is_empty());
    }

    #[test]
    fn out_of_scope_paths_do_not_apply() {
        assert!(!NoPanic.applies("crates/netsim/src/link.rs"));
        assert!(!NoPanic.applies("crates/core/tests/integration.rs"));
        assert!(NoPanic.applies("crates/packet/src/mutate.rs"));
    }
}
