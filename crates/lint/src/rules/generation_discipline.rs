//! generation-discipline: `PublishedState` generation stamps are written
//! in exactly one place and compared only monotonically.
//!
//! The deployment pool's lock-step contract rests on the generation
//! counter: `publish()` bumps it under the state lock, flows snapshot it
//! at start, and the driver compares report stamps against the current
//! generation to bill exactly one re-characterization per change. That
//! argument breaks if any other code pokes the field, or if staleness is
//! tested with `==`/`!=` — a generation that advanced *twice* between a
//! flow's snapshot and the driver's check makes an equality test silently
//! drop the change signal. Writes outside `publish` and equality
//! comparisons on generation values are flagged; monotonic `>=`/`>`
//! (and their flipped forms) pass.

use crate::rules::{Finding, Rule, RuleCtx};

pub struct GenerationDiscipline;

/// Is the token at `i` an identifier character-wise?
fn is_ident(text: &str) -> bool {
    !text.is_empty()
        && text.chars().all(|c| c.is_ascii_alphanumeric() || c == '_')
        && !text.chars().next().is_some_and(|c| c.is_ascii_digit())
}

impl Rule for GenerationDiscipline {
    fn name(&self) -> &'static str {
        "generation-discipline"
    }

    fn code(&self) -> &'static str {
        "LIB010"
    }

    fn explain(&self) -> &'static str {
        "PublishedState's generation stamp may only be written by \
PublishedState::publish (under the state lock) and may only be read via a \
snapshot; staleness checks must use monotonic comparisons (>=, >, or their \
flipped forms), never == or !=. The pool's exactly-one-re-characterization \
billing argument assumes generations advance monotonically and that a \
report stamped with ANY older generation is treated as already paid for — \
an equality test drops the change signal whenever the counter advanced \
more than once between snapshot and check, and a stray field write forges \
a stamp that was never published. Suppress the single sanctioned writer \
with `// lint: allow(generation-discipline: <fn>)`."
    }

    fn applies(&self, rel_path: &str) -> bool {
        rel_path.starts_with("crates/core/src/deploy/") && !crate::rules::in_test_tree(rel_path)
    }

    fn check(&self, ctx: &RuleCtx<'_>) -> Vec<Finding> {
        let mut findings = Vec::new();
        let toks = ctx.tokens;
        for (i, t) in toks.iter().enumerate() {
            if !t.is("generation") || ctx.test_mask.get(i).copied().unwrap_or(false) {
                continue;
            }
            let next = toks.get(i + 1).map(|n| n.text.as_str());
            let next2 = toks.get(i + 2).map(|n| n.text.as_str());
            // Declarations (`generation: u64`), struct-literal fields
            // (`generation: value,`), shorthand init (`generation,`),
            // and method calls (`generation()`) are not reads or writes
            // of the field.
            let prev_is_dot = i > 0 && toks[i - 1].is(".");
            if next == Some("(") {
                continue;
            }
            let fn_name = enclosing_fn(ctx, i);
            let subject = fn_name.clone();
            // Field writes: `.generation = v`, `.generation += v`.
            if prev_is_dot {
                let plain_write = next == Some("=") && next2 != Some("=");
                let compound_write = matches!(next, Some("+") | Some("-")) && next2 == Some("=");
                if plain_write || compound_write {
                    findings.push(Finding {
                        line: t.line,
                        message: format!(
                            "generation field written directly{}; only \
PublishedState::publish may advance the stamp",
                            fn_name
                                .as_deref()
                                .map(|f| format!(" in `{f}`"))
                                .unwrap_or_default()
                        ),
                        subject,
                    });
                    continue;
                }
            }
            // Equality comparisons, operand on the left:
            // `r.generation == current`, `gen != current`.
            let eq_right = (next == Some("=") && next2 == Some("="))
                || (next == Some("!") && next2 == Some("="));
            // Operand on the right: `current == r.generation`. Walk back
            // over the field chain (`r.generation`, `snapshot.inner.generation`)
            // to the operand start, then look at the two tokens before it.
            let eq_left = {
                let mut j = i;
                while j >= 2 && toks[j - 1].is(".") && is_ident(&toks[j - 2].text) {
                    j -= 2;
                }
                // A plain assignment (`let x = r.generation`) has a single
                // `=` before the operand; `==`/`!=` leave an operator pair.
                j >= 2 && toks[j - 1].is("=") && (toks[j - 2].is("=") || toks[j - 2].is("!"))
            };
            if eq_right || eq_left {
                findings.push(Finding {
                    line: t.line,
                    message: format!(
                        "generation compared with ==/!={}; staleness checks must be \
monotonic (>= / >) so multi-step advances are not missed",
                        fn_name
                            .as_deref()
                            .map(|f| format!(" in `{f}`"))
                            .unwrap_or_default()
                    ),
                    subject,
                });
            }
        }
        findings
    }
}

/// The innermost fn whose span contains token `i`.
fn enclosing_fn(ctx: &RuleCtx<'_>, i: usize) -> Option<String> {
    ctx.ir
        .iter()
        .filter(|f| f.contains(i))
        .max_by_key(|f| f.start)
        .map(|f| f.name.clone())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::run_rule;

    fn run(src: &str) -> Vec<Finding> {
        run_rule(&GenerationDiscipline, "crates/core/src/deploy/pool.rs", src)
    }

    #[test]
    fn equality_comparison_is_flagged() {
        let src = "fn f() { let stale = r.generation == current; }";
        let findings = run(src);
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert!(findings[0].message.contains("monotonic"));
        assert_eq!(findings[0].subject.as_deref(), Some("f"));
    }

    #[test]
    fn inequality_comparison_is_flagged() {
        let src = "fn f() { if r.generation != current { bail(); } }";
        assert_eq!(run(src).len(), 1);
    }

    #[test]
    fn flipped_equality_is_flagged() {
        let src = "fn f() { let stale = current == r.generation; }";
        assert_eq!(run(src).len(), 1, "{:?}", run(src));
    }

    #[test]
    fn monotonic_comparisons_pass() {
        let src = "fn f() { let acked = r.generation >= current; \
let newer = r.generation > old; let older = current >= r.generation; }";
        assert!(run(src).is_empty(), "{:?}", run(src));
    }

    #[test]
    fn field_write_is_flagged() {
        let src = "fn sneak(&mut self) { self.state.generation = forged; }";
        let findings = run(src);
        assert_eq!(findings.len(), 1);
        assert!(findings[0].message.contains("publish"));
    }

    #[test]
    fn compound_write_is_flagged() {
        let src = "fn publish(&self) { state.generation += 1; }";
        assert_eq!(run(src).len(), 1);
    }

    #[test]
    fn declarations_and_struct_literals_pass() {
        let src = "struct S { pub generation: u64 } \
fn f() -> S { S { generation: snapshot.generation, } }";
        assert!(run(src).is_empty(), "{:?}", run(src));
    }

    #[test]
    fn snapshot_reads_and_method_calls_pass() {
        let src = "fn f(&self) -> u64 { let g = self.published.generation(); \
let h = snapshot.generation; g + h }";
        assert!(run(src).is_empty(), "{:?}", run(src));
    }

    #[test]
    fn plain_let_binding_named_generation_passes() {
        let src = "fn f(&self) { let generation = self.published.generation(); \
use_it(generation); }";
        assert!(run(src).is_empty(), "{:?}", run(src));
    }

    #[test]
    fn out_of_scope_files_are_skipped() {
        assert!(!GenerationDiscipline.applies("crates/core/src/engine.rs"));
        assert!(!GenerationDiscipline.applies("crates/core/src/deploy/tests/x.rs"));
        assert!(GenerationDiscipline.applies("crates/core/src/deploy/pool.rs"));
    }

    #[test]
    fn test_masked_comparisons_are_skipped() {
        let src = "#[cfg(test)] mod t { fn f() { assert!(r.generation == 2); } }";
        assert!(run(src).is_empty());
    }
}
