//! pcap-byte-order: multi-byte header fields must be serialized through
//! `to_be_bytes` / `to_le_bytes`, never hand-assembled with shifts.
//!
//! The packet crate emits on-the-wire IP/TCP/UDP headers (big-endian) and
//! pcap file headers (little-endian). A hand-written `(v >> 8) as u8` /
//! `v as u8` pair silently encodes whichever order the author happened to
//! type, and a single swapped field corrupts every capture or checksum
//! downstream — the classic pcap bug that parses fine on one tool and
//! garbage on another. `to_be_bytes`/`to_le_bytes` name the byte order at
//! the write site and make it reviewable.

use crate::items::fn_spans;
use crate::rules::{in_test_tree, Finding, Rule, RuleCtx};

pub struct PcapByteOrder;

/// Is this numeric literal a byte-lane shift distance (8/16/24, with or
/// without a type suffix like `16u32`)?
fn is_byte_shift_amount(text: &str) -> bool {
    let digits: String = text.chars().take_while(|c| c.is_ascii_digit()).collect();
    let suffix = &text[digits.len()..];
    matches!(digits.as_str(), "8" | "16" | "24")
        && (suffix.is_empty() || suffix.starts_with('u') || suffix.starts_with('i'))
}

impl Rule for PcapByteOrder {
    fn name(&self) -> &'static str {
        "pcap-byte-order"
    }

    fn code(&self) -> &'static str {
        "LIB005"
    }

    fn explain(&self) -> &'static str {
        "crates/packet serializes wire headers (big-endian) and pcap file \
records (little-endian). Assembling a multi-byte field by hand — \
`(v >> 8) as u8` followed by `v as u8` — hides the byte order in \
arithmetic, and one swapped lane yields captures that one tool reads and \
another rejects. Write the whole field with `to_be_bytes()` or \
`to_le_bytes()` so the endianness is named at the write site. Suppress a \
deliberate lane extraction with `// lint: allow(pcap-byte-order)` directly \
above it."
    }

    fn applies(&self, rel_path: &str) -> bool {
        rel_path.starts_with("crates/packet/") && !in_test_tree(rel_path)
    }

    fn check(&self, ctx: &RuleCtx<'_>) -> Vec<Finding> {
        let mut findings = Vec::new();
        let toks = ctx.tokens;
        let spans = fn_spans(toks);
        for i in 0..toks.len() {
            if ctx.test_mask.get(i).copied().unwrap_or(false) {
                continue;
            }
            // `>> 8` (or 16/24) as a token sequence...
            if !(toks[i].is(">")
                && toks.get(i + 1).is_some_and(|t| t.is(">"))
                && toks
                    .get(i + 2)
                    .is_some_and(|t| is_byte_shift_amount(&t.text)))
            {
                continue;
            }
            // ...truncated to a byte within the next few tokens (allows a
            // closing paren or two before the cast).
            let cast = (i + 3..toks.len().min(i + 6))
                .any(|j| toks[j].is("as") && toks.get(j + 1).is_some_and(|t| t.is("u8")));
            if !cast {
                continue;
            }
            let line = toks[i].line;
            let subject = spans
                .iter()
                .find(|s| s.start <= i && i < s.end)
                .map(|s| s.name.clone());
            let in_fn = subject
                .as_deref()
                .map(|n| format!(" in `{n}`"))
                .unwrap_or_default();
            findings.push(Finding {
                line,
                message: format!(
                    "hand-written byte-order shift{in_fn}: write the whole field \
                     with to_be_bytes()/to_le_bytes() instead of `>> {}` + `as u8`",
                    toks[i + 2].text
                ),
                subject,
            });
        }
        findings
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::run_rule;

    fn run(src: &str) -> Vec<Finding> {
        run_rule(&PcapByteOrder, "crates/packet/src/pcap.rs", src)
    }

    #[test]
    fn manual_shift_truncate_is_flagged() {
        let findings = run("fn write_len(out: &mut Vec<u8>, v: u16) {\n\
             out.push((v >> 8) as u8);\n\
             out.push(v as u8);\n\
             }");
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert_eq!(findings[0].line, 2);
        assert!(findings[0].message.contains("to_be_bytes"));
        assert_eq!(findings[0].subject.as_deref(), Some("write_len"));
    }

    #[test]
    fn all_three_byte_lanes_are_flagged() {
        let findings = run("fn f(v: u32, o: &mut [u8]) {\n\
             o[0] = (v >> 24) as u8; o[1] = (v >> 16) as u8; o[2] = (v >> 8) as u8;\n\
             }");
        assert_eq!(findings.len(), 3);
    }

    #[test]
    fn to_be_bytes_and_checksum_folding_pass() {
        let findings = run("fn g(v: u16, out: &mut Vec<u8>, mut acc: u32) -> u32 {\n\
             out.extend_from_slice(&v.to_be_bytes());\n\
             acc = (acc & 0xffff) + (acc >> 16);\n\
             acc\n\
             }");
        assert!(findings.is_empty(), "{findings:?}");
    }

    #[test]
    fn test_code_is_exempt() {
        let findings = run("#[cfg(test)] mod t {\n\
             fn fixture(v: u16) -> u8 { (v >> 8) as u8 }\n\
             }");
        assert!(findings.is_empty(), "{findings:?}");
    }

    #[test]
    fn scope_is_the_packet_crate_excluding_test_trees() {
        assert!(PcapByteOrder.applies("crates/packet/src/pcap.rs"));
        assert!(PcapByteOrder.applies("crates/packet/src/tcp.rs"));
        assert!(!PcapByteOrder.applies("crates/packet/tests/roundtrip.rs"));
        assert!(!PcapByteOrder.applies("crates/netsim/src/capture.rs"));
    }
}
