//! taxonomy-exhaustiveness: the `Technique` enum is the code's image of
//! the paper's Table 3, and every query over it must stay total.
//!
//! The taxonomy functions (`table3_rows`, `description`, `category`,
//! `applicable`, `overhead`) each encode one Table 3 column. A `_ =>`
//! wildcard arm lets a newly added technique silently inherit a neighbor's
//! category or overhead, so wildcards are banned in those functions and
//! every variant must be named in each of them. The one sanctioned gap —
//! `DummyPrefixData` is a beyond-Table-3 extension, not a row — carries a
//! detail allow.

use crate::items::{enum_variants, fn_spans};
use crate::rules::{Finding, Rule, RuleCtx};

pub struct TaxonomyExhaustiveness;

/// The Table 3 query surface: one fn per column of the taxonomy.
const TAXONOMY_FNS: &[&str] = &[
    "table3_rows",
    "description",
    "category",
    "applicable",
    "overhead",
];

impl Rule for TaxonomyExhaustiveness {
    fn name(&self) -> &'static str {
        "taxonomy-exhaustiveness"
    }

    fn code(&self) -> &'static str {
        "LIB002"
    }

    fn explain(&self) -> &'static str {
        "Every `Technique` variant must be named in each taxonomy query \
(table3_rows, description, category, applicable, overhead), and those \
functions must not contain `_ =>` wildcard arms. The enum mirrors the paper's \
Table 3; a wildcard lets a newly added evasion technique silently inherit \
another row's category, applicability, or overhead instead of forcing the \
author to fill in its column. Suppress a deliberate gap file-wide with \
`// lint: allow(taxonomy-exhaustiveness: <VariantName>)`."
    }

    fn applies(&self, rel_path: &str) -> bool {
        rel_path == "crates/core/src/evasion/mod.rs"
    }

    fn check(&self, ctx: &RuleCtx<'_>) -> Vec<Finding> {
        let variants = enum_variants(ctx.tokens, "Technique");
        if variants.is_empty() {
            return vec![Finding {
                line: 1,
                message: "enum Technique not found; taxonomy cannot be checked".into(),
                subject: None,
            }];
        }
        let spans = fn_spans(ctx.tokens);
        let mut findings = Vec::new();
        for &fn_name in TAXONOMY_FNS {
            let Some(span) = spans.iter().find(|s| {
                s.name == fn_name && !ctx.test_mask.get(s.start).copied().unwrap_or(false)
            }) else {
                findings.push(Finding {
                    line: 1,
                    message: format!("taxonomy fn `{fn_name}` is missing"),
                    subject: Some(fn_name.to_string()),
                });
                continue;
            };
            let body = &ctx.tokens[span.start..span.end];
            for (variant, _) in &variants {
                if !body.iter().any(|t| t.is(variant)) {
                    findings.push(Finding {
                        line: span.line,
                        message: format!("Technique::{variant} is not handled in `{fn_name}`"),
                        subject: Some(variant.clone()),
                    });
                }
            }
            // Wildcard arms defeat the exhaustiveness the rule exists for.
            for w in body.windows(3) {
                if w[0].is("_") && w[1].is("=") && w[2].is(">") {
                    findings.push(Finding {
                        line: w[0].line,
                        message: format!("wildcard `_ =>` arm in taxonomy fn `{fn_name}`"),
                        subject: Some(fn_name.to_string()),
                    });
                }
            }
        }
        findings
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::run_rule;

    fn run(src: &str) -> Vec<Finding> {
        run_rule(
            &TaxonomyExhaustiveness,
            "crates/core/src/evasion/mod.rs",
            src,
        )
    }

    const COMPLETE: &str = r#"
pub enum Technique { A, B(u8) }
impl Technique {
    pub fn table3_rows() -> Vec<Technique> { vec![Technique::A, Technique::B(0)] }
    pub fn description(&self) -> &str { match self { Technique::A => "a", Technique::B(_) => "b" } }
    pub fn category(&self) -> u8 { match self { Technique::A => 0, Technique::B(_) => 1 } }
    pub fn applicable(&self) -> bool { match self { Technique::A | Technique::B(_) => true } }
    pub fn overhead(&self) -> u8 { match self { Technique::A => 0, Technique::B(_) => 2 } }
}
"#;

    #[test]
    fn complete_taxonomy_passes() {
        assert!(run(COMPLETE).is_empty());
    }

    #[test]
    fn missing_variant_is_flagged_per_fn() {
        let src = COMPLETE.replace("Technique::B(_) => \"b\"", "_ => \"b\"");
        let findings = run(&src);
        // `description` now misses B and contains a wildcard.
        assert_eq!(findings.len(), 2);
        assert!(findings.iter().any(|f| f
            .message
            .contains("Technique::B is not handled in `description`")));
        assert!(findings.iter().any(|f| f
            .message
            .contains("wildcard `_ =>` arm in taxonomy fn `description`")));
    }

    #[test]
    fn missing_fn_is_flagged() {
        let src = COMPLETE.replace("pub fn overhead", "pub fn overhead_off");
        let findings = run(&src);
        assert!(findings
            .iter()
            .any(|f| f.message.contains("taxonomy fn `overhead` is missing")));
    }

    #[test]
    fn missing_enum_is_one_finding() {
        let findings = run("pub struct NotAnEnum;");
        assert_eq!(findings.len(), 1);
        assert!(findings[0].message.contains("enum Technique not found"));
    }

    #[test]
    fn fat_arrow_on_real_pattern_is_fine() {
        // `Technique::A => 0` must not be mistaken for a wildcard.
        assert!(run(COMPLETE)
            .iter()
            .all(|f| !f.message.contains("wildcard")));
    }
}
