//! overhead-consistency: `Technique::overhead()` must bill what
//! `transform::apply()` actually emits.
//!
//! Table 2's per-flow overhead classes are the basis on which deployment
//! picks the cheapest working technique (§4.4), so a variant billed under
//! the wrong class — or billed a constant while the transform emits a
//! parameterized schedule — silently skews every `cheapest()` decision
//! and the deployment pool's fallback-ladder economics. Two token-level
//! cross-checks keep the model honest:
//!
//! 1. In `fn overhead` (crates/core/src/evasion/mod.rs), each match arm's
//!    `Overhead::` family must agree with the variant-name family:
//!    `Inert*`/`TtlRst*` → `InertPackets` (and exactly `InertPackets(1)`
//!    for unit variants — the transform inserts exactly one inert packet
//!    per flow), `Pause*` → `PauseSeconds`, `DummyPrefixData` →
//!    `PrefixBytes`, `*Split*`/`*Reorder*` → `ExtraHeaders`. A variant
//!    outside every family, or a wildcard arm, is flagged: a 27th
//!    technique must pick its overhead class explicitly.
//! 2. In both `fn overhead` and `fn apply`
//!    (crates/core/src/evasion/transform.rs), every binder a pattern
//!    captures (`segments`, `pieces`, `bytes`, `d`) must appear in the
//!    arm's body. An `apply` arm that ignores `bytes` emits a schedule
//!    whose size `overhead()` no longer predicts; an `overhead` arm that
//!    ignores its binder bills a constant for a parameterized emission.

use crate::items::fn_spans;
use crate::rules::{in_test_tree, Finding, Rule, RuleCtx};

pub struct OverheadConsistency;

/// One parsed `pattern => body` arm of a match.
struct Arm {
    line: u32,
    /// Uppercase-initial path segments in the pattern (variant names).
    variants: Vec<String>,
    /// Lowercase identifiers bound by the pattern.
    binders: Vec<String>,
    /// Body tokens, as text.
    body: Vec<String>,
}

/// Expected `Overhead` constructor for a Technique variant name, by the
/// naming families Table 2 groups them into.
fn expected_family(variant: &str) -> Option<&'static str> {
    if variant == "DummyPrefixData" {
        Some("PrefixBytes")
    } else if variant.starts_with("Inert") || variant.starts_with("TtlRst") {
        Some("InertPackets")
    } else if variant.starts_with("Pause") {
        Some("PauseSeconds")
    } else if variant.contains("Split") || variant.contains("Reorder") {
        Some("ExtraHeaders")
    } else {
        None
    }
}

fn is_upper_ident(text: &str) -> bool {
    text.starts_with(|c: char| c.is_ascii_uppercase())
        && text.chars().all(|c| c.is_ascii_alphanumeric() || c == '_')
}

fn is_lower_ident(text: &str) -> bool {
    text.starts_with(|c: char| c.is_ascii_lowercase() || c == '_')
        && text != "_"
        && text.chars().all(|c| c.is_ascii_alphanumeric() || c == '_')
}

/// Parse the arms of the first `match` block inside `[start, end)`.
/// Returns `None` when the span holds no match expression.
fn match_arms(toks: &[crate::lexer::Token], start: usize, end: usize) -> Option<Vec<Arm>> {
    let mut i = start;
    while i < end && !toks[i].is("match") {
        i += 1;
    }
    if i >= end {
        return None;
    }
    // Skip the scrutinee up to the match block's `{`.
    while i < end && !toks[i].is("{") {
        i += 1;
    }
    let mut arms = Vec::new();
    let mut depth = 1i32; // inside the match block
    let mut in_body = false;
    let mut arm = Arm {
        line: 0,
        variants: Vec::new(),
        binders: Vec::new(),
        body: Vec::new(),
    };
    let mut j = i + 1;
    while j < end && depth > 0 {
        let t = &toks[j];
        if t.is("(") || t.is("[") || t.is("{") {
            depth += 1;
        } else if t.is(")") || t.is("]") || t.is("}") {
            depth -= 1;
            if depth == 0 {
                break;
            }
        }
        if depth == 1 && t.is("=") && toks.get(j + 1).is_some_and(|n| n.is(">")) {
            in_body = true;
            j += 2;
            // A block body (`=> { ... }`) ends at its matching brace, with
            // no comma required: consume it balanced and close the arm.
            if toks.get(j).is_some_and(|n| n.is("{")) {
                let mut body_depth = 1i32;
                j += 1;
                while j < end && body_depth > 0 {
                    let b = &toks[j];
                    if b.is("(") || b.is("[") || b.is("{") {
                        body_depth += 1;
                    } else if b.is(")") || b.is("]") || b.is("}") {
                        body_depth -= 1;
                    }
                    if body_depth > 0 {
                        arm.body.push(b.text.clone());
                    }
                    j += 1;
                }
                if toks.get(j).is_some_and(|n| n.is(",")) {
                    j += 1;
                }
                arms.push(arm);
                arm = Arm {
                    line: 0,
                    variants: Vec::new(),
                    binders: Vec::new(),
                    body: Vec::new(),
                };
                in_body = false;
            }
            continue;
        }
        if depth == 1 && t.is(",") && in_body {
            arms.push(arm);
            arm = Arm {
                line: 0,
                variants: Vec::new(),
                binders: Vec::new(),
                body: Vec::new(),
            };
            in_body = false;
            j += 1;
            continue;
        }
        if in_body {
            arm.body.push(t.text.clone());
        } else if is_upper_ident(&t.text) {
            if arm.variants.is_empty() {
                arm.line = t.line;
            }
            arm.variants.push(t.text.clone());
        } else if is_lower_ident(&t.text) {
            arm.binders.push(t.text.clone());
        } else if t.is("_") {
            arm.variants.push("_".to_string());
            if arm.line == 0 {
                arm.line = t.line;
            }
        }
        j += 1;
    }
    if in_body && (!arm.body.is_empty() || !arm.variants.is_empty()) {
        arms.push(arm);
    }
    Some(arms)
}

/// Flag pattern binders the arm's body never reads.
fn unused_binder_findings(fn_name: &str, arms: &[Arm], findings: &mut Vec<Finding>) {
    for arm in arms {
        for binder in &arm.binders {
            if !arm.body.iter().any(|t| t == binder) {
                findings.push(Finding {
                    line: arm.line,
                    message: format!(
                        "`fn {fn_name}` arm for {} binds `{binder}` but never uses it: \
the billed overhead and the emitted schedule can silently diverge for \
parameterized techniques",
                        arm.variants.join(" | "),
                    ),
                    subject: arm.variants.first().cloned(),
                });
            }
        }
    }
}

impl Rule for OverheadConsistency {
    fn name(&self) -> &'static str {
        "overhead-consistency"
    }

    fn code(&self) -> &'static str {
        "LIB008"
    }

    fn explain(&self) -> &'static str {
        "Technique::overhead() (Table 2) is what deployment ranks candidate \
techniques by, so it must agree with what transform::apply() emits. Each \
`fn overhead` arm must bill the family its variant name belongs to \
(Inert*/TtlRst* -> InertPackets(1): the transform inserts exactly one \
inert packet; Pause* -> PauseSeconds; DummyPrefixData -> PrefixBytes; \
*Split*/*Reorder* -> ExtraHeaders), wildcard arms are banned (a new \
technique must pick a class), and every pattern binder in `fn overhead` \
and transform.rs's `fn apply` must flow into the arm body — an ignored \
`bytes` or `segments` means the bill no longer tracks the emission. \
Suppress a proven-safe site with `// lint: allow(overhead-consistency)`."
    }

    fn applies(&self, rel_path: &str) -> bool {
        rel_path.starts_with("crates/core/src/evasion/") && !in_test_tree(rel_path)
    }

    fn check(&self, ctx: &RuleCtx<'_>) -> Vec<Finding> {
        let mut findings = Vec::new();
        let spans = fn_spans(ctx.tokens);

        for span in &spans {
            if ctx.test_mask.get(span.start).copied().unwrap_or(false) {
                continue;
            }
            match span.name.as_str() {
                "overhead" => {
                    let Some(arms) = match_arms(ctx.tokens, span.start, span.end) else {
                        continue;
                    };
                    for arm in &arms {
                        // The billed family: the segment following `Overhead` in
                        // the body (`Overhead :: Family ( ... )`).
                        let billed = arm
                            .body
                            .iter()
                            .position(|t| t == "Overhead")
                            .and_then(|p| arm.body.get(p + 3))
                            .cloned();
                        for variant in &arm.variants {
                            if variant == "_" {
                                findings.push(Finding {
                                    line: arm.line,
                                    message: "wildcard arm in `fn overhead`: every \
technique must pick its Table 2 overhead class explicitly, or a new \
variant silently inherits another family's bill"
                                        .to_string(),
                                    subject: None,
                                });
                                continue;
                            }
                            let Some(expected) = expected_family(variant) else {
                                findings.push(Finding {
                                    line: arm.line,
                                    message: format!(
                                        "`{variant}` fits no known overhead family \
(Inert*/TtlRst*, Pause*, DummyPrefixData, *Split*/*Reorder*): extend the \
overhead-consistency families alongside the new technique"
                                    ),
                                    subject: Some(variant.clone()),
                                });
                                continue;
                            };
                            match billed.as_deref() {
                                Some(actual) if actual == expected => {}
                                Some(actual) => findings.push(Finding {
                                    line: arm.line,
                                    message: format!(
                                        "`{variant}` billed as Overhead::{actual}, \
but its family emits Overhead::{expected} (Table 2)"
                                    ),
                                    subject: Some(variant.clone()),
                                }),
                                None => findings.push(Finding {
                                    line: arm.line,
                                    message: format!(
                                        "`{variant}` arm in `fn overhead` never \
constructs an Overhead value — the bill for this technique is opaque"
                                    ),
                                    subject: Some(variant.clone()),
                                }),
                            }
                            // Unit inert variants: the transform inserts exactly
                            // ONE inert packet, so the bill must be the literal 1.
                            if expected == "InertPackets"
                                && arm.binders.is_empty()
                                && billed.as_deref() == Some("InertPackets")
                            {
                                let literal_one = arm
                                    .body
                                    .iter()
                                    .position(|t| t == "InertPackets")
                                    .and_then(|p| arm.body.get(p + 2))
                                    .is_some_and(|t| t == "1");
                                if !literal_one {
                                    findings.push(Finding {
                                        line: arm.line,
                                        message: format!(
                                            "`{variant}` must bill \
InertPackets(1): the transform emits exactly one inert packet per flow"
                                        ),
                                        subject: Some(variant.clone()),
                                    });
                                }
                            }
                        }
                    }
                    unused_binder_findings("overhead", &arms, &mut findings);
                }
                "apply" => {
                    let Some(arms) = match_arms(ctx.tokens, span.start, span.end) else {
                        continue;
                    };
                    unused_binder_findings("apply", &arms, &mut findings);
                }
                _ => {}
            }
        }
        findings
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::run_rule;

    fn run(src: &str) -> Vec<Finding> {
        run_rule(&OverheadConsistency, "crates/core/src/evasion/mod.rs", src)
    }

    #[test]
    fn consistent_overhead_table_passes() {
        let findings = run("pub fn overhead(&self) -> Overhead { match self { \
InertLowTtl | InertTcpWrongSeq => Overhead::InertPackets(1), \
TcpSegmentSplit { segments } => Overhead::ExtraHeaders(segments - 1), \
UdpReorder => Overhead::ExtraHeaders(0), \
PauseAfterMatch(d) | PauseBeforeMatch(d) => Overhead::PauseSeconds(d.as_secs()), \
TtlRstAfterMatch => Overhead::InertPackets(1), \
DummyPrefixData { bytes } => Overhead::PrefixBytes(*bytes), } }");
        assert!(findings.is_empty(), "{findings:?}");
    }

    #[test]
    fn wrong_family_is_flagged() {
        let findings = run("fn overhead(&self) -> Overhead { match self { \
PauseAfterMatch(d) => Overhead::InertPackets(d.as_secs() as usize), } }");
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert!(findings[0].message.contains("PauseSeconds"));
        assert_eq!(findings[0].subject.as_deref(), Some("PauseAfterMatch"));
    }

    #[test]
    fn inert_must_bill_exactly_one_packet() {
        let findings = run("fn overhead(&self) -> Overhead { match self { \
InertLowTtl => Overhead::InertPackets(2), } }");
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert!(findings[0].message.contains("exactly one inert packet"));
    }

    #[test]
    fn wildcard_arm_is_banned() {
        let findings = run("fn overhead(&self) -> Overhead { match self { \
InertLowTtl => Overhead::InertPackets(1), _ => Overhead::InertPackets(1), } }");
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert!(findings[0].message.contains("wildcard"));
    }

    #[test]
    fn unknown_family_forces_a_decision() {
        let findings = run("fn overhead(&self) -> Overhead { match self { \
QuantumTunnel => Overhead::InertPackets(1), } }");
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert!(findings[0].message.contains("no known overhead family"));
    }

    #[test]
    fn ignored_binder_in_overhead_is_flagged() {
        let findings = run("fn overhead(&self) -> Overhead { match self { \
DummyPrefixData { bytes } => Overhead::PrefixBytes(1500), } }");
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert!(findings[0].message.contains("binds `bytes`"));
    }

    #[test]
    fn ignored_binder_in_apply_is_flagged() {
        let findings = run(
            "pub fn apply(t: &Technique, s: &Schedule) -> Option<Schedule> { match t { \
TcpSegmentSplit { segments } => { split(s, 2) } \
DummyPrefixData { bytes } => { prefix(s, *bytes) }, } }",
        );
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert!(findings[0].message.contains("`segments`"));
        assert!(findings[0].message.contains("fn apply"));
    }

    #[test]
    fn binder_passthrough_in_apply_passes() {
        let findings = run(
            "pub fn apply(t: &Technique, s: &Schedule) -> Option<Schedule> { match t { \
TcpSegmentSplit { segments } => { split(s, *segments) } \
PauseAfterMatch(d) => { pause(s, d) }, } }",
        );
        assert!(findings.is_empty(), "{findings:?}");
    }

    #[test]
    fn other_fns_and_test_code_are_ignored() {
        let findings = run(
            "fn category(&self) -> Category { match self { PauseAfterMatch(_) => \
Category::Flushing, } } #[cfg(test)] mod tests { fn overhead() -> Overhead { \
match x { InertLowTtl => Overhead::PrefixBytes(9), } } }",
        );
        assert!(findings.is_empty(), "{findings:?}");
    }

    #[test]
    fn scope_covers_the_evasion_module_only() {
        assert!(OverheadConsistency.applies("crates/core/src/evasion/mod.rs"));
        assert!(OverheadConsistency.applies("crates/core/src/evasion/transform.rs"));
        assert!(!OverheadConsistency.applies("crates/core/src/evaluate.rs"));
        assert!(!OverheadConsistency.applies("crates/core/tests/evasion.rs"));
    }
}
