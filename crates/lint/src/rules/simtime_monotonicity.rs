//! simtime-monotonicity: never feed a subtraction-derived delta into a
//! clock-advancing API, and never grow new `SimTime` subtraction impls.
//!
//! `SimTime - SimTime` deliberately saturates: when the "later" operand
//! is actually earlier, the result is `Duration::ZERO`, not an error
//! (see `crates/netsim/src/time.rs`). That is the right contract for
//! idle-gap measurements, but it makes subtraction a trap inside
//! `Network::advance` / `run_until` style calls: a swapped operand pair
//! compiles, runs, and silently advances the clock by nothing, stalling
//! every timeout the simulation was supposed to fire. This rule flags
//! any `-` inside the argument list of a clock-advancing call, and any
//! `Sub`/`SubAssign` impl for `SimTime` declared outside `time.rs`
//! (where the single saturating impl lives and is documented).

use crate::items::fn_spans;
use crate::rules::{in_test_tree, Finding, Rule, RuleCtx};

pub struct SimtimeMonotonicity;

/// Methods that move a simulation clock forward.
const ADVANCERS: &[&str] = &["advance", "advance_to", "run_until"];

impl Rule for SimtimeMonotonicity {
    fn name(&self) -> &'static str {
        "simtime-monotonicity"
    }

    fn code(&self) -> &'static str {
        "LIB007"
    }

    fn explain(&self) -> &'static str {
        "SimTime subtraction saturates to Duration::ZERO when the operands \
are swapped (crates/netsim/src/time.rs), so a delta computed with `-` and \
fed straight into .advance()/.advance_to()/.run_until() can silently \
advance the clock by nothing and stall every pending timeout. Compute \
gaps with SimTime::since() and bind them to a named local first, or pass \
an absolute target time; and keep the one saturating Sub impl in time.rs \
— new Sub/SubAssign impls for SimTime elsewhere fork the contract. \
Suppress a proven-safe site with `// lint: allow(simtime-monotonicity)`."
    }

    fn applies(&self, rel_path: &str) -> bool {
        (rel_path.starts_with("crates/netsim/")
            || rel_path.starts_with("crates/dpi/")
            || rel_path.starts_with("crates/core/"))
            && rel_path != "crates/netsim/src/time.rs"
            && !in_test_tree(rel_path)
    }

    fn check(&self, ctx: &RuleCtx<'_>) -> Vec<Finding> {
        let mut findings = Vec::new();
        let toks = ctx.tokens;
        let spans = fn_spans(toks);
        let subject_at = |i: usize| {
            spans
                .iter()
                .find(|s| s.start <= i && i < s.end)
                .map(|s| s.name.clone())
        };

        for i in 0..toks.len() {
            if ctx.test_mask.get(i).copied().unwrap_or(false) {
                continue;
            }

            // A new Sub/SubAssign impl for SimTime outside time.rs: scan
            // the impl header (everything before its `{`) for
            // `Sub…for SimTime`.
            if toks[i].is("impl") {
                let mut saw_sub = false;
                let mut j = i + 1;
                while j < toks.len() && !toks[j].is("{") && !toks[j].is(";") {
                    if toks[j].is("Sub") || toks[j].is("SubAssign") {
                        saw_sub = true;
                    }
                    if saw_sub
                        && toks[j].is("for")
                        && toks.get(j + 1).is_some_and(|t| t.is("SimTime"))
                    {
                        findings.push(Finding {
                            line: toks[i].line,
                            message: "subtraction impl for SimTime outside \
crates/netsim/src/time.rs: the saturating Sub contract is defined once \
there — extend it, don't fork it"
                                .to_string(),
                            subject: Some("SimTime".to_string()),
                        });
                        break;
                    }
                    j += 1;
                }
                continue;
            }

            // A clock-advancing call: `.<advancer>(` …
            if !toks[i].is(".") {
                continue;
            }
            let Some(method) = toks.get(i + 1) else {
                continue;
            };
            if !ADVANCERS.contains(&method.text.as_str())
                || !toks.get(i + 2).is_some_and(|t| t.is("("))
            {
                continue;
            }
            // … whose balanced argument list contains a bare `-` (minus
            // that is not half of a `->` arrow, e.g. in a closure's
            // return type).
            let mut depth = 1i32;
            let mut j = i + 3;
            while j < toks.len() && depth > 0 {
                let t = &toks[j];
                if t.is("(") || t.is("[") || t.is("{") {
                    depth += 1;
                } else if t.is(")") || t.is("]") || t.is("}") {
                    depth -= 1;
                } else if t.is("-") && !toks.get(j + 1).is_some_and(|n| n.is(">")) {
                    let subject = subject_at(i);
                    let in_fn = subject
                        .as_deref()
                        .map(|n| format!(" in `{n}`"))
                        .unwrap_or_default();
                    findings.push(Finding {
                        line: t.line,
                        message: format!(
                            "subtraction inside `.{}()`{in_fn}: SimTime \
subtraction saturates to zero when operands swap, silently stalling the \
clock — use SimTime::since() into a named local, or pass an absolute \
target",
                            method.text
                        ),
                        subject,
                    });
                    break;
                }
                j += 1;
            }
        }
        findings
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::run_rule;

    fn run(src: &str) -> Vec<Finding> {
        run_rule(&SimtimeMonotonicity, "crates/netsim/src/network.rs", src)
    }

    #[test]
    fn subtraction_inside_advance_is_flagged() {
        let findings = run("fn f(&mut self) { self.network.advance(now - start); }");
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert!(findings[0].message.contains("saturates"));
        assert_eq!(findings[0].subject.as_deref(), Some("f"));
    }

    #[test]
    fn subtraction_inside_run_until_is_flagged() {
        let findings = run("fn f(&mut self) { net.run_until(deadline - grace); }");
        assert_eq!(findings.len(), 1);
        assert!(findings[0].message.contains("run_until"));
    }

    #[test]
    fn nested_call_arguments_are_scanned() {
        let findings =
            run("fn f(&mut self) { net.advance(Duration::from_micros(a.as_micros() - 1)); }");
        assert_eq!(findings.len(), 1);
    }

    #[test]
    fn absolute_targets_and_named_deltas_pass() {
        let findings = run(
            "fn f(&mut self) { let gap = now.since(start); net.advance(gap); \
net.run_until(SimTime::from_micros(u64::MAX)); }",
        );
        assert!(findings.is_empty(), "{findings:?}");
    }

    #[test]
    fn closure_arrow_is_not_a_subtraction() {
        let findings = run("fn f(&mut self) { net.advance(delay_of(|| -> Duration { gap })); }");
        assert!(findings.is_empty(), "{findings:?}");
    }

    #[test]
    fn subtraction_outside_an_advancer_passes() {
        let findings = run("fn f(a: SimTime, b: SimTime) -> Duration { a - b }");
        assert!(findings.is_empty(), "{findings:?}");
    }

    #[test]
    fn foreign_sub_impl_for_simtime_is_flagged() {
        let findings = run("impl Sub<Duration> for SimTime { type Output = SimTime; \
fn sub(self, rhs: Duration) -> SimTime { SimTime(0) } }");
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert!(findings[0].message.contains("time.rs"));
    }

    #[test]
    fn sub_assign_impl_is_flagged_too() {
        let findings = run(
            "impl SubAssign<Duration> for SimTime { fn sub_assign(&mut self, r: Duration) {} }",
        );
        assert_eq!(findings.len(), 1);
    }

    #[test]
    fn unrelated_impls_pass() {
        let findings =
            run("impl Sub<SimTime> for Other { type Output = u64; } impl Add for SimTime {}");
        assert!(findings.is_empty(), "{findings:?}");
    }

    #[test]
    fn test_masked_code_is_skipped() {
        let findings =
            run("#[cfg(test)] mod t { fn f(net: &mut Network) { net.advance(a - b); } }");
        assert!(findings.is_empty(), "{findings:?}");
    }

    #[test]
    fn scope_covers_sim_crates_but_not_the_defining_file() {
        assert!(SimtimeMonotonicity.applies("crates/netsim/src/network.rs"));
        assert!(SimtimeMonotonicity.applies("crates/dpi/src/device.rs"));
        assert!(SimtimeMonotonicity.applies("crates/core/src/replay.rs"));
        assert!(!SimtimeMonotonicity.applies("crates/netsim/src/time.rs"));
        assert!(!SimtimeMonotonicity.applies("crates/netsim/tests/clock.rs"));
        assert!(!SimtimeMonotonicity.applies("crates/obs/src/journal.rs"));
    }
}
