//! guard-across-blocking: no lock guard may be live across blocking work.
//!
//! The workspace's concurrency layers (SessionPool waves, DeploymentPool
//! flows, journal JSONL export) all follow one discipline: take a lock,
//! copy what you need, release, *then* do the slow thing. A Mutex/RwLock
//! or shard guard held across `run_wave`, a replay, a JSONL export, or a
//! channel send/recv turns a microsecond critical section into one that
//! spans milliseconds of simulated work — and, for the flow-table locks,
//! into a real deadlock when the blocked work re-enters the table. This
//! rule walks the guard-lifetime dataflow and flags every blocking call
//! that happens while any guard is live, except calls *on the guarded
//! object itself* (flushing a mutex-protected writer necessarily holds
//! its lock).

use crate::dataflow::receiver_idents;
use crate::rules::{Finding, Rule, RuleCtx};

pub struct GuardAcrossBlocking;

/// Calls that block or expand to unbounded simulated work. Matched as
/// `name(` call heads (method or free fn).
const BLOCKING: &[&str] = &[
    "run_wave",
    "replay_schedule",
    "replay_trace",
    "to_jsonl",
    "validate_jsonl",
    "flush",
    "send",
    "recv",
];

impl Rule for GuardAcrossBlocking {
    fn name(&self) -> &'static str {
        "guard-across-blocking"
    }

    fn code(&self) -> &'static str {
        "LIB009"
    }

    fn explain(&self) -> &'static str {
        "A Mutex/RwLock/shard guard must not be live across blocking work: \
SessionPool::run_wave, replay_schedule/replay_trace, JSONL export \
(to_jsonl/validate_jsonl/flush), or channel send/recv. Holding a guard \
across such a call serializes every other worker on a critical section \
that now spans milliseconds of simulated traffic, and deadlocks outright \
if the blocked work re-acquires the same lock (DeploymentPool workers \
re-enter the flow table during replay). Copy what you need out of the \
guard, drop it (explicitly or by scope), then do the slow work. Calls on \
the guarded binding itself are exempt — flushing a lock-protected writer \
necessarily holds its lock. Suppress a proven exception with \
`// lint: allow(guard-across-blocking)`."
    }

    fn applies(&self, rel_path: &str) -> bool {
        (rel_path.starts_with("crates/core/")
            || rel_path.starts_with("crates/dpi/")
            || rel_path.starts_with("crates/obs/")
            || rel_path.starts_with("crates/netsim/"))
            && !crate::rules::in_test_tree(rel_path)
    }

    fn check(&self, ctx: &RuleCtx<'_>) -> Vec<Finding> {
        let mut findings = Vec::new();
        let toks = ctx.tokens;
        for fg in ctx.guards {
            for r in &fg.ranges {
                let hi = r.end.min(toks.len());
                let mut i = r.start + 1;
                while i < hi {
                    if fg.in_nested_fn(i) || ctx.test_mask.get(i).copied().unwrap_or(false) {
                        i += 1;
                        continue;
                    }
                    let t = &toks[i];
                    let is_call = BLOCKING.contains(&t.text.as_str())
                        && toks.get(i + 1).is_some_and(|n| n.is("("))
                        && !(i > 0 && toks[i - 1].is("fn"));
                    if !is_call {
                        i += 1;
                        continue;
                    }
                    // A blocking call on the guard itself is the reason
                    // the guard exists (e.g. flushing a locked writer).
                    if let Some(name) = &r.binding {
                        let on_guard = i >= 2
                            && toks[i - 1].is(".")
                            && receiver_idents(toks, i - 2).first() == Some(name);
                        if on_guard {
                            i += 1;
                            continue;
                        }
                    } else if r.start <= i && i < r.end {
                        // A temporary's own expression chain
                        // (`x.lock().flush()`) is the same exemption.
                        let mut chained = false;
                        let mut j = r.acq.at;
                        while j < i {
                            if toks[j].is(";") {
                                break;
                            }
                            j += 1;
                        }
                        if j == i {
                            chained = true;
                        }
                        if chained {
                            i += 1;
                            continue;
                        }
                    }
                    let held = r.binding.as_deref().unwrap_or("<temporary>");
                    findings.push(Finding {
                        line: t.line,
                        message: format!(
                            "blocking call `{}()` while guard `{}` (acquired via \
`{}()` at line {}) is still live; copy out of the guard and drop it first",
                            t.text, held, r.acq.method, r.acq.line
                        ),
                        subject: Some(fg.fn_name.clone()),
                    });
                    i += 1;
                }
            }
        }
        findings
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::run_rule;

    fn run(src: &str) -> Vec<Finding> {
        run_rule(&GuardAcrossBlocking, "crates/core/src/deploy/pool.rs", src)
    }

    #[test]
    fn guard_live_across_run_wave_is_flagged() {
        let src = "fn f(&self) { let state = self.state.lock(); \
let reports = self.pool.run_wave(jobs, &exec); drop(state); }";
        let findings = run(src);
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert!(findings[0].message.contains("run_wave"));
        assert!(findings[0].message.contains("`state`"));
    }

    #[test]
    fn dropping_the_guard_before_the_wave_passes() {
        let src = "fn f(&self) { let state = self.state.lock(); \
let plan = state.plan.clone(); drop(state); \
let reports = self.pool.run_wave(plan, &exec); }";
        assert!(run(src).is_empty());
    }

    #[test]
    fn guard_scoped_out_before_replay_passes() {
        let src = "fn f(&self) { let plan = { let s = self.state.lock(); \
s.plan.clone() }; session.replay_schedule(trace, &plan, &opts); }";
        assert!(run(src).is_empty());
    }

    #[test]
    fn shard_guard_across_replay_is_flagged() {
        let src = "fn f(&self) { let shard = table.shard(key); \
session.replay_schedule(trace, &schedule, &opts); }";
        let findings = run(src);
        assert_eq!(findings.len(), 1);
        assert!(findings[0].message.contains("replay_schedule"));
    }

    #[test]
    fn flush_on_the_guard_itself_is_exempt() {
        let src = "fn f(&self) { let mut w = self.inner.lock(); w.flush(); }";
        assert!(run(src).is_empty());
    }

    #[test]
    fn flush_chained_on_a_temporary_is_exempt() {
        let src = "fn f(&self) { self.inner.lock().flush(); }";
        assert!(run(src).is_empty());
    }

    #[test]
    fn flush_on_something_else_under_a_guard_is_flagged() {
        let src = "fn f(&self) { let g = self.state.lock(); self.out.flush(); }";
        assert_eq!(run(src).len(), 1);
    }

    #[test]
    fn send_inside_nested_fn_does_not_leak_to_parent_guard() {
        let src = "fn outer(&self) { let g = self.state.lock(); \
fn helper(tx: &Sender) { tx.send(1); } finish(g); }";
        assert!(run(src).is_empty());
    }

    #[test]
    fn blocking_definitions_are_not_calls() {
        let src = "fn run_wave(&self) { let g = self.state.lock(); g.step(); }";
        assert!(run(src).is_empty());
    }

    #[test]
    fn test_masked_blocking_calls_are_skipped() {
        let src = "#[cfg(test)] mod t { fn f() { let g = state.lock(); \
pool.run_wave(jobs, &exec); } }";
        assert!(run(src).is_empty());
    }
}
