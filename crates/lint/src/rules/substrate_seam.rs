//! substrate-seam: crates/core talks to its environment exclusively
//! through the `Substrate` trait; only the sim backend adapter
//! (`crates/core/src/sim.rs`) may name `liberate_netsim` directly.
//!
//! The seam exists so probe/evade logic runs unchanged over any backend —
//! the packet-level simulator, the nftables-shaped wire backend, or a
//! future real-socket one. A single `liberate_netsim::` path outside the
//! adapter quietly re-couples the whole phase pipeline to the simulator
//! and breaks every non-sim deployment, so the boundary is enforced
//! mechanically. Test modules are NOT exempt: tests reach sim-only
//! surface through the `crate::sim` re-exports and `Deref`, keeping the
//! import seam identical in shipped and test code.

use crate::items::fn_spans;
use crate::rules::{Finding, Rule, RuleCtx};

pub struct SubstrateSeam;

impl Rule for SubstrateSeam {
    fn name(&self) -> &'static str {
        "substrate-seam"
    }

    fn code(&self) -> &'static str {
        "LIB013"
    }

    fn explain(&self) -> &'static str {
        "crates/core is generic over the `Substrate` trait: injection, \
observation, and clock access go through trait calls so the same \
probe/evade logic drives the simulator, the nftables-shaped wire backend, \
or any future substrate. Only the adapter module `crates/core/src/sim.rs` \
may name `liberate_netsim`; anywhere else the path re-couples core to one \
backend and silently breaks the others. Import what you need from \
`crate::sim` (which re-exports the sim-only surface) or widen the \
`Substrate` trait instead. Suppress a deliberate exception with \
`// lint: allow(substrate-seam)` directly above it."
    }

    fn applies(&self, rel_path: &str) -> bool {
        rel_path.starts_with("crates/core/src/") && rel_path != "crates/core/src/sim.rs"
    }

    fn check(&self, ctx: &RuleCtx<'_>) -> Vec<Finding> {
        let mut findings = Vec::new();
        let toks = ctx.tokens;
        let spans = fn_spans(toks);
        for (i, tok) in toks.iter().enumerate() {
            if tok.text != "liberate_netsim" {
                continue;
            }
            let subject = spans
                .iter()
                .find(|s| s.start <= i && i < s.end)
                .map(|s| s.name.clone());
            let in_fn = subject
                .as_deref()
                .map(|n| format!(" in `{n}`"))
                .unwrap_or_default();
            findings.push(Finding {
                line: tok.line,
                message: format!(
                    "`liberate_netsim` named outside the sim adapter{in_fn}: core must \
                     reach the backend through the Substrate trait (or crate::sim \
                     re-exports), not the simulator crate directly"
                ),
                subject,
            });
        }
        findings
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::run_rule;

    fn run(src: &str) -> Vec<Finding> {
        run_rule(&SubstrateSeam, "crates/core/src/replay.rs", src)
    }

    #[test]
    fn direct_import_is_flagged() {
        let findings = run("use liberate_netsim::os::OsKind;\nfn f() {}\n");
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert_eq!(findings[0].line, 1);
        assert!(findings[0].message.contains("Substrate trait"));
    }

    #[test]
    fn qualified_path_inside_a_fn_names_the_fn() {
        let findings = run("fn build() {\n\
             let e = liberate_netsim::env::Environment::new();\n\
             }");
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].line, 2);
        assert_eq!(findings[0].subject.as_deref(), Some("build"));
    }

    #[test]
    fn test_modules_are_not_exempt() {
        let findings = run("#[cfg(test)] mod t {\n\
             use liberate_netsim::server::EchoApp;\n\
             }");
        assert_eq!(findings.len(), 1, "{findings:?}");
    }

    #[test]
    fn trait_calls_and_sim_reexports_pass() {
        let findings = run("use liberate_substrate::Substrate;\n\
             use crate::sim::{OsKind, SimSubstrate};\n\
             fn f<S: Substrate>(s: &mut S) { s.run_until_idle(); }\n");
        assert!(findings.is_empty(), "{findings:?}");
    }

    #[test]
    fn scope_excludes_the_sim_adapter_and_other_crates() {
        assert!(SubstrateSeam.applies("crates/core/src/replay.rs"));
        assert!(SubstrateSeam.applies("crates/core/src/deploy/pool.rs"));
        assert!(!SubstrateSeam.applies("crates/core/src/sim.rs"));
        assert!(!SubstrateSeam.applies("crates/substrate/src/lib.rs"));
        assert!(!SubstrateSeam.applies("crates/netsim/src/env.rs"));
        assert!(!SubstrateSeam.applies("src/lib.rs"));
    }
}
