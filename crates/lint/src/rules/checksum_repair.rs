//! checksum-repair: any function that rewrites TCP/IP wire or payload
//! bytes must repair (or explicitly opt out of) the checksum.
//!
//! lib·erate's detection phases replay mutated traces (§5.1), and a
//! mutated packet with a stale checksum is dropped by the receiving stack
//! before the classifier under test ever weighs in — silently turning a
//! "no differentiation" verdict into a transport artifact. Evasion
//! transforms face the converse hazard: several inert-insertion
//! techniques *deliberately* corrupt checksums so the server ignores the
//! packet (Table 3), and those carry an allow annotation naming the fn.

use crate::items::fn_spans;
use crate::rules::{Finding, Rule, RuleCtx};

pub struct ChecksumRepair;

/// Identifiers whose presence in a fn body marks it as writing bytes.
const WRITE_MARKERS: &[&str] = &["copy_from_slice", "iter_mut", "fill"];

/// Identifiers that count as invoking checksum repair/policy.
const REPAIR_MARKERS: &[&str] = &[
    "pseudo_header_checksum",
    "internet_checksum",
    "verify_checksum",
    "ChecksumSpec",
];

impl Rule for ChecksumRepair {
    fn name(&self) -> &'static str {
        "checksum-repair"
    }

    fn code(&self) -> &'static str {
        "LIB001"
    }

    fn explain(&self) -> &'static str {
        "Functions in crates/packet/src/mutate.rs and crates/core/src/evasion/ that \
write TCP/IP header or payload bytes (indexed stores, copy_from_slice, fill, \
iter_mut) must call a checksum routine (pseudo_header_checksum, \
internet_checksum, verify_checksum, or take a ChecksumSpec). A stale checksum \
makes the receiving stack drop the replayed packet before the classifier under \
test sees it, corrupting lib*erate's differentiation verdicts (paper S5.1). \
Transforms that corrupt checksums on purpose -- the inert-insertion rows of \
Table 3 -- opt out with `// lint: allow(checksum-repair)` above the fn, or \
file-wide with `// lint: allow(checksum-repair: <fn_name>)`."
    }

    fn applies(&self, rel_path: &str) -> bool {
        rel_path == "crates/packet/src/mutate.rs"
            || rel_path.starts_with("crates/core/src/evasion/")
    }

    fn check(&self, ctx: &RuleCtx<'_>) -> Vec<Finding> {
        let mut findings = Vec::new();
        for span in fn_spans(ctx.tokens) {
            // Skip test-only fns; their packets never reach a real stack.
            if ctx.test_mask.get(span.start).copied().unwrap_or(false) {
                continue;
            }
            let Some(body_start) = span.body_start else {
                continue;
            };
            let body = &ctx.tokens[body_start..span.end];
            let writes = body
                .iter()
                .any(|t| WRITE_MARKERS.contains(&t.text.as_str()))
                || indexed_store(body);
            if !writes {
                continue;
            }
            let repairs = body
                .iter()
                .any(|t| REPAIR_MARKERS.contains(&t.text.as_str()));
            if !repairs {
                findings.push(Finding {
                    line: span.line,
                    message: format!(
                        "fn `{}` writes packet bytes but never invokes a checksum \
                         routine ({})",
                        span.name,
                        REPAIR_MARKERS.join("/")
                    ),
                    subject: Some(span.name.clone()),
                });
            }
        }
        findings
    }
}

/// `buf[i] = x` style stores: a `]` `=` pair not followed by another `=`
/// (which would be a comparison) and not preceded by one (`== buf[i]`
/// never produces `]` directly before `=`... but `<=`/`>=` can't either,
/// so the pair check plus the lookahead suffices).
fn indexed_store(body: &[crate::lexer::Token]) -> bool {
    body.windows(3)
        .any(|w| w[0].is("]") && w[1].is("=") && !w[2].is("="))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::run_rule;

    fn run(path: &str, src: &str) -> Vec<Finding> {
        run_rule(&ChecksumRepair, path, src)
    }

    #[test]
    fn flags_unrepaired_write() {
        let findings = run(
            "crates/packet/src/mutate.rs",
            "pub fn clobber(wire: &mut [u8]) { wire[16] = 0; wire[17] = 0; }",
        );
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].subject.as_deref(), Some("clobber"));
    }

    #[test]
    fn repaired_write_passes() {
        let findings = run(
            "crates/core/src/evasion/rewrite.rs",
            "pub fn fix(wire: &mut [u8]) { wire[16] = 0; \
             let ck = pseudo_header_checksum(s, d, 6, wire); \
             wire[16..18].copy_from_slice(&ck.to_be_bytes()); }",
        );
        assert!(findings.is_empty());
    }

    #[test]
    fn read_only_fn_passes() {
        let findings = run(
            "crates/packet/src/mutate.rs",
            "pub fn peek(wire: &[u8]) -> u8 { wire[0] }",
        );
        assert!(findings.is_empty());
    }

    #[test]
    fn comparison_is_not_a_store() {
        let findings = run(
            "crates/packet/src/mutate.rs",
            "pub fn same(a: &[u8]) -> bool { a[0] == a[1] }",
        );
        assert!(findings.is_empty());
    }

    #[test]
    fn test_code_is_exempt() {
        let findings = run(
            "crates/packet/src/mutate.rs",
            "#[cfg(test)] mod tests { fn t(w: &mut [u8]) { w[0] = 1; } }",
        );
        assert!(findings.is_empty());
    }
}
