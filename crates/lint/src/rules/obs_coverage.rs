//! obs-coverage: every journal event emitted must move a metrics counter.
//!
//! PR 2's observability contract pairs the two surfaces deliberately:
//! the journal answers "what happened, in order" and the counters answer
//! "how much, cheaply". An `EventKind` emission with no counter increment
//! in the same function gives dashboards a blind spot — the event stream
//! shows activity the summary table cannot corroborate. This rule finds
//! every `record`-family call carrying an `EventKind::Variant` and checks
//! that the enclosing function also touches the variant's paired
//! `Counter`. Lifecycle/span variants with no meaningful rate are exempt
//! by the pairing table itself.

use crate::rules::{Finding, Rule, RuleCtx};

pub struct ObsCoverage;

/// EventKind variant → the Counter its emitter must increment. `None`
/// means the variant is lifecycle/span plumbing with no paired rate.
const PAIRING: &[(&str, Option<&str>)] = &[
    ("SpanStart", None),
    ("SpanEnd", None),
    ("SessionStarted", None),
    ("PacketInjected", Some("PacketsInjected")),
    ("ClassifierVerdict", Some("Verdicts")),
    ("FlowReset", Some("FlowResets")),
    ("CacheHit", Some("CacheHits")),
    ("CacheMiss", Some("CacheMisses")),
    ("TechniqueTried", Some("TechniquesTried")),
    ("ReplayFinished", Some("ReplaysExecuted")),
    ("RuleSwap", Some("RuleSwaps")),
    ("TechniquePublished", Some("RecharacterizeWaves")),
    ("FallbackEngaged", Some("FallbackParks")),
];

/// Hist variant → the Counter counting the same activity. A histogram
/// observed without its rate counter has the same blind-spot problem as
/// an unpaired event: quantiles with no corroborating count. `None`
/// marks distribution-only histograms (occupancy, rounds, per-phase
/// span durations) whose "rate" is the span structure itself.
const HIST_PAIRING: &[(&str, Option<&str>)] = &[
    ("DetectSimMicros", None),
    ("BlindSearchSimMicros", None),
    ("PositionProbeSimMicros", None),
    ("EvaluateSimMicros", None),
    ("DeploySimMicros", None),
    ("WaveSimMicros", None),
    ("ReplaySimMicros", None),
    ("ReplayHostMicros", Some("ReplaysExecuted")),
    ("WaveOccupancy", None),
    ("FlowBytesScanned", Some("FlowsEvicted")),
    ("BlindRounds", None),
    ("InjectBytes", Some("PacketsInjected")),
    ("StepSimMicros", Some("PacketsStepped")),
    ("ReadyQueueDepth", Some("ReactorTicks")),
    ("ReactorTickMicros", Some("ReactorTicks")),
];

/// How far back to look for the call head enclosing an emission.
const CALLEE_SCAN_TOKENS: usize = 60;

impl Rule for ObsCoverage {
    fn name(&self) -> &'static str {
        "obs-coverage"
    }

    fn code(&self) -> &'static str {
        "LIB011"
    }

    fn explain(&self) -> &'static str {
        "Every EventKind variant passed to a record-family call must be \
paired, in the same function, with an increment of its designated Metrics \
counter (PacketInjected↔PacketsInjected, ClassifierVerdict↔Verdicts, \
CacheHit↔CacheHits, and so on — see the pairing table in the rule source). \
The journal and the counters are two views of one activity stream; an \
event emitted without its counter leaves summary dashboards unable to \
corroborate what the journal shows, and the drift is invisible until \
someone diffs the two by hand. The same contract covers histograms: a \
`Hist::Variant` passed to an observe-family call must sit next to the \
Counter tracking the same activity (InjectBytes↔PacketsInjected, \
FlowBytesScanned↔FlowsEvicted, ReplayHostMicros↔ReplaysExecuted) unless \
the pairing table marks it distribution-only. Either increment the \
paired counter next to the emission, or — for a variant that genuinely \
has no rate — suppress with `// lint: allow(obs-coverage: <Variant>)` \
and say why. New EventKind and Hist variants must be added to the \
pairing tables when introduced."
    }

    fn applies(&self, rel_path: &str) -> bool {
        rel_path.starts_with("crates/") && !crate::rules::in_test_tree(rel_path)
    }

    fn check(&self, ctx: &RuleCtx<'_>) -> Vec<Finding> {
        let mut findings = Vec::new();
        check_namespace(
            ctx,
            &mut findings,
            "EventKind",
            PAIRING,
            "record",
            "lifecycle",
        );
        check_namespace(
            ctx,
            &mut findings,
            "Hist",
            HIST_PAIRING,
            "observe",
            "distribution-only",
        );
        findings
    }
}

/// Scan one enum namespace (`EventKind` via record-family calls, `Hist`
/// via observe-family calls) against its pairing table.
fn check_namespace(
    ctx: &RuleCtx<'_>,
    findings: &mut Vec<Finding>,
    namespace: &str,
    pairing: &[(&str, Option<&str>)],
    callee_needle: &str,
    exempt_word: &str,
) {
    let toks = ctx.tokens;
    for i in 0..toks.len() {
        if !toks[i].is(namespace)
            || !toks.get(i + 1).is_some_and(|t| t.is(":"))
            || !toks.get(i + 2).is_some_and(|t| t.is(":"))
        {
            continue;
        }
        let Some(variant_tok) = toks.get(i + 3) else {
            continue;
        };
        if ctx.test_mask.get(i).copied().unwrap_or(false) {
            continue;
        }
        if !is_emission(toks, i, callee_needle) {
            continue;
        }
        let variant = variant_tok.text.as_str();
        // `Hist::for_phase(..)` and friends are associated functions,
        // not variants — variants are CamelCase.
        if !variant.starts_with(|c: char| c.is_ascii_uppercase()) {
            continue;
        }
        let Some((_, paired)) = pairing.iter().find(|(v, _)| *v == variant) else {
            findings.push(Finding {
                line: variant_tok.line,
                message: format!(
                    "{namespace}::{variant} is not in the obs-coverage pairing \
table; add it with its Counter (or None for {exempt_word} entries)"
                ),
                subject: Some(variant.to_string()),
            });
            continue;
        };
        let Some(counter) = paired else {
            continue;
        };
        let Some(f) = ctx
            .ir
            .iter()
            .filter(|f| f.contains(i))
            .max_by_key(|f| f.start)
        else {
            continue;
        };
        let increments = (f.start..f.end.min(toks.len())).any(|j| {
            toks[j].is("Counter")
                && toks.get(j + 1).is_some_and(|t| t.is(":"))
                && toks.get(j + 2).is_some_and(|t| t.is(":"))
                && toks.get(j + 3).is_some_and(|t| t.is(counter))
        });
        if !increments {
            findings.push(Finding {
                line: variant_tok.line,
                message: format!(
                    "{namespace}::{variant} emitted in `{}` without incrementing \
Counter::{counter} in the same function",
                    f.name
                ),
                subject: Some(variant.to_string()),
            });
        }
    }
}

/// Is the enum token at `i` an argument of an emitting call (callee name
/// containing `callee_needle` — "record" for events, "observe" for
/// histograms)? Walks back to the unmatched `(` opening the current
/// argument list and checks the callee name. Match arms and struct
/// definitions sit inside braces, not an argument list, so they never
/// qualify.
fn is_emission(toks: &[crate::lexer::Token], i: usize, callee_needle: &str) -> bool {
    let mut depth = 0i32;
    let lo = i.saturating_sub(CALLEE_SCAN_TOKENS);
    let mut j = i;
    while j > lo {
        j -= 1;
        let t = &toks[j];
        if t.is(")") {
            depth += 1;
        } else if t.is("(") {
            if depth == 0 {
                return j > 0 && toks[j - 1].text.contains(callee_needle);
            }
            depth -= 1;
        } else if t.is(";") {
            return false;
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::run_rule;

    fn run(src: &str) -> Vec<Finding> {
        run_rule(&ObsCoverage, "crates/netsim/src/network.rs", src)
    }

    #[test]
    fn emission_without_counter_is_flagged() {
        let src = "fn inject(&mut self) { \
self.journal.record(at, EventKind::PacketInjected { bytes: 1 }); }";
        let findings = run(src);
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert!(findings[0].message.contains("PacketsInjected"));
        assert_eq!(findings[0].subject.as_deref(), Some("PacketInjected"));
    }

    #[test]
    fn emission_with_counter_in_same_fn_passes() {
        let src = "fn inject(&mut self) { \
self.journal.metrics.incr(Counter::PacketsInjected); \
self.journal.record(at, EventKind::PacketInjected { bytes: 1 }); }";
        assert!(run(src).is_empty());
    }

    #[test]
    fn counter_in_a_different_fn_does_not_count() {
        let src = "fn other(&mut self) { m.incr(Counter::PacketsInjected); } \
fn inject(&mut self) { \
self.journal.record(at, EventKind::PacketInjected { bytes: 1 }); }";
        assert_eq!(run(src).len(), 1);
    }

    #[test]
    fn lifecycle_variants_are_exempt() {
        let src = "fn start(&self) { \
self.journal.record(t, EventKind::SessionStarted { env: e, seed: s }); }";
        assert!(run(src).is_empty(), "{:?}", run(src));
    }

    #[test]
    fn match_arms_are_consumption_not_emission() {
        let src = "fn summarize(ev: &Event) { match ev.kind { \
EventKind::PacketInjected { bytes } => total += bytes, \
EventKind::FlowReset => resets += 1, _ => {} } }";
        assert!(run(src).is_empty(), "{:?}", run(src));
    }

    #[test]
    fn record_helper_names_count_as_emitters() {
        let src = "fn reset(&mut self) { self.journal_incr(Counter::FlowResets); \
self.journal_record(now, EventKind::FlowReset); }";
        assert!(run(src).is_empty(), "{:?}", run(src));
    }

    #[test]
    fn unknown_variant_demands_a_pairing_entry() {
        let src = "fn f(&self) { j.record(t, EventKind::BrandNewThing { x: 1 }); }";
        let findings = run(src);
        assert_eq!(findings.len(), 1);
        assert!(findings[0].message.contains("pairing table"));
    }

    #[test]
    fn test_masked_emissions_are_skipped() {
        let src = "#[cfg(test)] mod t { fn f() { \
j.record(1, EventKind::PacketInjected { bytes: 2 }); } }";
        assert!(run(src).is_empty());
    }

    #[test]
    fn hist_observe_without_counter_is_flagged() {
        let src = "fn inject(&mut self) { \
self.journal.observe(Hist::InjectBytes, wire.len() as u64); }";
        let findings = run(src);
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert!(findings[0].message.contains("PacketsInjected"));
        assert_eq!(findings[0].subject.as_deref(), Some("InjectBytes"));
    }

    #[test]
    fn hist_observe_with_counter_in_same_fn_passes() {
        let src = "fn inject(&mut self) { \
self.journal.metrics.incr(Counter::PacketsInjected); \
self.journal.observe(Hist::InjectBytes, wire.len() as u64); }";
        assert!(run(src).is_empty(), "{:?}", run(src));
    }

    #[test]
    fn distribution_only_hists_are_exempt() {
        let src = "fn wave_open(&self, n: usize) { \
self.journal.observe(Hist::WaveOccupancy, n as u64); }";
        assert!(run(src).is_empty(), "{:?}", run(src));
    }

    #[test]
    fn hist_match_arms_are_consumption_not_emission() {
        let src = "fn label(h: Hist) -> &'static str { match h { \
Hist::InjectBytes => \"inject\", _ => \"other\" } }";
        assert!(run(src).is_empty(), "{:?}", run(src));
    }

    #[test]
    fn unknown_hist_variant_demands_a_pairing_entry() {
        let src = "fn f(&self) { j.observe(Hist::BrandNewTiming, 7); }";
        let findings = run(src);
        assert_eq!(findings.len(), 1);
        assert!(
            findings[0].message.contains("pairing table"),
            "{findings:?}"
        );
    }
}
