//! The rule registry. Each rule is scoped to the part of the workspace
//! where its invariant holds, emits [`Finding`]s against the token
//! stream (and, for the concurrency pack, the statement IR and guard
//! dataflow), and documents itself for `liberate-lint explain <rule>`.

mod checksum_repair;
mod determinism;
mod flowtable_lock_ordering;
mod generation_discipline;
mod guard_across_blocking;
mod no_panic;
mod obs_coverage;
mod overhead_consistency;
mod payload_copy;
mod pcap_byte_order;
mod reactor_blocking;
mod simtime_monotonicity;
mod substrate_seam;
mod taxonomy;

use crate::dataflow::FnGuards;
use crate::ir::FnIr;
use crate::lexer::Token;

/// Everything a rule sees for one file.
pub struct RuleCtx<'a> {
    /// Workspace-relative path with `/` separators.
    pub rel_path: &'a str,
    pub tokens: &'a [Token],
    /// Parallel to `tokens`: true for tokens inside `#[cfg(test)]` items.
    pub test_mask: &'a [bool],
    /// Statement-level IR: every fn lowered to a block tree.
    pub ir: &'a [FnIr],
    /// Guard-lifetime dataflow over `ir`, one entry per fn with a body.
    pub guards: &'a [FnGuards],
}

/// A rule hit before allow-suppression is applied.
#[derive(Debug, Clone)]
pub struct Finding {
    pub line: u32,
    pub message: String,
    /// What the finding is about (a fn or variant name). An allow
    /// annotation carrying this as its detail suppresses the finding
    /// anywhere in the file.
    pub subject: Option<String>,
}

pub trait Rule {
    /// Stable kebab-case identifier, used in diagnostics and allows.
    fn name(&self) -> &'static str;
    /// Stable `LIBnnn` diagnostic code, used in `--json` output and CI
    /// diffs. Codes are assigned once and never reused.
    fn code(&self) -> &'static str;
    /// Rationale shown by `liberate-lint explain <rule>`.
    fn explain(&self) -> &'static str;
    /// Whether this rule scans the given workspace-relative file.
    fn applies(&self, rel_path: &str) -> bool;
    fn check(&self, ctx: &RuleCtx<'_>) -> Vec<Finding>;
}

/// All rules, in diagnostic-ordering priority.
pub fn all() -> Vec<Box<dyn Rule>> {
    vec![
        Box::new(checksum_repair::ChecksumRepair),
        Box::new(taxonomy::TaxonomyExhaustiveness),
        Box::new(determinism::Determinism),
        Box::new(flowtable_lock_ordering::FlowtableLockOrdering),
        Box::new(guard_across_blocking::GuardAcrossBlocking),
        Box::new(generation_discipline::GenerationDiscipline),
        Box::new(no_panic::NoPanic),
        Box::new(obs_coverage::ObsCoverage),
        Box::new(overhead_consistency::OverheadConsistency),
        Box::new(payload_copy::PayloadCopy),
        Box::new(pcap_byte_order::PcapByteOrder),
        Box::new(reactor_blocking::ReactorBlocking),
        Box::new(simtime_monotonicity::SimtimeMonotonicity),
        Box::new(substrate_seam::SubstrateSeam),
    ]
}

/// Shared helper: does `path` live under a test or bench tree? Rules that
/// only constrain shipped code skip those files wholesale (in addition to
/// the `#[cfg(test)]` token mask inside regular sources).
pub(crate) fn in_test_tree(rel_path: &str) -> bool {
    rel_path.contains("/tests/") || rel_path.contains("/benches/")
}

/// Test helper: run one rule over a source text as if it lived at
/// `rel_path`, with the IR and dataflow prepared the same way the engine
/// does. Allow-suppression is NOT applied — rule tests see raw findings.
#[cfg(test)]
pub(crate) fn run_rule(rule: &dyn Rule, rel_path: &str, source: &str) -> Vec<Finding> {
    let lexed = crate::lexer::lex(source);
    let mask = crate::items::test_mask(&lexed.tokens);
    let ir = crate::ir::lower(&lexed.tokens);
    let guards = crate::dataflow::analyze(&lexed.tokens, &ir);
    rule.check(&RuleCtx {
        rel_path,
        tokens: &lexed.tokens,
        test_mask: &mask,
        ir: &ir,
        guards: &guards,
    })
}
