//! The rule registry. Each rule is scoped to the part of the workspace
//! where its invariant holds, emits [`Finding`]s against the token
//! stream, and documents itself for `liberate-lint explain <rule>`.

mod checksum_repair;
mod determinism;
mod flowtable_lock_ordering;
mod no_panic;
mod overhead_consistency;
mod pcap_byte_order;
mod simtime_monotonicity;
mod taxonomy;

use crate::lexer::Token;

/// Everything a rule sees for one file.
pub struct RuleCtx<'a> {
    /// Workspace-relative path with `/` separators.
    pub rel_path: &'a str,
    pub tokens: &'a [Token],
    /// Parallel to `tokens`: true for tokens inside `#[cfg(test)]` items.
    pub test_mask: &'a [bool],
}

/// A rule hit before allow-suppression is applied.
#[derive(Debug, Clone)]
pub struct Finding {
    pub line: u32,
    pub message: String,
    /// What the finding is about (a fn or variant name). An allow
    /// annotation carrying this as its detail suppresses the finding
    /// anywhere in the file.
    pub subject: Option<String>,
}

pub trait Rule {
    /// Stable kebab-case identifier, used in diagnostics and allows.
    fn name(&self) -> &'static str;
    /// Rationale shown by `liberate-lint explain <rule>`.
    fn explain(&self) -> &'static str;
    /// Whether this rule scans the given workspace-relative file.
    fn applies(&self, rel_path: &str) -> bool;
    fn check(&self, ctx: &RuleCtx<'_>) -> Vec<Finding>;
}

/// All rules, in diagnostic-ordering priority.
pub fn all() -> Vec<Box<dyn Rule>> {
    vec![
        Box::new(checksum_repair::ChecksumRepair),
        Box::new(taxonomy::TaxonomyExhaustiveness),
        Box::new(determinism::Determinism),
        Box::new(flowtable_lock_ordering::FlowtableLockOrdering),
        Box::new(no_panic::NoPanic),
        Box::new(overhead_consistency::OverheadConsistency),
        Box::new(pcap_byte_order::PcapByteOrder),
        Box::new(simtime_monotonicity::SimtimeMonotonicity),
    ]
}

/// Shared helper: does `path` live under a test or bench tree? Rules that
/// only constrain shipped code skip those files wholesale (in addition to
/// the `#[cfg(test)]` token mask inside regular sources).
pub(crate) fn in_test_tree(rel_path: &str) -> bool {
    rel_path.contains("/tests/") || rel_path.contains("/benches/")
}
