//! determinism: the simulator and the DPI models must be replayable.
//!
//! `crates/netsim` runs on a virtual clock (`SimTime`) and every
//! randomized choice threads an explicit seeded RNG, so a localization or
//! evasion experiment re-runs bit-identically. One stray wall-clock read
//! or ambient RNG breaks that: flow timeouts fire differently across
//! runs, pause techniques measure real time, and a flaky middlebox
//! emulation poisons every verdict built on top of it.

use crate::rules::{Finding, Rule, RuleCtx};

pub struct Determinism;

/// Ambient entropy sources: forbidden as bare identifiers.
const FORBIDDEN_IDENTS: &[&str] = &["thread_rng", "from_entropy"];

/// Types whose `::now()` reads the wall clock.
const CLOCK_TYPES: &[&str] = &["SystemTime", "Instant"];

impl Rule for Determinism {
    fn name(&self) -> &'static str {
        "determinism"
    }

    fn code(&self) -> &'static str {
        "LIB003"
    }

    fn explain(&self) -> &'static str {
        "crates/netsim and crates/dpi must not read wall-clock time \
(SystemTime::now, Instant::now) or ambient randomness (thread_rng, \
from_entropy). The simulator advances a virtual SimTime clock and all \
randomness flows through explicitly seeded RNGs so experiments replay \
bit-identically; one ambient read makes middlebox verdicts flaky and \
unreproducible. Use SimTime and a seeded StdRng passed in by the caller. \
Suppress a deliberate exception with `// lint: allow(determinism)` directly \
above the call."
    }

    fn applies(&self, rel_path: &str) -> bool {
        rel_path.starts_with("crates/netsim/") || rel_path.starts_with("crates/dpi/")
    }

    fn check(&self, ctx: &RuleCtx<'_>) -> Vec<Finding> {
        let mut findings = Vec::new();
        let toks = ctx.tokens;
        for (i, t) in toks.iter().enumerate() {
            if FORBIDDEN_IDENTS.contains(&t.text.as_str()) {
                findings.push(Finding {
                    line: t.line,
                    message: format!(
                        "`{}` is ambient entropy; thread a seeded RNG instead",
                        t.text
                    ),
                    subject: Some(t.text.clone()),
                });
            }
            // `SystemTime::now` / `Instant::now` as a token sequence.
            if CLOCK_TYPES.contains(&t.text.as_str())
                && toks.get(i + 1).is_some_and(|t| t.is(":"))
                && toks.get(i + 2).is_some_and(|t| t.is(":"))
                && toks.get(i + 3).is_some_and(|t| t.is("now"))
            {
                findings.push(Finding {
                    line: t.line,
                    message: format!(
                        "`{}::now` reads the wall clock; use the virtual SimTime clock",
                        t.text
                    ),
                    subject: Some(t.text.clone()),
                });
            }
        }
        findings
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::run_rule;

    fn run(src: &str) -> Vec<Finding> {
        run_rule(&Determinism, "crates/netsim/src/link.rs", src)
    }

    #[test]
    fn wall_clock_reads_are_flagged() {
        let findings =
            run("fn f() { let t = std::time::Instant::now(); let s = SystemTime::now(); }");
        assert_eq!(findings.len(), 2);
        assert!(findings[0].message.contains("Instant::now"));
        assert!(findings[1].message.contains("SystemTime::now"));
    }

    #[test]
    fn ambient_rng_is_flagged() {
        let findings = run("fn f() { let mut rng = rand::thread_rng(); }");
        assert_eq!(findings.len(), 1);
        assert!(findings[0].message.contains("thread_rng"));
    }

    #[test]
    fn type_mention_without_now_passes() {
        // Storing an Instant handed in by a caller is fine; creating one isn't.
        assert!(run("struct S { started: Instant } fn ok(i: Instant) {}").is_empty());
    }

    #[test]
    fn applies_even_in_test_code() {
        // Flaky tests are still flaky; the rule does not mask #[cfg(test)].
        let findings = run("#[cfg(test)] mod t { fn x() { Instant::now(); } }");
        assert_eq!(findings.len(), 1);
    }

    #[test]
    fn comment_mentions_pass() {
        assert!(run("// never call Instant::now here\nfn f() {}").is_empty());
    }
}
