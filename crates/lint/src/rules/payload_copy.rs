//! payload-copy: wire payload bytes move as `PacketBuf` views, never as
//! ad-hoc deep copies.
//!
//! The hot-path overhaul threaded ref-counted [`PacketBuf`] buffers
//! through the simulator's wire plumbing and the DPI feed so forwarding,
//! duplicating, and reassembling a segment bump a refcount instead of
//! copying payload bytes. That invariant regresses silently: a stray
//! `.to_vec()` or `.clone()` on a `wire`/`payload` binding compiles fine,
//! benches a little slower, and nobody notices until the copies-per-replay
//! curve has crept back up. This rule flags `.clone()`/`.to_vec()` calls
//! whose receiver's last path segment is `wire` or `payload` — the two
//! names the wire plumbing reserves for payload-carrying buffers — in the
//! crates that own the hot path. Mutation goes through
//! `PacketBuf::make_mut` (copy-on-write, tallied into the copy census);
//! sanctioned copies (endpoint consumption, refcount-bump clones of a
//! `PacketBuf` the type system can't distinguish here) carry a
//! `// lint: allow(payload-copy)` annotation saying why.

use crate::rules::{Finding, Rule, RuleCtx};

pub struct PayloadCopy;

impl Rule for PayloadCopy {
    fn name(&self) -> &'static str {
        "payload-copy"
    }

    fn code(&self) -> &'static str {
        "LIB014"
    }

    fn explain(&self) -> &'static str {
        "Wire payload bytes travel as ref-counted PacketBuf views: forwarding, \
duplicating, and feeding a segment must not deep-copy payload. A `.to_vec()` \
or `.clone()` on a binding named `wire` or `payload` re-introduces a per-packet \
copy the zero-copy overhaul removed — use `PacketBuf::slice` for views, \
`make_mut` for copy-on-write mutation (which feeds the payload-copies census), \
or `copy_to_vec` at a true egress point. Where a copy is sanctioned (an \
endpoint consuming bytes, or a cheap refcount-bump clone of a PacketBuf the \
token scan cannot type), annotate it with `// lint: allow(payload-copy)` and \
the reason."
    }

    fn applies(&self, rel_path: &str) -> bool {
        let in_scope = rel_path.starts_with("crates/netsim/src/")
            || rel_path.starts_with("crates/dpi/src/")
            || rel_path.starts_with("crates/substrate/src/");
        // buf.rs is the PacketBuf implementation: it owns the sanctioned
        // copy machinery (eager mode, make_mut, copy_to_vec) itself.
        in_scope
            && rel_path != "crates/substrate/src/buf.rs"
            && !crate::rules::in_test_tree(rel_path)
    }

    fn check(&self, ctx: &RuleCtx<'_>) -> Vec<Finding> {
        let mut findings = Vec::new();
        let toks = ctx.tokens;
        for (i, t) in toks.iter().enumerate() {
            if ctx.test_mask.get(i).copied().unwrap_or(false) {
                continue;
            }
            if !(t.is("clone") || t.is("to_vec")) {
                continue;
            }
            // Only argument-less method calls: `recv.clone()` / `recv.to_vec()`.
            if i < 2 || !toks[i - 1].is(".") {
                continue;
            }
            let open = toks.get(i + 1).is_some_and(|n| n.is("("));
            let close = toks.get(i + 2).is_some_and(|n| n.is(")"));
            if !(open && close) {
                continue;
            }
            // The receiver's last path segment is what the plumbing named
            // the buffer: `wire.clone()`, `pkt.payload.to_vec()`.
            let recv = &toks[i - 2];
            if !(recv.is("wire") || recv.is("payload")) {
                continue;
            }
            let fn_name = enclosing_fn(ctx, i);
            findings.push(Finding {
                line: t.line,
                message: format!(
                    "`{}.{}()`{} deep-copies wire payload bytes; use a PacketBuf \
view (slice), make_mut for copy-on-write mutation, or annotate a sanctioned copy",
                    recv.text,
                    t.text,
                    fn_name
                        .as_deref()
                        .map(|f| format!(" in `{f}`"))
                        .unwrap_or_default()
                ),
                subject: fn_name,
            });
        }
        findings
    }
}

/// The innermost fn whose span contains token `i`.
fn enclosing_fn(ctx: &RuleCtx<'_>, i: usize) -> Option<String> {
    ctx.ir
        .iter()
        .filter(|f| f.contains(i))
        .max_by_key(|f| f.start)
        .map(|f| f.name.clone())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::run_rule;

    fn run(src: &str) -> Vec<Finding> {
        run_rule(&PayloadCopy, "crates/netsim/src/hop.rs", src)
    }

    #[test]
    fn to_vec_on_wire_is_flagged() {
        let src = "fn f(wire: &PacketBuf) { let copy = wire.to_vec(); }";
        let findings = run(src);
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert!(findings[0].message.contains("wire.to_vec"));
        assert_eq!(findings[0].subject.as_deref(), Some("f"));
    }

    #[test]
    fn clone_on_payload_field_chain_is_flagged() {
        let src = "fn f(pkt: &ParsedPacket) { stash(pkt.payload.clone()); }";
        assert_eq!(run(src).len(), 1);
    }

    #[test]
    fn clone_on_other_names_passes() {
        // Helpers name PacketBuf parameters `buf` precisely so refcount
        // bumps don't trip the scan.
        let src = "fn f(buf: &PacketBuf) { let b = buf.clone(); let r = rules.clone(); }";
        assert!(run(src).is_empty(), "{:?}", run(src));
    }

    #[test]
    fn views_and_non_copy_methods_pass() {
        let src = "fn f(wire: &PacketBuf) { let v = wire.slice(4..); \
let n = wire.len(); let p = payload.as_ref(); }";
        assert!(run(src).is_empty(), "{:?}", run(src));
    }

    #[test]
    fn clone_with_arguments_passes() {
        // `Arc::clone(&wire)` and friends never match the `.clone()` form.
        let src = "fn f(wire: &Arc<PacketBuf>) { let w = Arc::clone(wire); }";
        assert!(run(src).is_empty(), "{:?}", run(src));
    }

    #[test]
    fn test_code_is_masked() {
        let src = "#[cfg(test)] mod t { fn f() { let c = wire.to_vec(); } }";
        assert!(run(src).is_empty());
    }

    #[test]
    fn scope_covers_hot_path_crates_only() {
        assert!(PayloadCopy.applies("crates/netsim/src/network.rs"));
        assert!(PayloadCopy.applies("crates/dpi/src/device.rs"));
        assert!(PayloadCopy.applies("crates/substrate/src/capture.rs"));
        assert!(!PayloadCopy.applies("crates/substrate/src/buf.rs"));
        assert!(!PayloadCopy.applies("crates/core/src/replay.rs"));
        assert!(!PayloadCopy.applies("crates/dpi/tests/device_unit.rs"));
    }
}
