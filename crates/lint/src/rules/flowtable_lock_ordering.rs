//! flowtable-lock-ordering: the sharded flow table's two-tier locks must
//! nest in one declared order.
//!
//! `ShardedFlowTable` holds per-shard mutexes plus one cross-shard
//! penalty-box mutex. The deadlock-free contract (documented on the
//! type): hold **at most one shard lock at a time**, and take the
//! penalty lock only **after** a shard lock — never the other way
//! around, and never two shard locks nested. This rule enforces the
//! contract at the token level: it tracks `let`-bound guards returned by
//! `.lock()` / `.read()` / `.write()` / `.shard()` / `.shard_at()` per
//! brace scope, assigns each acquisition a tier from its receiver chain
//! (`shard…` → tier 0, `penalt…` → tier 1), and flags any acquisition
//! made while a guard of an equal or higher tier is still live — or
//! whose tier it cannot classify at all.

use crate::rules::{Finding, Rule, RuleCtx};

pub struct FlowtableLockOrdering;

/// Methods whose return value is (or wraps) a lock guard.
const ACQUIRERS: &[&str] = &["lock", "read", "write", "shard", "shard_at"];

/// A live `let`-bound guard.
struct Held {
    name: String,
    tier: u8,
    depth: usize,
    line: u32,
}

fn tier_name(tier: u8) -> &'static str {
    match tier {
        0 => "shard",
        _ => "penalty-box",
    }
}

/// Walk the receiver chain backwards from `end` (the token before the
/// method's `.`), collecting the idents of e.g. `self.shards[idx]` while
/// skipping balanced `[...]` / `(...)` groups.
fn receiver_idents(toks: &[crate::lexer::Token], end: usize) -> Vec<String> {
    let mut idents = Vec::new();
    let mut i = end as isize;
    while i >= 0 {
        let t = &toks[i as usize];
        if t.is("]") || t.is(")") {
            let (open, close) = if t.is("]") { ("[", "]") } else { ("(", ")") };
            let mut balance = 1i32;
            i -= 1;
            while i >= 0 && balance > 0 {
                if toks[i as usize].is(close) {
                    balance += 1;
                } else if toks[i as usize].is(open) {
                    balance -= 1;
                }
                i -= 1;
            }
            continue;
        }
        let is_ident = t
            .text
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || c == '_')
            && !t.text.is_empty();
        if !is_ident {
            break;
        }
        idents.push(t.text.clone());
        // Continue through a field chain (`self.table.`); stop otherwise.
        if i >= 1 && toks[i as usize - 1].is(".") {
            i -= 2;
        } else {
            break;
        }
    }
    idents
}

/// Classify an acquisition: tier 0 for the shard mutexes, tier 1 for the
/// penalty box, `None` when the receiver names neither.
fn tier_of(method: &str, receiver: &[String]) -> Option<u8> {
    if method == "shard" || method == "shard_at" {
        return Some(0);
    }
    let lower: Vec<String> = receiver.iter().map(|s| s.to_ascii_lowercase()).collect();
    if lower.iter().any(|s| s.contains("shard")) {
        return Some(0);
    }
    if lower.iter().any(|s| s.contains("penalt")) {
        return Some(1);
    }
    None
}

/// Is the token at `at` the start of a `let`-bound statement? Scans back
/// to the nearest statement boundary; returns the bound name if so.
fn let_binding(toks: &[crate::lexer::Token], at: usize) -> Option<String> {
    let mut i = at as isize - 1;
    while i >= 0 {
        let t = &toks[i as usize];
        if t.is(";") || t.is("{") || t.is("}") {
            break;
        }
        i -= 1;
    }
    let mut j = (i + 1) as usize;
    if toks.get(j).is_some_and(|t| t.is("let")) {
        j += 1;
        if toks.get(j).is_some_and(|t| t.is("mut")) {
            j += 1;
        }
        return toks.get(j).map(|t| t.text.clone());
    }
    None
}

impl Rule for FlowtableLockOrdering {
    fn name(&self) -> &'static str {
        "flowtable-lock-ordering"
    }

    fn explain(&self) -> &'static str {
        "crates/dpi and crates/netsim must acquire ShardedFlowTable locks in \
the declared order: at most one shard lock (.shard()/.shard_at()/a shards[..] \
.lock()) held at a time, and the cross-shard penalty-box lock only ever taken \
after — never before, never held across — a shard acquisition. Nested \
acquisitions in any other order (shard-under-shard, shard-under-penalty, or a \
lock this rule cannot classify while another guard is live) can deadlock two \
pool workers probing flows that hash to each other's shards. Keep guard \
scopes minimal, drop the shard guard before long work, and suppress a proven \
exception with `// lint: allow(flowtable-lock-ordering)`."
    }

    fn applies(&self, rel_path: &str) -> bool {
        (rel_path.starts_with("crates/dpi/") || rel_path.starts_with("crates/netsim/"))
            && !crate::rules::in_test_tree(rel_path)
    }

    fn check(&self, ctx: &RuleCtx<'_>) -> Vec<Finding> {
        let mut findings = Vec::new();
        let toks = ctx.tokens;
        let mut depth = 0usize;
        let mut held: Vec<Held> = Vec::new();

        for (i, t) in toks.iter().enumerate() {
            if t.is("{") {
                depth += 1;
                continue;
            }
            if t.is("}") {
                depth = depth.saturating_sub(1);
                held.retain(|h| h.depth <= depth);
                continue;
            }
            if ctx.test_mask.get(i).copied().unwrap_or(false) {
                continue;
            }
            // Explicit early release: `drop(name)`.
            if t.is("drop")
                && toks.get(i + 1).is_some_and(|t| t.is("("))
                && toks.get(i + 3).is_some_and(|t| t.is(")"))
            {
                if let Some(name) = toks.get(i + 2) {
                    held.retain(|h| h.name != name.text);
                }
                continue;
            }
            // An acquisition: `.<method>(` for a guard-returning method.
            if !t.is(".") {
                continue;
            }
            let Some(method) = toks.get(i + 1) else {
                continue;
            };
            if !ACQUIRERS.contains(&method.text.as_str())
                || !toks.get(i + 2).is_some_and(|t| t.is("("))
            {
                continue;
            }
            let receiver = if i == 0 {
                Vec::new()
            } else {
                receiver_idents(toks, i - 1)
            };
            let tier = tier_of(&method.text, &receiver);
            for h in &held {
                let ordered = tier.is_some_and(|r| r > h.tier);
                if !ordered {
                    findings.push(Finding {
                        line: method.line,
                        message: format!(
                            "`.{}()` acquired while `{}` ({} guard from line {}) is \
still held; the declared order is one shard lock at a time, penalty box \
strictly after",
                            method.text,
                            h.name,
                            tier_name(h.tier),
                            h.line
                        ),
                        subject: Some(method.text.clone()),
                    });
                }
            }
            // Only `let`-bound guards outlive the statement.
            if let Some(tier) = tier {
                if let Some(name) = let_binding(toks, i) {
                    held.push(Held {
                        name,
                        tier,
                        depth,
                        line: method.line,
                    });
                }
            }
        }
        findings
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::items::test_mask;
    use crate::lexer::lex;

    fn run(src: &str) -> Vec<Finding> {
        let out = lex(src);
        let mask = test_mask(&out.tokens);
        FlowtableLockOrdering.check(&RuleCtx {
            rel_path: "crates/dpi/src/sharded.rs",
            tokens: &out.tokens,
            test_mask: &mask,
        })
    }

    #[test]
    fn shard_then_penalty_is_the_declared_order() {
        let src = "fn f(&self) { let mut shard = table.shard(key); \
self.penalties.lock().record(k); }";
        assert!(run(src).is_empty());
    }

    #[test]
    fn nested_shard_locks_are_flagged() {
        let src = "fn f(&self) { let a = self.shards[0].lock(); \
let b = self.shards[1].lock(); }";
        let findings = run(src);
        assert_eq!(findings.len(), 1);
        assert!(findings[0].message.contains("one shard lock at a time"));
    }

    #[test]
    fn penalty_before_shard_is_flagged() {
        let src = "fn f(&self) { let p = self.penalties.lock(); \
let s = table.shard(key); }";
        let findings = run(src);
        assert_eq!(findings.len(), 1);
        assert!(findings[0].message.contains("penalty-box guard"));
    }

    #[test]
    fn unclassifiable_lock_under_a_guard_is_flagged() {
        let src = "fn f(&self) { let s = table.shard(key); self.mystery.lock(); }";
        assert_eq!(run(src).len(), 1);
    }

    #[test]
    fn guard_scope_ends_at_closing_brace() {
        let src = "fn f(&self) { { let a = self.shards[0].lock(); } \
let b = self.shards[1].lock(); }";
        assert!(run(src).is_empty());
    }

    #[test]
    fn explicit_drop_releases_the_guard() {
        let src = "fn f(&self) { let a = self.shards[0].lock(); drop(a); \
let b = self.shards[1].lock(); }";
        assert!(run(src).is_empty());
    }

    #[test]
    fn transient_locks_with_nothing_held_pass() {
        let src = "fn f(&self) { self.shards.iter().map(|s| s.lock().len()).sum() }";
        assert!(run(src).is_empty());
    }

    #[test]
    fn test_masked_code_is_skipped() {
        let src = "#[cfg(test)] mod t { fn f() { let a = shards[0].lock(); \
let b = shards[1].lock(); } }";
        assert!(run(src).is_empty());
    }
}
