//! flowtable-lock-ordering: the sharded flow table's two-tier locks must
//! nest in one declared order.
//!
//! `ShardedFlowTable` holds per-shard mutexes plus one cross-shard
//! penalty-box mutex. The deadlock-free contract (documented on the
//! type): hold **at most one shard lock at a time**, and take the
//! penalty lock only **after** a shard lock — never the other way
//! around, and never two shard locks nested.
//!
//! This rule runs on the guard-lifetime dataflow ([`crate::dataflow`])
//! rather than the flat token stream, so it sees the cases the original
//! token engine missed: guards bound by destructuring (`let (idx, g) =
//! split_shard_guard(..)`), guards returned from `_guard`/`_lock`
//! helpers, early `drop()`, and moves into helper calls. Each
//! acquisition gets a tier from its method and receiver chain (`shard…`
//! → tier 0, `penalt…` → tier 1); an acquisition made while a guard of
//! an equal or higher tier is still live — or one the rule cannot
//! classify at all while any classified guard is live — is flagged.

use crate::dataflow::GuardRange;
use crate::rules::{Finding, Rule, RuleCtx};

pub struct FlowtableLockOrdering;

fn tier_name(tier: u8) -> &'static str {
    match tier {
        0 => "shard",
        _ => "penalty-box",
    }
}

/// Classify an acquisition: tier 0 for the shard mutexes, tier 1 for the
/// penalty box, `None` when neither the method nor the receiver names
/// either family.
fn tier_of(method: &str, receiver: &[String]) -> Option<u8> {
    let m = method.to_ascii_lowercase();
    if m.contains("shard") {
        return Some(0);
    }
    if m.contains("penalt") {
        return Some(1);
    }
    let lower: Vec<String> = receiver.iter().map(|s| s.to_ascii_lowercase()).collect();
    if lower.iter().any(|s| s.contains("shard")) {
        return Some(0);
    }
    if lower.iter().any(|s| s.contains("penalt")) {
        return Some(1);
    }
    None
}

fn range_tier(r: &GuardRange) -> Option<u8> {
    tier_of(&r.acq.method, &r.acq.receiver)
}

impl Rule for FlowtableLockOrdering {
    fn name(&self) -> &'static str {
        "flowtable-lock-ordering"
    }

    fn code(&self) -> &'static str {
        "LIB006"
    }

    fn explain(&self) -> &'static str {
        "crates/dpi and crates/netsim must acquire ShardedFlowTable locks in \
the declared order: at most one shard lock (.shard()/.shard_at()/a shards[..] \
.lock()/a *_guard helper) held at a time, and the cross-shard penalty-box \
lock only ever taken after — never before, never held across — a shard \
acquisition. The check runs on guard-lifetime dataflow, so destructured \
bindings, helper-returned guards, early drop(), and moves into helpers are \
all understood. Nested acquisitions in any other order (shard-under-shard, \
shard-under-penalty, or a lock this rule cannot classify while another guard \
is live) can deadlock two pool workers probing flows that hash to each \
other's shards. Keep guard scopes minimal, drop the shard guard before long \
work, and suppress a proven exception with \
`// lint: allow(flowtable-lock-ordering)`."
    }

    fn applies(&self, rel_path: &str) -> bool {
        (rel_path.starts_with("crates/dpi/") || rel_path.starts_with("crates/netsim/"))
            && !crate::rules::in_test_tree(rel_path)
    }

    fn check(&self, ctx: &RuleCtx<'_>) -> Vec<Finding> {
        let mut findings = Vec::new();
        for fg in ctx.guards {
            // Conservative cross-product pairing can give two ranges the
            // same underlying acquisition; report each hazard pair once.
            let mut seen: Vec<(usize, usize)> = Vec::new();
            for acq in &fg.acqs {
                if ctx.test_mask.get(acq.at).copied().unwrap_or(false) {
                    continue;
                }
                let tier = tier_of(&acq.method, &acq.receiver);
                for r in &fg.ranges {
                    if !r.live_at(acq.at) {
                        continue;
                    }
                    // A guard the rule cannot classify constrains nothing.
                    let Some(held_tier) = range_tier(r) else {
                        continue;
                    };
                    let ordered = tier.is_some_and(|t| t > held_tier);
                    if ordered || seen.contains(&(acq.at, r.acq.at)) {
                        continue;
                    }
                    seen.push((acq.at, r.acq.at));
                    let held_name = r.binding.as_deref().unwrap_or("<temporary>");
                    findings.push(Finding {
                        line: acq.line,
                        message: format!(
                            "`{}()` acquired while `{}` ({} guard from line {}) is \
still live; the declared order is one shard lock at a time, penalty box \
strictly after",
                            acq.method,
                            held_name,
                            tier_name(held_tier),
                            r.acq.line
                        ),
                        subject: Some(acq.method.clone()),
                    });
                }
            }
        }
        findings
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::run_rule;

    fn run(src: &str) -> Vec<Finding> {
        run_rule(&FlowtableLockOrdering, "crates/dpi/src/sharded.rs", src)
    }

    #[test]
    fn shard_then_penalty_is_the_declared_order() {
        let src = "fn f(&self) { let mut shard = table.shard(key); \
self.penalties.lock().record(k); }";
        assert!(run(src).is_empty());
    }

    #[test]
    fn nested_shard_locks_are_flagged() {
        let src = "fn f(&self) { let a = self.shards[0].lock(); \
let b = self.shards[1].lock(); }";
        let findings = run(src);
        assert_eq!(findings.len(), 1);
        assert!(findings[0].message.contains("one shard lock at a time"));
        assert!(findings[0].message.contains("`a`"));
    }

    #[test]
    fn penalty_before_shard_is_flagged() {
        let src = "fn f(&self) { let p = self.penalties.lock(); \
let s = table.shard(key); }";
        let findings = run(src);
        assert_eq!(findings.len(), 1);
        assert!(findings[0].message.contains("penalty-box guard"));
    }

    #[test]
    fn unclassifiable_lock_under_a_guard_is_flagged() {
        let src = "fn f(&self) { let s = table.shard(key); self.mystery.lock(); }";
        assert_eq!(run(src).len(), 1);
    }

    #[test]
    fn guard_scope_ends_at_closing_brace() {
        let src = "fn f(&self) { { let a = self.shards[0].lock(); } \
let b = self.shards[1].lock(); }";
        assert!(run(src).is_empty());
    }

    #[test]
    fn explicit_drop_releases_the_guard() {
        let src = "fn f(&self) { let a = self.shards[0].lock(); drop(a); \
let b = self.shards[1].lock(); }";
        assert!(run(src).is_empty());
    }

    #[test]
    fn transient_locks_with_nothing_held_pass() {
        let src = "fn f(&self) { self.shards.iter().map(|s| s.lock().len()).sum() }";
        assert!(run(src).is_empty());
    }

    #[test]
    fn test_masked_code_is_skipped() {
        let src = "#[cfg(test)] mod t { fn f() { let a = shards[0].lock(); \
let b = shards[1].lock(); } }";
        assert!(run(src).is_empty());
    }

    // --- cases the token engine provably missed ---

    #[test]
    fn destructured_helper_guard_ordering_violation_is_caught() {
        // The token engine only tracked `let <ident> = <acquirer>()`:
        // a guard arriving through tuple destructuring from a helper was
        // invisible, so the shard lock below went unflagged.
        let src = "fn f(&self) { let (idx, guard) = self.split_shard_guard(key); \
let other = self.shards[1].lock(); }";
        let findings = run(src);
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert!(findings[0].message.contains("shard guard"));
    }

    #[test]
    fn helper_returned_guard_ordering_violation_is_caught() {
        // `shard_guard()` is not `.lock()`/`.shard()`, so the token
        // engine never saw the guard it returns.
        let src = "fn f(&self) { let g = self.shard_guard(key); \
let s = self.shards[0].lock(); }";
        assert_eq!(run(src).len(), 1);
    }

    #[test]
    fn moved_guard_no_longer_constrains() {
        let src = "fn f(&self) { let s = table.shard(key); absorb(s); \
let t = table.shard(other); }";
        assert!(run(src).is_empty());
    }

    #[test]
    fn reborrowed_guard_still_constrains() {
        let src = "fn f(&self) { let s = table.shard(key); touch(&mut s); \
let t = table.shard(other); }";
        assert_eq!(run(src).len(), 1);
    }
}
