//! A lightweight Rust tokenizer: just enough lexical structure for the
//! rule engine, with comments and string/char literals stripped so that
//! prose like "never panics" or a `'#'` byte literal can't trip a rule.
//!
//! Comments are not discarded entirely: their text is scanned for
//! `lint: allow(<rule>)` annotations, the suppression mechanism every rule
//! honors.

/// One lexical atom. Identifiers and numbers arrive whole; punctuation is
/// one token per character (`=>` is `=` then `>`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    pub text: String,
    pub line: u32,
}

impl Token {
    pub fn is(&self, s: &str) -> bool {
        self.text == s
    }
}

/// A `lint: allow(rule)` or `lint: allow(rule: Detail)` annotation found
/// in a comment. `detail` narrows the suppression (e.g. one enum variant).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Allow {
    pub rule: String,
    pub detail: Option<String>,
    pub line: u32,
}

#[derive(Debug, Default)]
pub struct LexOutput {
    pub tokens: Vec<Token>,
    pub allows: Vec<Allow>,
}

fn is_ident_start(c: u8) -> bool {
    c.is_ascii_alphabetic() || c == b'_'
}

fn is_ident_continue(c: u8) -> bool {
    c.is_ascii_alphanumeric() || c == b'_'
}

/// Extract every `lint: allow(...)` annotation from a comment's text.
fn scan_comment(text: &str, line: u32, allows: &mut Vec<Allow>) {
    let mut rest = text;
    let mut line = line;
    let mut offset_line = 0u32;
    while let Some(pos) = rest.find("lint: allow(") {
        offset_line += rest[..pos].matches('\n').count() as u32;
        let after = &rest[pos + "lint: allow(".len()..];
        let Some(close) = after.find(')') else { break };
        let inner = &after[..close];
        let (rule, detail) = match inner.split_once(':') {
            Some((r, d)) => (r.trim().to_string(), Some(d.trim().to_string())),
            None => (inner.trim().to_string(), None),
        };
        if !rule.is_empty() {
            allows.push(Allow {
                rule,
                detail,
                line: line + offset_line,
            });
        }
        rest = &after[close..];
        line += 0; // line advances only via offset_line accounting above
    }
}

/// Tokenize `source`, stripping comments (mined for allow annotations),
/// string literals, char literals, and lifetimes.
pub fn lex(source: &str) -> LexOutput {
    let b = source.as_bytes();
    let mut out = LexOutput::default();
    let mut i = 0usize;
    let mut line = 1u32;

    macro_rules! push_tok {
        ($text:expr, $line:expr) => {
            out.tokens.push(Token {
                text: $text,
                line: $line,
            })
        };
    }

    while i < b.len() {
        let c = b[i];
        match c {
            b'\n' => {
                line += 1;
                i += 1;
            }
            c if c.is_ascii_whitespace() => i += 1,
            // Line comment (covers /// and //! doc comments).
            b'/' if b.get(i + 1) == Some(&b'/') => {
                let end = source[i..].find('\n').map_or(b.len(), |p| i + p);
                scan_comment(&source[i..end], line, &mut out.allows);
                i = end;
            }
            // Block comment, possibly nested.
            b'/' if b.get(i + 1) == Some(&b'*') => {
                let start = i;
                let start_line = line;
                let mut depth = 1usize;
                i += 2;
                while i < b.len() && depth > 0 {
                    if b[i] == b'\n' {
                        line += 1;
                        i += 1;
                    } else if b[i] == b'/' && b.get(i + 1) == Some(&b'*') {
                        depth += 1;
                        i += 2;
                    } else if b[i] == b'*' && b.get(i + 1) == Some(&b'/') {
                        depth -= 1;
                        i += 2;
                    } else {
                        i += 1;
                    }
                }
                scan_comment(&source[start..i], start_line, &mut out.allows);
            }
            // Raw / byte string prefixes and plain identifiers.
            c if is_ident_start(c) => {
                // r"...", r#"..."#, br"...", b"...", b'...'
                let rest = &b[i..];
                let (is_raw, prefix_len) = match rest {
                    [b'r', b'"' | b'#', ..] => (true, 1),
                    [b'b', b'r', b'"' | b'#', ..] => (true, 2),
                    [b'b', b'"', ..] => (false, 1),
                    [b'b', b'\'', ..] => {
                        // Byte char literal b'x'.
                        i += 2;
                        i = skip_char_literal_body(b, i, &mut line);
                        continue;
                    }
                    _ => (false, 0),
                };
                if is_raw {
                    i += prefix_len;
                    let mut hashes = 0usize;
                    while b.get(i) == Some(&b'#') {
                        hashes += 1;
                        i += 1;
                    }
                    if b.get(i) == Some(&b'"') {
                        i += 1;
                        // Scan for `"` followed by `hashes` hashes.
                        loop {
                            match b.get(i) {
                                None => break,
                                Some(b'\n') => {
                                    line += 1;
                                    i += 1;
                                }
                                Some(b'"')
                                    if b[i + 1..]
                                        .iter()
                                        .take(hashes)
                                        .filter(|&&h| h == b'#')
                                        .count()
                                        == hashes =>
                                {
                                    i += 1 + hashes;
                                    break;
                                }
                                Some(_) => i += 1,
                            }
                        }
                        continue;
                    }
                    // `r` or `br` not actually a raw string (e.g. ident
                    // `r#ident`); rewind and lex as identifier.
                    i -= prefix_len + hashes;
                } else if prefix_len == 1 {
                    // b"..."
                    i += 2;
                    i = skip_string_body(b, i, &mut line);
                    continue;
                }
                let start = i;
                while i < b.len() && is_ident_continue(b[i]) {
                    i += 1;
                }
                push_tok!(source[start..i].to_string(), line);
            }
            c if c.is_ascii_digit() => {
                let start = i;
                while i < b.len() && is_ident_continue(b[i]) {
                    i += 1;
                }
                push_tok!(source[start..i].to_string(), line);
            }
            b'"' => {
                i += 1;
                i = skip_string_body(b, i, &mut line);
            }
            b'\'' => {
                // Lifetime or char literal. A lifetime is `'` + ident not
                // closed by another `'` (so `'a` is a lifetime, `'a'` a char).
                let rest = &b[i + 1..];
                let looks_like_lifetime = rest.first().is_some_and(|&c| is_ident_start(c)) && {
                    let mut j = 1;
                    while rest.get(j).is_some_and(|&c| is_ident_continue(c)) {
                        j += 1;
                    }
                    rest.get(j) != Some(&b'\'')
                };
                if looks_like_lifetime {
                    i += 1;
                    while i < b.len() && is_ident_continue(b[i]) {
                        i += 1;
                    }
                } else {
                    i += 1;
                    i = skip_char_literal_body(b, i, &mut line);
                }
            }
            _ => {
                push_tok!((c as char).to_string(), line);
                i += 1;
            }
        }
    }
    out
}

fn skip_string_body(b: &[u8], mut i: usize, line: &mut u32) -> usize {
    while i < b.len() {
        match b[i] {
            b'\\' => i += 2,
            b'"' => return i + 1,
            b'\n' => {
                *line += 1;
                i += 1;
            }
            _ => i += 1,
        }
    }
    i
}

fn skip_char_literal_body(b: &[u8], mut i: usize, line: &mut u32) -> usize {
    while i < b.len() {
        match b[i] {
            b'\\' => i += 2,
            b'\'' => return i + 1,
            b'\n' => {
                *line += 1;
                i += 1;
            }
            _ => i += 1,
        }
    }
    i
}

#[cfg(test)]
mod tests {
    use super::*;

    fn texts(src: &str) -> Vec<String> {
        lex(src).tokens.into_iter().map(|t| t.text).collect()
    }

    #[test]
    fn strings_and_comments_are_stripped() {
        let toks = texts(r#"let x = "unwrap() inside a string"; // unwrap() in comment"#);
        assert_eq!(toks, vec!["let", "x", "=", ";"]);
    }

    #[test]
    fn raw_and_byte_strings_are_stripped() {
        let toks = texts(r##"f(r#"panic!("no")"#, b"expect(", b'#');"##);
        assert_eq!(toks, vec!["f", "(", ",", ",", ")", ";"]);
    }

    #[test]
    fn lifetimes_vs_char_literals() {
        let toks = texts("fn f<'a>(x: &'a str) -> char { 'x' }");
        assert!(toks.contains(&"str".to_string()));
        assert!(!toks.contains(&"x'".to_string()));
        // The char literal body is gone entirely.
        assert_eq!(toks.iter().filter(|t| *t == "x").count(), 1);
    }

    #[test]
    fn nested_block_comments() {
        let toks = texts("a /* outer /* inner */ still comment */ b");
        assert_eq!(toks, vec!["a", "b"]);
    }

    #[test]
    fn line_numbers_track_newlines() {
        let out = lex("a\nb\n\nc \"multi\nline\" d");
        let lines: Vec<(String, u32)> = out.tokens.into_iter().map(|t| (t.text, t.line)).collect();
        assert_eq!(
            lines,
            vec![
                ("a".into(), 1),
                ("b".into(), 2),
                ("c".into(), 4),
                ("d".into(), 5)
            ]
        );
    }

    #[test]
    fn allow_annotations_are_collected() {
        let out = lex(concat!(
            "// lint: allow(no-panic) invariant: caller checked\n",
            "fn f() {}\n",
            "// lint: allow(taxonomy-exhaustiveness: DummyPrefixData) not a row\n",
        ));
        assert_eq!(
            out.allows,
            vec![
                Allow {
                    rule: "no-panic".into(),
                    detail: None,
                    line: 1
                },
                Allow {
                    rule: "taxonomy-exhaustiveness".into(),
                    detail: Some("DummyPrefixData".into()),
                    line: 3
                },
            ]
        );
    }

    #[test]
    fn doc_comment_mentions_do_not_tokenize() {
        let toks = texts("//! let report = proxy.run().expect(\"works\");\nfn real() {}");
        assert_eq!(toks, vec!["fn", "real", "(", ")", "{", "}"]);
    }
}
