//! Diagnostics: the unit of lint output, plus plain-text and JSON
//! rendering. The JSON encoder is hand-rolled (string escaping only —
//! the payload is flat) to keep the crate dependency-free.

use std::fmt;

/// One finding: a rule violated at `file:line`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    pub rule: &'static str,
    /// Stable `LIBnnn` code for the rule; what CI diffs against.
    pub code: &'static str,
    /// Path relative to the workspace root, with `/` separators.
    pub file: String,
    pub line: u32,
    pub message: String,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{} {}] {}",
            self.file, self.line, self.code, self.rule, self.message
        )
    }
}

/// Escape a string for inclusion in a JSON document.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out
}

/// Render a diagnostic list as a machine-readable JSON report:
/// `{"count": N, "diagnostics": [{"rule": ..., "code": ..., "file": ...,
/// "line": N, "message": ...}, ...]}`.
pub fn to_json(diags: &[Diagnostic]) -> String {
    let mut out = String::new();
    out.push_str(&format!("{{\"count\":{},\"diagnostics\":[", diags.len()));
    for (i, d) in diags.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "{{\"rule\":\"{}\",\"code\":\"{}\",\"file\":\"{}\",\"line\":{},\"message\":\"{}\"}}",
            json_escape(d.rule),
            json_escape(d.code),
            json_escape(&d.file),
            d.line,
            json_escape(&d.message)
        ));
    }
    out.push_str("]}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_file_line_rule_message() {
        let d = Diagnostic {
            rule: "no-panic",
            code: "LIB004",
            file: "crates/core/src/socket.rs".into(),
            line: 42,
            message: "call to unwrap() outside tests".into(),
        };
        assert_eq!(
            d.to_string(),
            "crates/core/src/socket.rs:42: [LIB004 no-panic] call to unwrap() outside tests"
        );
    }

    #[test]
    fn json_report_shape() {
        let diags = vec![
            Diagnostic {
                rule: "determinism",
                code: "LIB003",
                file: "crates/netsim/src/link.rs".into(),
                line: 7,
                message: "SystemTime::now in simulated code".into(),
            },
            Diagnostic {
                rule: "no-panic",
                code: "LIB004",
                file: "a.rs".into(),
                line: 1,
                message: "quote \" and backslash \\".into(),
            },
        ];
        let json = to_json(&diags);
        assert!(json.starts_with("{\"count\":2,\"diagnostics\":["));
        assert!(json.contains("\"rule\":\"determinism\""));
        assert!(json.contains("\"code\":\"LIB003\""));
        assert!(json.contains("\"file\":\"crates/netsim/src/link.rs\""));
        assert!(json.contains("\"line\":7"));
        assert!(json.contains("quote \\\" and backslash \\\\"));
        assert!(json.ends_with("]}"));
    }

    #[test]
    fn empty_report() {
        assert_eq!(to_json(&[]), "{\"count\":0,\"diagnostics\":[]}");
    }
}
