//! liberate-lint: dependency-free domain-invariant static analysis for
//! the lib·erate workspace.
//!
//! The Rust compiler enforces memory safety; these rules enforce the
//! *paper's* invariants — the properties that make a differentiation
//! verdict or an evasion schedule trustworthy but that no type system
//! sees:
//!
//! - **checksum-repair** — byte-mutating fns repair TCP/IP checksums (or
//!   declare the corruption intentional).
//! - **taxonomy-exhaustiveness** — every `Technique` variant is handled
//!   in every Table 3 query fn, with no `_ =>` wildcards.
//! - **determinism** — no wall clock or ambient RNG in the simulator and
//!   DPI models.
//! - **no-panic** — library crates report errors via `LiberateError`,
//!   never by unwinding.
//! - **pcap-byte-order** — wire headers and pcap records are serialized
//!   via `to_be_bytes`/`to_le_bytes`, never hand-assembled with shifts.
//!
//! Suppression: `// lint: allow(<rule>)` within two lines above (or on)
//! the flagged line, or `// lint: allow(<rule>: <subject>)` anywhere in
//! the file to suppress findings about one named fn or variant.

pub mod diag;
pub mod items;
pub mod lexer;
pub mod rules;

use std::fs;
use std::path::{Path, PathBuf};

pub use diag::{to_json, Diagnostic};
use lexer::Allow;
use rules::{Rule, RuleCtx};

/// How many lines above a finding a detail-less allow annotation reaches.
const ALLOW_REACH_LINES: u32 = 2;

/// Lint a single source text as if it lived at `rel_path` in the
/// workspace. This is the unit the fixture tests drive.
pub fn lint_source(rel_path: &str, source: &str) -> Vec<Diagnostic> {
    lint_source_with(&rules::all(), rel_path, source)
}

fn lint_source_with(active: &[Box<dyn Rule>], rel_path: &str, source: &str) -> Vec<Diagnostic> {
    let lexed = lexer::lex(source);
    let mask = items::test_mask(&lexed.tokens);
    let ctx = RuleCtx {
        rel_path,
        tokens: &lexed.tokens,
        test_mask: &mask,
    };
    let mut out = Vec::new();
    for rule in active {
        if !rule.applies(rel_path) {
            continue;
        }
        for finding in rule.check(&ctx) {
            if suppressed(rule.name(), &finding, &lexed.allows) {
                continue;
            }
            out.push(Diagnostic {
                rule: rule.name(),
                file: rel_path.to_string(),
                line: finding.line,
                message: finding.message,
            });
        }
    }
    out
}

/// Does some allow annotation in the file cover this finding?
fn suppressed(rule: &str, finding: &rules::Finding, allows: &[Allow]) -> bool {
    allows.iter().any(|a| {
        if a.rule != rule {
            return false;
        }
        match (&a.detail, &finding.subject) {
            // Detail allows are file-wide but bind to one subject.
            (Some(detail), Some(subject)) => detail == subject,
            (Some(_), None) => false,
            // Point allows cover the annotated line and the next few,
            // so the comment sits directly above the flagged code.
            (None, _) => finding.line >= a.line && finding.line - a.line <= ALLOW_REACH_LINES,
        }
    })
}

/// Lint every `.rs` file of the workspace rooted at `root`.
///
/// Skips `target/`, `.git/`, and `vendor/` (registry stand-ins, not
/// workspace code). Diagnostics come back sorted by file, line, rule.
pub fn lint_workspace(root: &Path) -> Result<Vec<Diagnostic>, String> {
    let active = rules::all();
    let mut files = Vec::new();
    collect_rs_files(root, root, &mut files)?;
    files.sort();
    let mut out = Vec::new();
    for rel in files {
        // Cheap pre-filter: skip files no rule looks at.
        if !active.iter().any(|r| r.applies(&rel)) {
            continue;
        }
        let abs = root.join(&rel);
        let source = fs::read_to_string(&abs)
            .map_err(|e| format!("failed to read {}: {e}", abs.display()))?;
        out.extend(lint_source_with(&active, &rel, &source));
    }
    out.sort_by(|a, b| (a.file.as_str(), a.line, a.rule).cmp(&(b.file.as_str(), b.line, b.rule)));
    Ok(out)
}

const SKIP_DIRS: &[&str] = &["target", ".git", "vendor"];

fn collect_rs_files(root: &Path, dir: &Path, out: &mut Vec<String>) -> Result<(), String> {
    let entries =
        fs::read_dir(dir).map_err(|e| format!("failed to list {}: {e}", dir.display()))?;
    for entry in entries {
        let entry = entry.map_err(|e| format!("walk error under {}: {e}", dir.display()))?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if SKIP_DIRS.contains(&name.as_ref()) || name.starts_with('.') {
                continue;
            }
            collect_rs_files(root, &path, out)?;
        } else if name.ends_with(".rs") {
            out.push(rel_unix_path(root, &path));
        }
    }
    Ok(())
}

/// `root`-relative path with forward slashes, for stable diagnostics
/// across platforms.
fn rel_unix_path(root: &Path, path: &Path) -> String {
    let rel: PathBuf = path.strip_prefix(root).unwrap_or(path).to_path_buf();
    rel.components()
        .map(|c| c.as_os_str().to_string_lossy().into_owned())
        .collect::<Vec<_>>()
        .join("/")
}

/// Rationale text for `liberate-lint explain <rule>`, or `None` for an
/// unknown rule name.
pub fn explain(rule: &str) -> Option<String> {
    rules::all()
        .iter()
        .find(|r| r.name() == rule)
        .map(|r| r.explain().to_string())
}

/// The registered rule names, for `explain` error messages and docs.
pub fn rule_names() -> Vec<&'static str> {
    rules::all().iter().map(|r| r.name()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_has_the_eight_rules() {
        assert_eq!(
            rule_names(),
            vec![
                "checksum-repair",
                "taxonomy-exhaustiveness",
                "determinism",
                "flowtable-lock-ordering",
                "no-panic",
                "overhead-consistency",
                "pcap-byte-order",
                "simtime-monotonicity"
            ]
        );
        for name in rule_names() {
            let text = explain(name).expect("every rule explains itself");
            assert!(text.len() > 80, "{name} explanation too thin");
        }
        assert!(explain("not-a-rule").is_none());
    }

    #[test]
    fn point_allow_suppresses_nearby_finding() {
        let src = "\
// lint: allow(no-panic) contract: caller constructed the packet as TCP
fn tcp_mut(&mut self) { panic!(\"not tcp\") }

fn naked() {
    panic!(\"boom\")
}
";
        let diags = lint_source("crates/packet/src/packet.rs", src);
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert_eq!(diags[0].line, 5);
    }

    #[test]
    fn point_allow_does_not_reach_far() {
        let src = "// lint: allow(no-panic)\n\n\n\nfn f() { panic!() }\n";
        let diags = lint_source("crates/core/src/x.rs", src);
        assert_eq!(diags.len(), 1);
    }

    #[test]
    fn detail_allow_is_file_wide_but_subject_bound() {
        let src = "\
// lint: allow(checksum-repair: blind) deliberate corruption
fn other(w: &mut [u8]) { w[0] = 1; }
fn blind(w: &mut [u8]) { w.iter_mut().for_each(|b| *b = !*b); }
";
        let diags = lint_source("crates/packet/src/mutate.rs", src);
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert!(diags[0].message.contains("`other`"));
    }

    #[test]
    fn allow_for_wrong_rule_does_not_suppress() {
        let src = "// lint: allow(determinism)\nfn f() { panic!() }\n";
        let diags = lint_source("crates/core/src/x.rs", src);
        assert_eq!(diags.len(), 1);
    }

    #[test]
    fn out_of_scope_file_yields_nothing() {
        let diags = lint_source("crates/traces/src/lib.rs", "fn f() { panic!() }");
        assert!(diags.is_empty());
    }

    #[test]
    fn diagnostics_sort_stably_in_workspace_order() {
        // Two files via lint_source — ordering inside one file is by rule
        // registration; lint_workspace re-sorts globally. Here just check
        // the json round-trip shape on a real finding.
        let diags = lint_source(
            "crates/core/src/x.rs",
            "fn f(x: Option<u8>) { x.unwrap(); }",
        );
        let json = to_json(&diags);
        assert!(json.contains("\"count\":1"));
        assert!(json.contains("\"rule\":\"no-panic\""));
        assert!(json.contains("\"file\":\"crates/core/src/x.rs\""));
        assert!(json.contains("\"line\":1"));
    }
}
