//! liberate-lint: dependency-free domain-invariant static analysis for
//! the lib·erate workspace.
//!
//! The Rust compiler enforces memory safety; these rules enforce the
//! *paper's* invariants — the properties that make a differentiation
//! verdict or an evasion schedule trustworthy but that no type system
//! sees:
//!
//! - **checksum-repair** — byte-mutating fns repair TCP/IP checksums (or
//!   declare the corruption intentional).
//! - **taxonomy-exhaustiveness** — every `Technique` variant is handled
//!   in every Table 3 query fn, with no `_ =>` wildcards.
//! - **determinism** — no wall clock or ambient RNG in the simulator and
//!   DPI models.
//! - **no-panic** — library crates report errors via `LiberateError`,
//!   never by unwinding.
//! - **pcap-byte-order** — wire headers and pcap records are serialized
//!   via `to_be_bytes`/`to_le_bytes`, never hand-assembled with shifts.
//!
//! The concurrency pack (PR 6) runs on a statement-level IR with
//! guard-lifetime dataflow ([`ir`], [`dataflow`]) instead of flat token
//! windows:
//!
//! - **flowtable-lock-ordering** — shard/penalty-box locks nest in the
//!   declared order, now seeing destructured and helper-returned guards.
//! - **guard-across-blocking** — no lock guard live across `run_wave`,
//!   replay, JSONL export, or channel send/recv.
//! - **generation-discipline** — `PublishedState` generations written
//!   only by `publish` and compared only monotonically.
//! - **obs-coverage** — every journal event emission increments its
//!   paired metrics counter in the same function.
//!
//! Each rule also carries a stable `LIBnnn` code for CI diffing.
//!
//! Suppression: `// lint: allow(<rule>)` within two lines above (or on)
//! the flagged line, or `// lint: allow(<rule>: <subject>)` anywhere in
//! the file to suppress findings about one named fn or variant. An allow
//! that no longer suppresses anything is itself flagged (**unused-allow**,
//! the engine-level meta-check) so stale suppressions cannot rot in
//! place.

pub mod dataflow;
pub mod diag;
pub mod ir;
pub mod items;
pub mod lexer;
pub mod rules;

use std::fs;
use std::path::{Path, PathBuf};

pub use diag::{to_json, Diagnostic};
use lexer::Allow;
use rules::{Rule, RuleCtx};

/// How many lines above a finding a detail-less allow annotation reaches.
const ALLOW_REACH_LINES: u32 = 2;

/// Name and code of the engine-level meta-check for stale allows.
pub const UNUSED_ALLOW_RULE: &str = "unused-allow";
pub const UNUSED_ALLOW_CODE: &str = "LIB012";

/// Lint a single source text as if it lived at `rel_path` in the
/// workspace. This is the unit the fixture tests drive.
pub fn lint_source(rel_path: &str, source: &str) -> Vec<Diagnostic> {
    lint_source_with(&rules::all(), rel_path, source)
}

fn lint_source_with(active: &[Box<dyn Rule>], rel_path: &str, source: &str) -> Vec<Diagnostic> {
    let lexed = lexer::lex(source);
    let mask = items::test_mask(&lexed.tokens);
    let fn_ir = ir::lower(&lexed.tokens);
    let guards = dataflow::analyze(&lexed.tokens, &fn_ir);
    let ctx = RuleCtx {
        rel_path,
        tokens: &lexed.tokens,
        test_mask: &mask,
        ir: &fn_ir,
        guards: &guards,
    };
    let mut out = Vec::new();
    let mut used = vec![false; lexed.allows.len()];
    for rule in active {
        if !rule.applies(rel_path) {
            continue;
        }
        for finding in rule.check(&ctx) {
            if let Some(k) = suppressing_allow(rule.name(), &finding, &lexed.allows) {
                used[k] = true;
                continue;
            }
            out.push(Diagnostic {
                rule: rule.name(),
                code: rule.code(),
                file: rel_path.to_string(),
                line: finding.line,
                message: finding.message,
            });
        }
    }
    // Meta-check: an allow naming a registered rule that applies to this
    // file, yet suppressing nothing, is stale and must be deleted (or the
    // violation it once covered has returned elsewhere). Allows naming
    // unregistered rules are ignored — prose in doc comments may quote
    // the annotation syntax without being one.
    for (k, a) in lexed.allows.iter().enumerate() {
        if used[k] {
            continue;
        }
        let Some(rule) = active.iter().find(|r| r.name() == a.rule) else {
            continue;
        };
        if !rule.applies(rel_path) {
            continue;
        }
        let meta = rules::Finding {
            line: a.line,
            message: String::new(),
            subject: Some(a.rule.clone()),
        };
        if suppressing_allow(UNUSED_ALLOW_RULE, &meta, &lexed.allows).is_some() {
            continue;
        }
        out.push(Diagnostic {
            rule: UNUSED_ALLOW_RULE,
            code: UNUSED_ALLOW_CODE,
            file: rel_path.to_string(),
            line: a.line,
            message: format!(
                "allow({}{}) suppresses nothing; delete it or re-justify it",
                a.rule,
                a.detail
                    .as_deref()
                    .map(|d| format!(": {d}"))
                    .unwrap_or_default()
            ),
        });
    }
    out
}

/// The index of the allow annotation covering this finding, if any.
fn suppressing_allow(rule: &str, finding: &rules::Finding, allows: &[Allow]) -> Option<usize> {
    allows.iter().position(|a| {
        if a.rule != rule {
            return false;
        }
        match (&a.detail, &finding.subject) {
            // Detail allows are file-wide but bind to one subject.
            (Some(detail), Some(subject)) => detail == subject,
            (Some(_), None) => false,
            // Point allows cover the annotated line and the next few,
            // so the comment sits directly above the flagged code.
            (None, _) => finding.line >= a.line && finding.line - a.line <= ALLOW_REACH_LINES,
        }
    })
}

/// Lint every `.rs` file of the workspace rooted at `root`.
///
/// Skips `target/`, `.git/`, and `vendor/` (registry stand-ins, not
/// workspace code). Diagnostics come back sorted by file, line, rule.
pub fn lint_workspace(root: &Path) -> Result<Vec<Diagnostic>, String> {
    let active = rules::all();
    let mut files = Vec::new();
    collect_rs_files(root, root, &mut files)?;
    files.sort();
    let mut out = Vec::new();
    for rel in files {
        // Cheap pre-filter: skip files no rule looks at.
        if !active.iter().any(|r| r.applies(&rel)) {
            continue;
        }
        let abs = root.join(&rel);
        let source = fs::read_to_string(&abs)
            .map_err(|e| format!("failed to read {}: {e}", abs.display()))?;
        out.extend(lint_source_with(&active, &rel, &source));
    }
    out.sort_by(|a, b| (a.file.as_str(), a.line, a.rule).cmp(&(b.file.as_str(), b.line, b.rule)));
    Ok(out)
}

const SKIP_DIRS: &[&str] = &["target", ".git", "vendor"];

fn collect_rs_files(root: &Path, dir: &Path, out: &mut Vec<String>) -> Result<(), String> {
    let entries =
        fs::read_dir(dir).map_err(|e| format!("failed to list {}: {e}", dir.display()))?;
    for entry in entries {
        let entry = entry.map_err(|e| format!("walk error under {}: {e}", dir.display()))?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if SKIP_DIRS.contains(&name.as_ref()) || name.starts_with('.') {
                continue;
            }
            collect_rs_files(root, &path, out)?;
        } else if name.ends_with(".rs") {
            out.push(rel_unix_path(root, &path));
        }
    }
    Ok(())
}

/// `root`-relative path with forward slashes, for stable diagnostics
/// across platforms.
fn rel_unix_path(root: &Path, path: &Path) -> String {
    let rel: PathBuf = path.strip_prefix(root).unwrap_or(path).to_path_buf();
    rel.components()
        .map(|c| c.as_os_str().to_string_lossy().into_owned())
        .collect::<Vec<_>>()
        .join("/")
}

/// Rationale text for `liberate-lint explain <rule>`, or `None` for an
/// unknown rule name.
pub fn explain(rule: &str) -> Option<String> {
    if rule == UNUSED_ALLOW_RULE {
        return Some(
            "Engine-level meta-check: a `// lint: allow(<rule>)` annotation naming a registered rule that applies to its file must suppress at least one finding. An allow that suppresses nothing is stale — the violation it covered was fixed or moved — and stale allows are how real violations sneak back in unreviewed. Delete the annotation, or suppress the meta-check itself for a deliberately-kept annotation with `// lint: allow(unused-allow: <rule>)`."
                .to_string(),
        );
    }
    rules::all()
        .iter()
        .find(|r| r.name() == rule)
        .map(|r| r.explain().to_string())
}

/// The stable code for a rule name (`LIBnnn`), including the meta-check.
pub fn rule_code(rule: &str) -> Option<&'static str> {
    if rule == UNUSED_ALLOW_RULE {
        return Some(UNUSED_ALLOW_CODE);
    }
    rules::all()
        .iter()
        .find(|r| r.name() == rule)
        .map(|r| r.code())
}

/// The registered rule names, for `explain` error messages and docs.
pub fn rule_names() -> Vec<&'static str> {
    rules::all().iter().map(|r| r.name()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_has_the_fourteen_rules() {
        assert_eq!(
            rule_names(),
            vec![
                "checksum-repair",
                "taxonomy-exhaustiveness",
                "determinism",
                "flowtable-lock-ordering",
                "guard-across-blocking",
                "generation-discipline",
                "no-panic",
                "obs-coverage",
                "overhead-consistency",
                "payload-copy",
                "pcap-byte-order",
                "reactor-blocking",
                "simtime-monotonicity",
                "substrate-seam"
            ]
        );
        for name in rule_names() {
            let text = explain(name).expect("every rule explains itself");
            assert!(text.len() > 80, "{name} explanation too thin");
        }
        assert!(explain("not-a-rule").is_none());
        assert!(explain(UNUSED_ALLOW_RULE).is_some());
    }

    #[test]
    fn rule_codes_are_stable_and_unique() {
        let mut codes: Vec<&str> = rule_names()
            .iter()
            .map(|n| rule_code(n).expect("every rule has a code"))
            .collect();
        codes.push(rule_code(UNUSED_ALLOW_RULE).unwrap());
        assert_eq!(codes.len(), 15);
        let mut deduped = codes.clone();
        deduped.sort();
        deduped.dedup();
        assert_eq!(deduped.len(), codes.len(), "duplicate codes: {codes:?}");
        assert!(codes.iter().all(|c| c.starts_with("LIB") && c.len() == 6));
        assert_eq!(rule_code("flowtable-lock-ordering"), Some("LIB006"));
        assert_eq!(rule_code("not-a-rule"), None);
    }

    #[test]
    fn unused_allow_is_flagged() {
        // The allow names a registered, applicable rule but nothing in
        // the file violates it.
        let src = "// lint: allow(no-panic)\nfn fine() -> u8 { 1 }\n";
        let diags = lint_source("crates/core/src/x.rs", src);
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert_eq!(diags[0].rule, "unused-allow");
        assert_eq!(diags[0].code, "LIB012");
        assert_eq!(diags[0].line, 1);
    }

    #[test]
    fn used_allow_is_not_flagged() {
        let src = "// lint: allow(no-panic) contract: caller checked\n\
fn f() { panic!() }\n";
        let diags = lint_source("crates/core/src/x.rs", src);
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn allow_for_inapplicable_rule_is_not_meta_flagged() {
        // pcap-byte-order does not scan crates/core, so an allow naming
        // it there is inert prose, not a stale suppression.
        let src = "// lint: allow(pcap-byte-order)\nfn fine() -> u8 { 1 }\n";
        let diags = lint_source("crates/core/src/x.rs", src);
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn allow_for_unregistered_rule_is_ignored() {
        // Doc prose quoting the annotation syntax must not trip the
        // meta-check (tests/lint_gate.rs quotes `lint: allow(<rule>)`).
        let src = "// lint: allow(<rule>)\nfn fine() -> u8 { 1 }\n";
        let diags = lint_source("crates/core/src/x.rs", src);
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn unused_allow_can_itself_be_allowed() {
        let src = "// lint: allow(unused-allow: no-panic) kept for the template\n\
// lint: allow(no-panic)\nfn fine() -> u8 { 1 }\n";
        let diags = lint_source("crates/core/src/x.rs", src);
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn point_allow_suppresses_nearby_finding() {
        let src = "\
// lint: allow(no-panic) contract: caller constructed the packet as TCP
fn tcp_mut(&mut self) { panic!(\"not tcp\") }

fn naked() {
    panic!(\"boom\")
}
";
        let diags = lint_source("crates/packet/src/packet.rs", src);
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert_eq!(diags[0].line, 5);
    }

    #[test]
    fn point_allow_does_not_reach_far() {
        let src = "// lint: allow(no-panic)\n\n\n\nfn f() { panic!() }\n";
        let diags = lint_source("crates/core/src/x.rs", src);
        // The panic is reported AND the out-of-reach allow is now stale.
        assert_eq!(diags.len(), 2, "{diags:?}");
        assert!(diags.iter().any(|d| d.rule == "no-panic" && d.line == 5));
        assert!(diags
            .iter()
            .any(|d| d.rule == "unused-allow" && d.line == 1));
    }

    #[test]
    fn detail_allow_is_file_wide_but_subject_bound() {
        let src = "\
// lint: allow(checksum-repair: blind) deliberate corruption
fn other(w: &mut [u8]) { w[0] = 1; }
fn blind(w: &mut [u8]) { w.iter_mut().for_each(|b| *b = !*b); }
";
        let diags = lint_source("crates/packet/src/mutate.rs", src);
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert!(diags[0].message.contains("`other`"));
    }

    #[test]
    fn allow_for_wrong_rule_does_not_suppress() {
        let src = "// lint: allow(determinism)\nfn f() { panic!() }\n";
        let diags = lint_source("crates/core/src/x.rs", src);
        assert_eq!(diags.len(), 1);
    }

    #[test]
    fn out_of_scope_file_yields_nothing() {
        let diags = lint_source("crates/traces/src/lib.rs", "fn f() { panic!() }");
        assert!(diags.is_empty());
    }

    #[test]
    fn diagnostics_sort_stably_in_workspace_order() {
        // Two files via lint_source — ordering inside one file is by rule
        // registration; lint_workspace re-sorts globally. Here just check
        // the json round-trip shape on a real finding.
        let diags = lint_source(
            "crates/core/src/x.rs",
            "fn f(x: Option<u8>) { x.unwrap(); }",
        );
        let json = to_json(&diags);
        assert!(json.contains("\"count\":1"));
        assert!(json.contains("\"rule\":\"no-panic\""));
        assert!(json.contains("\"file\":\"crates/core/src/x.rs\""));
        assert!(json.contains("\"line\":1"));
    }
}
