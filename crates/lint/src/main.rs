//! CLI for the lib·erate domain linter.
//!
//! ```text
//! liberate-lint [--root <dir>] [--json] [--rule <name|code>]...
//!                                         lint the workspace
//! liberate-lint explain <rule>            print a rule's rationale
//! liberate-lint --list                    list registered rules + codes
//! ```
//!
//! `--rule` filters the *output* to one or more rules (by name or LIBnnn
//! code, repeatable); the full engine still runs, so the unused-allow
//! meta-check keeps seeing every rule's suppressions.
//!
//! Exit codes (script-stable): 0 = clean, 1 = diagnostics found,
//! 2 = internal error (bad usage, unreadable tree, unknown rule).

use std::path::PathBuf;
use std::process::ExitCode;

use liberate_lint::{explain, lint_workspace, rule_code, rule_names, to_json, UNUSED_ALLOW_RULE};

const USAGE: &str = "usage: liberate-lint [--root <dir>] [--json] [--rule <name|code>]...
       liberate-lint explain <rule>
       liberate-lint --list";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut root = PathBuf::from(".");
    let mut json = false;
    let mut explain_rule: Option<String> = None;
    let mut rule_filter: Vec<String> = Vec::new();

    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--json" => json = true,
            "--root" => match it.next() {
                Some(dir) => root = PathBuf::from(dir),
                None => return usage_error("--root needs a directory"),
            },
            "--rule" => match it.next() {
                Some(rule) => match resolve_rule(rule) {
                    Some(name) => rule_filter.push(name),
                    None => {
                        eprintln!(
                            "liberate-lint: unknown rule {rule:?}; known rules: {}",
                            known_rules().join(", ")
                        );
                        return ExitCode::from(2);
                    }
                },
                None => return usage_error("--rule needs a rule name or LIBnnn code"),
            },
            "--list" => {
                for name in known_rules() {
                    println!("{} {name}", rule_code(name).unwrap_or("??????"));
                }
                return ExitCode::SUCCESS;
            }
            "explain" | "--explain" => match it.next() {
                Some(rule) => explain_rule = Some(rule.clone()),
                None => return usage_error("explain needs a rule name"),
            },
            "--help" | "-h" => {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other => return usage_error(&format!("unknown argument {other:?}")),
        }
    }

    if let Some(rule) = explain_rule {
        let name = resolve_rule(&rule);
        return match name.as_deref().and_then(explain) {
            Some(text) => {
                println!("{} [{}]\n\n{text}", name.as_deref().unwrap_or(&rule), {
                    name.as_deref().and_then(rule_code).unwrap_or("??????")
                });
                ExitCode::SUCCESS
            }
            None => {
                eprintln!(
                    "liberate-lint: unknown rule {rule:?}; known rules: {}",
                    known_rules().join(", ")
                );
                ExitCode::from(2)
            }
        };
    }

    match lint_workspace(&root) {
        Ok(mut diags) => {
            if !rule_filter.is_empty() {
                diags.retain(|d| rule_filter.iter().any(|r| r == d.rule));
            }
            if json {
                println!("{}", to_json(&diags));
            } else {
                for d in &diags {
                    println!("{d}");
                }
                if diags.is_empty() {
                    eprintln!("liberate-lint: clean");
                } else {
                    eprintln!("liberate-lint: {} diagnostic(s)", diags.len());
                }
            }
            if diags.is_empty() {
                ExitCode::SUCCESS
            } else {
                ExitCode::from(1)
            }
        }
        Err(e) => {
            eprintln!("liberate-lint: {e}");
            ExitCode::from(2)
        }
    }
}

/// Every rule a user can name: the registry plus the engine meta-check.
fn known_rules() -> Vec<&'static str> {
    let mut names = rule_names();
    names.push(UNUSED_ALLOW_RULE);
    names
}

fn usage_error(msg: &str) -> ExitCode {
    eprintln!("liberate-lint: {msg}\n{USAGE}");
    ExitCode::from(2)
}

/// Accept a rule by kebab-case name or by `LIBnnn` code (case-insensitive
/// on the code); returns the canonical name.
fn resolve_rule(arg: &str) -> Option<String> {
    let upper = arg.to_ascii_uppercase();
    for name in known_rules() {
        if name == arg {
            return Some(name.to_string());
        }
        if rule_code(name) == Some(upper.as_str()) {
            return Some(name.to_string());
        }
    }
    None
}
