//! CLI for the lib·erate domain linter.
//!
//! ```text
//! liberate-lint [--root <dir>] [--json]   lint the workspace
//! liberate-lint explain <rule>            print a rule's rationale
//! liberate-lint --list                    list registered rules
//! ```
//!
//! Exit codes (script-stable): 0 = clean, 1 = diagnostics found,
//! 2 = internal error (bad usage, unreadable tree, unknown rule).

use std::path::PathBuf;
use std::process::ExitCode;

use liberate_lint::{explain, lint_workspace, rule_names, to_json};

const USAGE: &str = "usage: liberate-lint [--root <dir>] [--json]
       liberate-lint explain <rule>
       liberate-lint --list";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut root = PathBuf::from(".");
    let mut json = false;
    let mut explain_rule: Option<String> = None;

    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--json" => json = true,
            "--root" => match it.next() {
                Some(dir) => root = PathBuf::from(dir),
                None => return usage_error("--root needs a directory"),
            },
            "--list" => {
                for name in rule_names() {
                    println!("{name}");
                }
                return ExitCode::SUCCESS;
            }
            "explain" | "--explain" => match it.next() {
                Some(rule) => explain_rule = Some(rule.clone()),
                None => return usage_error("explain needs a rule name"),
            },
            "--help" | "-h" => {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other => return usage_error(&format!("unknown argument {other:?}")),
        }
    }

    if let Some(rule) = explain_rule {
        return match explain(&rule) {
            Some(text) => {
                println!("{rule}\n\n{text}");
                ExitCode::SUCCESS
            }
            None => {
                eprintln!(
                    "liberate-lint: unknown rule {rule:?}; known rules: {}",
                    rule_names().join(", ")
                );
                ExitCode::from(2)
            }
        };
    }

    match lint_workspace(&root) {
        Ok(diags) => {
            if json {
                println!("{}", to_json(&diags));
            } else {
                for d in &diags {
                    println!("{d}");
                }
                if diags.is_empty() {
                    eprintln!("liberate-lint: clean");
                } else {
                    eprintln!("liberate-lint: {} diagnostic(s)", diags.len());
                }
            }
            if diags.is_empty() {
                ExitCode::SUCCESS
            } else {
                ExitCode::from(1)
            }
        }
        Err(e) => {
            eprintln!("liberate-lint: {e}");
            ExitCode::from(2)
        }
    }
}

fn usage_error(msg: &str) -> ExitCode {
    eprintln!("liberate-lint: {msg}\n{USAGE}");
    ExitCode::from(2)
}
