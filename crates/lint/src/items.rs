//! Structural views over the token stream: `#[cfg(test)]` masking,
//! function spans, and enum variant lists. Token-based, so it tolerates
//! any formatting, but it is deliberately not a full parser — the rules
//! only need to know *which function* and *whether test code*.

use crate::lexer::Token;

/// Token-index span of one `fn`, signature through closing brace.
#[derive(Debug, Clone)]
pub struct FnSpan {
    pub name: String,
    pub line: u32,
    /// Index of the `fn` keyword token.
    pub start: usize,
    /// Index of the token after the body's closing `}` (exclusive).
    /// For bodyless declarations (trait methods), the token after `;`.
    pub end: usize,
    /// Index of the body's opening `{`, if there is a body.
    pub body_start: Option<usize>,
}

/// Per-token flag: true when the token sits inside an item gated by
/// `#[cfg(test)]` (a `mod tests { .. }` block or a test-only fn).
pub fn test_mask(tokens: &[Token]) -> Vec<bool> {
    let mut mask = vec![false; tokens.len()];
    let mut i = 0;
    while i < tokens.len() {
        if is_cfg_test_attr(tokens, i) {
            let attr_start = i;
            // Skip this attribute and any that follow (e.g. #[test], #[allow]).
            let mut j = skip_attr(tokens, i);
            while j < tokens.len() && tokens[j].is("#") {
                j = skip_attr(tokens, j);
            }
            // Mask through the item's brace block, or to `;` for
            // brace-less items (`#[cfg(test)] use ...;`).
            let mut k = j;
            while k < tokens.len() && !tokens[k].is("{") && !tokens[k].is(";") {
                k += 1;
            }
            let end = if k < tokens.len() && tokens[k].is("{") {
                matching_brace(tokens, k)
            } else {
                k + 1
            };
            for m in mask.iter_mut().take(end.min(tokens.len())).skip(attr_start) {
                *m = true;
            }
            i = end;
        } else {
            i += 1;
        }
    }
    mask
}

/// Does an attribute starting at `i` (the `#` token) contain `cfg` ... `test`?
fn is_cfg_test_attr(tokens: &[Token], i: usize) -> bool {
    if !tokens[i].is("#") || !tokens.get(i + 1).is_some_and(|t| t.is("[")) {
        return false;
    }
    let end = skip_attr(tokens, i);
    let body = &tokens[i + 2..end.saturating_sub(1).max(i + 2)];
    body.iter().any(|t| t.is("cfg")) && body.iter().any(|t| t.is("test"))
}

/// Given `i` at a `#` token, return the index just past the attribute's
/// closing `]`.
fn skip_attr(tokens: &[Token], i: usize) -> usize {
    let mut j = i + 1;
    if !tokens.get(j).is_some_and(|t| t.is("[")) {
        return i + 1;
    }
    let mut depth = 0usize;
    while j < tokens.len() {
        if tokens[j].is("[") {
            depth += 1;
        } else if tokens[j].is("]") {
            depth -= 1;
            if depth == 0 {
                return j + 1;
            }
        }
        j += 1;
    }
    j
}

/// Given `i` at a `{` token, return the index just past its matching `}`.
pub(crate) fn matching_brace(tokens: &[Token], i: usize) -> usize {
    let mut depth = 0usize;
    let mut j = i;
    while j < tokens.len() {
        if tokens[j].is("{") {
            depth += 1;
        } else if tokens[j].is("}") {
            depth -= 1;
            if depth == 0 {
                return j + 1;
            }
        }
        j += 1;
    }
    j
}

/// Every `fn` in the token stream, with body spans resolved.
pub fn fn_spans(tokens: &[Token]) -> Vec<FnSpan> {
    let mut spans = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        if tokens[i].is("fn") {
            let Some(name_tok) = tokens.get(i + 1) else {
                break;
            };
            let name = name_tok.text.clone();
            // Find the body `{` or terminating `;`. Signatures contain no
            // braces, so the first of either ends the signature.
            let mut j = i + 2;
            while j < tokens.len() && !tokens[j].is("{") && !tokens[j].is(";") {
                j += 1;
            }
            let (end, body_start) = if j < tokens.len() && tokens[j].is("{") {
                (matching_brace(tokens, j), Some(j))
            } else {
                (j + 1, None)
            };
            spans.push(FnSpan {
                name,
                line: tokens[i].line,
                start: i,
                end,
                body_start,
            });
            // Nested fns are rare and harmless to re-report; step past the
            // signature only so nested bodies are still scanned.
            i += 2;
        } else {
            i += 1;
        }
    }
    spans
}

/// The variant names (with declaration lines) of `enum <name> { ... }`.
pub fn enum_variants(tokens: &[Token], name: &str) -> Vec<(String, u32)> {
    let mut variants = Vec::new();
    let mut i = 0;
    while i + 2 < tokens.len() {
        if tokens[i].is("enum") && tokens[i + 1].is(name) && tokens[i + 2].is("{") {
            let end = matching_brace(tokens, i + 2);
            let mut j = i + 3;
            let mut expect_variant = true;
            while j < end.saturating_sub(1) {
                let t = &tokens[j];
                if t.is("#") {
                    j = skip_attr(tokens, j);
                    continue;
                }
                if expect_variant {
                    variants.push((t.text.clone(), t.line));
                    expect_variant = false;
                    j += 1;
                    continue;
                }
                // Skip the variant's payload/discriminant to the next
                // top-level comma.
                match t.text.as_str() {
                    "{" => j = matching_brace(tokens, j),
                    "(" => {
                        let mut depth = 0usize;
                        while j < end {
                            if tokens[j].is("(") {
                                depth += 1;
                            } else if tokens[j].is(")") {
                                depth -= 1;
                                if depth == 0 {
                                    j += 1;
                                    break;
                                }
                            }
                            j += 1;
                        }
                    }
                    "," => {
                        expect_variant = true;
                        j += 1;
                    }
                    _ => j += 1,
                }
            }
            return variants;
        }
        i += 1;
    }
    variants
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    const SRC: &str = r#"
pub fn live() -> u8 { 1 }

#[cfg(test)]
mod tests {
    #[test]
    fn gated() { assert_eq!(super::live(), 1); }
}

pub fn also_live(x: Option<u8>) -> u8 { x.map(|v| v + 1).unwrap_or(0) }

#[cfg(test)]
#[allow(dead_code)]
fn test_helper() {}
"#;

    #[test]
    fn mask_covers_test_items_only() {
        let out = lex(SRC);
        let mask = test_mask(&out.tokens);
        for (tok, &masked) in out.tokens.iter().zip(&mask) {
            match tok.text.as_str() {
                "gated" | "test_helper" | "assert_eq" => assert!(masked, "{}", tok.text),
                "live" if tok.line == 2 => assert!(!masked),
                "also_live" => assert!(!masked),
                _ => {}
            }
        }
    }

    #[test]
    fn fn_spans_find_names_and_bodies() {
        let out = lex(SRC);
        let spans = fn_spans(&out.tokens);
        let names: Vec<&str> = spans.iter().map(|s| s.name.as_str()).collect();
        assert_eq!(names, vec!["live", "gated", "also_live", "test_helper"]);
        assert!(spans.iter().all(|s| s.body_start.is_some()));
        // `live`'s body must not swallow the next fn.
        let live = &spans[0];
        assert!(out.tokens[live.start..live.end]
            .iter()
            .all(|t| !t.is("gated")));
    }

    #[test]
    fn trait_method_without_body() {
        let out = lex("trait T { fn decl(&self) -> u8; } fn after() {}");
        let spans = fn_spans(&out.tokens);
        assert_eq!(spans[0].name, "decl");
        assert!(spans[0].body_start.is_none());
        assert_eq!(spans[1].name, "after");
    }

    #[test]
    fn enum_variants_with_payloads() {
        let src = r#"
#[derive(Debug)]
pub enum Technique {
    InertLowTtl,
    TcpSegmentSplit { segments: usize },
    PauseAfterMatch(f64),
    #[doc(hidden)]
    DummyPrefixData { bytes: usize },
}
"#;
        let out = lex(src);
        let names: Vec<String> = enum_variants(&out.tokens, "Technique")
            .into_iter()
            .map(|(n, _)| n)
            .collect();
        assert_eq!(
            names,
            vec![
                "InertLowTtl",
                "TcpSegmentSplit",
                "PauseAfterMatch",
                "DummyPrefixData"
            ]
        );
    }

    #[test]
    fn other_enums_are_not_matched() {
        let out = lex("enum Other { A, B } enum Technique { X }");
        let names: Vec<String> = enum_variants(&out.tokens, "Technique")
            .into_iter()
            .map(|(n, _)| n)
            .collect();
        assert_eq!(names, vec!["X"]);
    }
}
