//! Guard-lifetime dataflow over the statement IR.
//!
//! For each function, finds every lock-guard *acquisition* — a
//! zero-argument `.lock()`/`.read()`/`.write()` (Mutex/RwLock guards take
//! no arguments, which cleanly separates them from `io::Read::read` and
//! friends), a `.shard()`/`.shard_at()` call on the sharded flow table,
//! or a helper call whose name ends in `_guard`/`_lock` (the
//! returned-from-helper case the token engine could not see) — and
//! computes the token range over which the resulting guard is *live*:
//!
//! - a `let`-bound guard lives from its acquisition until an explicit
//!   `drop(name)`, a by-value move into a call (`absorb(guard)`), a
//!   move out of the block as its trailing value, or the closing `}` of
//!   its scope;
//! - a temporary (no `let`) lives to the end of its statement;
//! - a reborrow (`helper(&guard)`, `helper(&mut guard)`) does **not**
//!   end the range — the guard comes back;
//! - shadowing (`let g = a.lock(); let g = b.lock();`) does **not** end
//!   the first range either: Rust keeps the shadowed guard alive to
//!   scope end, which is exactly the double-lock hazard the rules exist
//!   to catch. Once a binding is shadowed, later `drop`/move mentions
//!   refer to the new binding, so the scan for the old range stops and
//!   the range runs to scope end.
//!
//! Rules decide what a guard *means* (shard tier vs penalty tier vs any
//! blocking-sensitive guard); this module only answers "what is live
//! where".

use crate::ir::{pattern_bindings, Block, FnIr, Stmt};
use crate::lexer::Token;

/// Guard-returning methods with a zero-argument signature.
const BARE_ACQUIRERS: &[&str] = &["lock", "read", "write"];
/// Guard-returning methods that take arguments (sharded flow table API).
const ARG_ACQUIRERS: &[&str] = &["shard", "shard_at"];

/// One guard acquisition site.
#[derive(Debug, Clone)]
pub struct Acq {
    /// The acquiring method or helper-fn name.
    pub method: String,
    /// Receiver chain identifiers, innermost first (`self.table.lock()`
    /// yields `["table", "self"]`). Empty for bare helper calls.
    pub receiver: Vec<String>,
    /// Token index of the method/helper name.
    pub at: usize,
    pub line: u32,
}

/// How a guard's live range ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Release {
    /// `drop(name)`.
    Dropped,
    /// Moved by value into a call or out of the block.
    Moved,
    /// The enclosing scope's `}` (or the scan stopped at a shadowing
    /// rebind of the same name).
    ScopeEnd,
    /// A temporary: the guard never outlived its statement.
    StatementEnd,
}

/// The live range of one acquired guard.
#[derive(Debug, Clone)]
pub struct GuardRange {
    pub acq: Acq,
    /// The `let` binding holding the guard; `None` for temporaries.
    pub binding: Option<String>,
    /// First token index at which the guard is live (the acquisition).
    pub start: usize,
    /// Exclusive token index at which the guard is no longer live.
    pub end: usize,
    pub released: Release,
}

impl GuardRange {
    /// Is the guard live at token index `i` (excluding its own
    /// acquisition token)?
    pub fn live_at(&self, i: usize) -> bool {
        self.start < i && i < self.end
    }
}

/// Per-function guard analysis.
#[derive(Debug)]
pub struct FnGuards {
    pub fn_name: String,
    pub fn_line: u32,
    /// Every acquisition in the function, in token order.
    pub acqs: Vec<Acq>,
    /// Live ranges (let-bound and temporary), in acquisition order.
    pub ranges: Vec<GuardRange>,
    /// Token spans of fns nested inside this one — different stack
    /// frames, skipped by lifetime scans.
    nested: Vec<(usize, usize)>,
}

impl FnGuards {
    pub fn in_nested_fn(&self, i: usize) -> bool {
        self.nested.iter().any(|&(s, e)| s <= i && i < e)
    }
}

/// Analyze every function in the file.
pub fn analyze(tokens: &[Token], fns: &[FnIr]) -> Vec<FnGuards> {
    fns.iter()
        .filter(|f| f.body.is_some())
        .map(|f| analyze_fn(tokens, fns, f))
        .collect()
}

fn analyze_fn(tokens: &[Token], all: &[FnIr], f: &FnIr) -> FnGuards {
    let nested: Vec<(usize, usize)> = all
        .iter()
        .filter(|g| g.start > f.start && g.end <= f.end)
        .map(|g| (g.start, g.end))
        .collect();
    let mut out = FnGuards {
        fn_name: f.name.clone(),
        fn_line: f.line,
        acqs: Vec::new(),
        ranges: Vec::new(),
        nested,
    };
    if let Some(body) = &f.body {
        walk_block(tokens, body, &mut out);
    }
    out.acqs.sort_by_key(|a| a.at);
    out.ranges.sort_by_key(|r| r.start);
    out
}

fn walk_block(tokens: &[Token], block: &Block, out: &mut FnGuards) {
    for stmt in &block.stmts {
        // Acquisitions at this statement's own level (tokens inside the
        // statement's nested blocks are found when walking those blocks).
        let acqs = stmt_level_acqs(tokens, stmt, out);
        if !acqs.is_empty() {
            if stmt.bindings.is_empty() {
                for acq in &acqs {
                    out.ranges.push(GuardRange {
                        acq: acq.clone(),
                        binding: None,
                        start: acq.at,
                        end: stmt.end,
                        released: Release::StatementEnd,
                    });
                }
            } else if stmt.bindings.len() == acqs.len() {
                // Positional pairing: `let (a, b) = (x.lock(), y.lock())`.
                for (b, acq) in stmt.bindings.iter().zip(&acqs) {
                    push_bound_range(tokens, out, stmt, block, &b.name, acq);
                }
            } else {
                // Counts differ (e.g. one acquisition destructured into
                // several names, or several acquisitions folded into one
                // binding): every name conservatively holds every guard.
                for b in &stmt.bindings {
                    for acq in &acqs {
                        push_bound_range(tokens, out, stmt, block, &b.name, acq);
                    }
                }
            }
        }
        out.acqs.extend(acqs);
        for inner in &stmt.blocks {
            walk_block(tokens, inner, out);
        }
    }
}

/// Find acquisitions in `stmt`'s tokens, excluding nested-block spans and
/// nested-fn spans.
fn stmt_level_acqs(tokens: &[Token], stmt: &Stmt, ctx: &FnGuards) -> Vec<Acq> {
    let mut acqs = Vec::new();
    let mut i = stmt.start;
    while i < stmt.end.min(tokens.len()) {
        if let Some(b) = stmt.blocks.iter().find(|b| b.start <= i && i < b.end) {
            i = b.end;
            continue;
        }
        if ctx.in_nested_fn(i) {
            i += 1;
            continue;
        }
        if let Some(acq) = acquisition_at(tokens, i) {
            acqs.push(acq);
        }
        i += 1;
    }
    acqs
}

/// Is the token at `i` the method/helper name of a guard acquisition?
fn acquisition_at(tokens: &[Token], i: usize) -> Option<Acq> {
    let t = tokens.get(i)?;
    if !tokens.get(i + 1).is_some_and(|n| n.is("(")) {
        return None;
    }
    // Definitions are not acquisitions.
    if i > 0 && tokens[i - 1].is("fn") {
        return None;
    }
    let name = t.text.as_str();
    let is_method = i > 0 && tokens[i - 1].is(".");
    let bare_hit = BARE_ACQUIRERS.contains(&name) && tokens.get(i + 2).is_some_and(|n| n.is(")"));
    let arg_hit = ARG_ACQUIRERS.contains(&name);
    let helper_hit = name.ends_with("_guard") || name.ends_with("_lock");
    let hit = if is_method {
        bare_hit || arg_hit || helper_hit
    } else {
        // Bare helper call (`grab_shard_guard(...)`).
        helper_hit
    };
    if !hit {
        return None;
    }
    let receiver = if is_method && i >= 2 {
        receiver_idents(tokens, i - 2)
    } else {
        Vec::new()
    };
    Some(Acq {
        method: t.text.clone(),
        receiver,
        at: i,
        line: t.line,
    })
}

/// Walk the receiver chain backwards from `end` (the token before the
/// method's `.`), collecting the idents of e.g. `self.shards[idx]` while
/// skipping balanced `[...]` / `(...)` groups.
pub fn receiver_idents(toks: &[Token], end: usize) -> Vec<String> {
    let mut idents = Vec::new();
    let mut i = end as isize;
    while i >= 0 {
        let t = &toks[i as usize];
        if t.is("]") || t.is(")") {
            let (open, close) = if t.is("]") { ("[", "]") } else { ("(", ")") };
            let mut balance = 1i32;
            i -= 1;
            while i >= 0 && balance > 0 {
                if toks[i as usize].is(close) {
                    balance += 1;
                } else if toks[i as usize].is(open) {
                    balance -= 1;
                }
                i -= 1;
            }
            continue;
        }
        let is_ident = t
            .text
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || c == '_')
            && !t.text.is_empty();
        if !is_ident {
            break;
        }
        idents.push(t.text.clone());
        // Continue through a field chain (`self.table.`); stop otherwise.
        if i >= 1 && toks[i as usize - 1].is(".") {
            i -= 2;
        } else {
            break;
        }
    }
    idents
}

fn push_bound_range(
    tokens: &[Token],
    out: &mut FnGuards,
    stmt: &Stmt,
    block: &Block,
    name: &str,
    acq: &Acq,
) {
    let (end, released) = release_point(tokens, out, name, stmt.end, block);
    out.ranges.push(GuardRange {
        acq: acq.clone(),
        binding: Some(name.to_string()),
        start: acq.at,
        end,
        released,
    });
}

/// Scan forward from `from` to the enclosing block's `}` for the event
/// that releases the binding `name`.
fn release_point(
    tokens: &[Token],
    ctx: &FnGuards,
    name: &str,
    from: usize,
    block: &Block,
) -> (usize, Release) {
    let scope_close = block.end.saturating_sub(1); // index of `}`
    let mut i = from;
    while i < scope_close {
        if ctx.in_nested_fn(i) {
            i += 1;
            continue;
        }
        let t = &tokens[i];
        // A shadowing `let` rebinds the name: later mentions refer to the
        // new binding, and the old guard stays alive to scope end.
        if t.is("let") {
            let mut eq = i + 1;
            let mut depth = 0i32;
            while eq < scope_close {
                match tokens[eq].text.as_str() {
                    "(" | "[" | "{" => depth += 1,
                    ")" | "]" | "}" => depth -= 1,
                    "=" if depth == 0 => break,
                    ";" if depth == 0 => break,
                    _ => {}
                }
                eq += 1;
            }
            if pattern_bindings(tokens, i + 1, eq)
                .iter()
                .any(|b| b.name == name)
            {
                return (scope_close, Release::ScopeEnd);
            }
            i = eq;
            continue;
        }
        // `drop(name)`.
        if t.is("drop")
            && tokens.get(i + 1).is_some_and(|n| n.is("("))
            && tokens.get(i + 2).is_some_and(|n| n.is(name))
            && tokens.get(i + 3).is_some_and(|n| n.is(")"))
        {
            return (i, Release::Dropped);
        }
        if t.is(name) {
            let prev = i.checked_sub(1).map(|p| tokens[p].text.as_str());
            let next = tokens.get(i + 1).map(|n| n.text.as_str());
            // By-value move as a whole call argument: `f(name)` /
            // `f(a, name, b)`. A preceding `&`/`mut` is a reborrow and
            // keeps the guard alive; a following `.` is a method call.
            let arg_pos = matches!(prev, Some("(") | Some(","));
            let arg_end = matches!(next, Some(")") | Some(","));
            if arg_pos && arg_end {
                return (i + 1, Release::Moved);
            }
            // Moved out of the block as its trailing value, or returned.
            let returned = matches!(prev, Some("return")) && matches!(next, Some(";") | Some("}"));
            let trailing = matches!(prev, Some(";") | Some("{")) && matches!(next, Some("}"));
            if returned || trailing {
                return (i + 1, Release::Moved);
            }
        }
        i += 1;
    }
    (scope_close, Release::ScopeEnd)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::lower;
    use crate::lexer::lex;

    fn guards(src: &str) -> Vec<FnGuards> {
        let out = lex(src);
        let fns = lower(&out.tokens);
        analyze(&out.tokens, &fns)
    }

    fn one(src: &str) -> FnGuards {
        let mut g = guards(src);
        assert_eq!(g.len(), 1, "expected one fn in {src}");
        g.remove(0)
    }

    #[test]
    fn let_bound_guard_lives_to_scope_end() {
        let g = one("fn f() { let a = self.shards[0].lock(); work(); }");
        assert_eq!(g.ranges.len(), 1);
        let r = &g.ranges[0];
        assert_eq!(r.binding.as_deref(), Some("a"));
        assert_eq!(r.released, Release::ScopeEnd);
        assert_eq!(r.acq.method, "lock");
        assert_eq!(r.acq.receiver, vec!["shards", "self"]);
    }

    #[test]
    fn early_drop_ends_the_range() {
        let src = "fn f() { let a = x.lock(); drop(a); y.lock(); }";
        let g = one(src);
        let toks = lex(src).tokens;
        let r = &g.ranges[0];
        assert_eq!(r.released, Release::Dropped);
        // The second acquisition must be outside the first range.
        let second = g.acqs.iter().find(|a| a.receiver == vec!["y"]).unwrap();
        assert!(!r.live_at(second.at), "{r:?} vs {second:?}");
        let _ = toks;
    }

    #[test]
    fn inner_scope_ends_at_its_brace() {
        let g = one("fn f() { { let a = x.lock(); } y.lock(); }");
        let a = g.ranges.iter().find(|r| r.binding.is_some()).unwrap();
        let y = g.acqs.iter().find(|q| q.receiver == vec!["y"]).unwrap();
        assert!(!a.live_at(y.at));
    }

    #[test]
    fn destructured_tuple_guards_pair_positionally() {
        let g = one("fn f() { let (a, b) = (x.lock(), y.lock()); }");
        assert_eq!(g.ranges.len(), 2);
        let ra = &g.ranges[0];
        let rb = &g.ranges[1];
        assert_eq!(ra.binding.as_deref(), Some("a"));
        assert_eq!(rb.binding.as_deref(), Some("b"));
        // The second acquisition happens while the first guard is live.
        assert!(ra.live_at(rb.acq.at));
    }

    #[test]
    fn helper_returned_guard_is_tracked() {
        let g = one("fn f() { let g = grab_shard_guard(&table, key); other.lock(); }");
        let helper = g
            .ranges
            .iter()
            .find(|r| r.acq.method == "grab_shard_guard")
            .unwrap();
        let other = g.acqs.iter().find(|q| q.method == "lock").unwrap();
        assert!(helper.live_at(other.at));
    }

    #[test]
    fn move_into_helper_releases() {
        let g = one("fn f() { let s = table.shard(k); s.touch(); absorb(s); x.lock(); }");
        let r = &g.ranges[0];
        assert_eq!(r.released, Release::Moved);
        let x = g.acqs.iter().find(|q| q.receiver == vec!["x"]).unwrap();
        assert!(!r.live_at(x.at));
    }

    #[test]
    fn reborrow_does_not_release() {
        let g = one("fn f() { let s = table.shard(k); helper(&mut s); x.lock(); }");
        let r = &g.ranges[0];
        assert_eq!(r.released, Release::ScopeEnd);
        let x = g.acqs.iter().find(|q| q.receiver == vec!["x"]).unwrap();
        assert!(r.live_at(x.at));
    }

    #[test]
    fn shadowing_keeps_the_old_guard_alive() {
        let g = one("fn f() { let g = a.lock(); let g = b.lock(); use_it(&g); }");
        assert_eq!(g.ranges.len(), 2);
        let first = &g.ranges[0];
        let second = &g.ranges[1];
        // Rust does not drop a shadowed guard: both are live after the
        // second `let`.
        assert_eq!(first.released, Release::ScopeEnd);
        assert!(first.live_at(second.acq.at));
    }

    #[test]
    fn temporaries_live_for_their_statement_only() {
        let g = one("fn f() { table.shard(k).create(key); other.shard(k2).create(key2); }");
        assert_eq!(g.ranges.len(), 2);
        let (r1, r2) = (&g.ranges[0], &g.ranges[1]);
        assert_eq!(r1.released, Release::StatementEnd);
        assert!(!r1.live_at(r2.acq.at));
    }

    #[test]
    fn io_read_write_with_arguments_are_not_guards() {
        let g = one("fn f() { file.read(&mut buf); w.write(&bytes); }");
        assert!(g.acqs.is_empty(), "{:?}", g.acqs);
    }

    #[test]
    fn closure_acquisitions_scope_to_the_closure_block() {
        let g = one("fn f() { xs.iter().map(|s| { let l = s.lock(); l.len() }).sum(); }");
        // One acquisition, bound inside the closure block.
        assert_eq!(g.ranges.len(), 1);
        assert_eq!(g.ranges[0].binding.as_deref(), Some("l"));
    }

    #[test]
    fn nested_fn_bodies_do_not_leak_into_the_parent() {
        let g = guards("fn outer() { let a = x.lock(); fn inner() { y.lock(); } tail(); } ");
        let outer = g.iter().find(|f| f.fn_name == "outer").unwrap();
        // inner's acquisition is not attributed to outer.
        assert_eq!(outer.ranges.len(), 1);
        assert!(outer.acqs.iter().all(|a| a.receiver != vec!["y"]));
    }
}
