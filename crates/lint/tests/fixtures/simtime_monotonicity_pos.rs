// lint-fixture: path=crates/netsim/src/scheduler.rs

impl Scheduler {
    /// Advances the clock by a subtraction: SimTime's Sub saturates to
    /// zero when the operands swap, silently stalling the simulation.
    pub fn catch_up(&mut self, now: SimTime, lag: SimTime) {
        self.clock.advance(now - lag);
    }
}
