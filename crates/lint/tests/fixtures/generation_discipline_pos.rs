// lint-fixture: path=crates/core/src/deploy/state.rs

impl PoolDriver {
    /// Forges a stamp outside publish(): readers can now observe a
    /// generation that was never published under the state lock.
    pub fn force_stamp(&mut self, forged: u64) {
        self.state.generation = forged;
    }

    /// Equality staleness check: if the generation advanced twice between
    /// this flow's snapshot and the check, the change signal is dropped.
    pub fn is_stale(&self, report: &FlowReport) -> bool {
        report.generation != self.current
    }
}
