// lint-fixture: path=crates/core/src/schedule.rs

/// Same lookup, but the failure surfaces as LiberateError so the caller
/// can fall back to the untransformed schedule.
pub fn first_packet(s: &Schedule) -> Result<Packet, LiberateError> {
    let p = s
        .packets
        .first()
        .ok_or(LiberateError::EmptySchedule)?;
    Ok(p.clone())
}
