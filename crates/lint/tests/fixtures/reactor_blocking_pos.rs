// lint-fixture: path=crates/core/src/deploy/tasks.rs

impl FlowTask<SimSubstrate> for BackoffFlowTask {
    type Output = PoolFlowReport;

    /// Waits out the retry backoff on the host clock: every other lane
    /// multiplexed onto this worker stalls for the full 50ms while the
    /// simulated clock never moves.
    fn poll(&mut self, session: &mut Session) -> TaskPoll<PoolFlowReport> {
        if self.needs_backoff {
            std::thread::sleep(Duration::from_millis(50));
            self.needs_backoff = false;
            return TaskPoll::Pending(Wake::Ready);
        }
        TaskPoll::Done(self.report.clone())
    }

    fn replays_done(&self) -> u64 {
        self.replays
    }
}
