// lint-fixture: path=crates/dpi/src/flowtable.rs

impl FlowTable {
    /// Tier-ordered acquisition: shard (tier 0) before penalty box
    /// (tier 1) is the sanctioned order.
    pub fn park(&self, key: FlowKey) {
        let shard = self.shard(key);
        let mut penalty = self.penalty_box.lock();
        penalty.push(shard.evict());
    }
}
