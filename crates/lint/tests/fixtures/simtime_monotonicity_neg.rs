// lint-fixture: path=crates/netsim/src/scheduler.rs

impl Scheduler {
    /// Passes an absolute target instead: no subtraction can go negative.
    pub fn catch_up(&mut self, target: SimTime) {
        self.clock.advance_to(target);
    }
}
