// lint-fixture: path=crates/obs/src/reporter.rs

impl Reporter {
    /// Event and counter move together: the journal and the summary
    /// table stay two views of one activity stream.
    pub fn note_injection(&mut self, at: SimTime, bytes: usize) {
        self.metrics.incr(Counter::PacketsInjected);
        self.journal.record(at, EventKind::PacketInjected { bytes });
    }

    /// Histogram next to its paired counter: quantiles and rate move
    /// together.
    pub fn note_wire_size(&mut self, bytes: usize) {
        self.metrics.incr(Counter::PacketsInjected);
        self.journal.observe(Hist::InjectBytes, bytes as u64);
    }

    /// Distribution-only histogram: the pairing table exempts it, so no
    /// counter is demanded.
    pub fn note_occupancy(&mut self, workers: usize) {
        self.journal.observe(Hist::WaveOccupancy, workers as u64);
    }
}
