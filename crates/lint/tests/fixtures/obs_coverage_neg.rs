// lint-fixture: path=crates/obs/src/reporter.rs

impl Reporter {
    /// Event and counter move together: the journal and the summary
    /// table stay two views of one activity stream.
    pub fn note_injection(&mut self, at: SimTime, bytes: usize) {
        self.metrics.incr(Counter::PacketsInjected);
        self.journal.record(at, EventKind::PacketInjected { bytes });
    }
}
