// lint-fixture: path=crates/dpi/src/flowtable.rs

impl FlowTable {
    /// Regression fixture: the pre-IR token engine only recognised guards
    /// bound by a plain `let g = ...lock()`, so a shard guard arriving
    /// through destructuring was invisible to it and this cross-shard
    /// acquisition (shard held, second shard taken — same tier, no
    /// ordering) went unflagged. The guard-lifetime dataflow pass tracks
    /// the destructured binding and catches it.
    pub fn rebalance(&self, key: FlowKey) {
        let (idx, guard) = self.split_shard_guard(key);
        let other = self.shards[idx + 1].lock();
        merge_flows(guard, other);
    }
}
