// lint-fixture: path=crates/core/src/evaluate.rs

impl Evaluator {
    pub fn freeze(&self) -> Verdict {
        // lint: allow(no-panic) the constructor seeds one verdict, so
        // the history is never empty on this path.
        self.history.last().cloned().unwrap()
    }
}
