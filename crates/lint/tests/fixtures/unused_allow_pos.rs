// lint-fixture: path=crates/core/src/evaluate.rs

impl Evaluator {
    // lint: allow(no-panic) stale: the unwrap this covered was replaced
    // by error propagation, so the annotation suppresses nothing now.
    pub fn latest_verdict(&self) -> Result<Verdict, LiberateError> {
        self.history.last().cloned().ok_or(LiberateError::NoVerdict)
    }
}
