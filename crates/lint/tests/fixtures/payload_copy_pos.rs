// lint-fixture: path=crates/netsim/src/hop.rs
//! Positive fixture: ad-hoc deep copies of wire payload on the hot path.

fn forward(wire: &PacketBuf) -> Vec<u8> {
    // A straight deep copy of the wire buffer: the zero-copy invariant
    // this rule guards.
    wire.to_vec()
}

fn duplicate(pkt: &ParsedPacket) {
    stash(pkt.payload.clone());
}

fn feed(payload: &[u8]) {
    let owned = payload.to_vec();
    consume(owned);
}
