// lint-fixture: path=crates/core/src/evasion/transform.rs

/// The split arm binds `segments` and then hardcodes 2: the emitted
/// schedule's size no longer tracks what overhead() bills for it.
pub fn apply(t: &Technique, base: &Schedule) -> Option<Schedule> {
    use Technique::*;
    match t {
        TcpSegmentSplit { segments } => Some(split_segments(base, 2)),
        PauseAfterMatch(d) => Some(insert_pause(base, d)),
    }
}
