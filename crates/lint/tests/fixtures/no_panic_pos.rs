// lint-fixture: path=crates/core/src/schedule.rs

/// Unwinds on an empty schedule: inline on a live flow, this tears down
/// the user's connection instead of degrading.
pub fn first_packet(s: &Schedule) -> Packet {
    let p = s.packets.first().unwrap();
    if p.payload.is_empty() {
        panic!("schedule starts with an empty packet");
    }
    p.clone()
}
