// lint-fixture: path=crates/core/src/evasion/mod.rs

pub enum Technique {
    InertLowTtl,
    PauseAfterMatch(Duration),
}

impl Technique {
    pub fn table3_rows() -> Vec<Technique> {
        vec![
            Technique::InertLowTtl,
            Technique::PauseAfterMatch(Duration::ZERO),
        ]
    }

    pub fn description(&self) -> &'static str {
        match self {
            Technique::InertLowTtl => "inert packet with a TTL too low to arrive",
            Technique::PauseAfterMatch(_) => "pause after the keyword to flush state",
        }
    }

    pub fn category(&self) -> Category {
        match self {
            Technique::InertLowTtl => Category::InertInsertion,
            Technique::PauseAfterMatch(_) => Category::Flushing,
        }
    }

    pub fn applicable(&self) -> bool {
        match self {
            Technique::InertLowTtl | Technique::PauseAfterMatch(_) => true,
        }
    }

    pub fn overhead(&self) -> Overhead {
        use Technique::*;
        match self {
            InertLowTtl => Overhead::InertPackets(1),
            PauseAfterMatch(d) => Overhead::PauseSeconds(d.as_secs()),
        }
    }
}
