// lint-fixture: path=crates/core/src/evasion/transform.rs

/// Every pattern binder flows into the arm body: the emission stays the
/// size the overhead table predicts.
pub fn apply(t: &Technique, base: &Schedule) -> Option<Schedule> {
    use Technique::*;
    match t {
        TcpSegmentSplit { segments } => Some(split_segments(base, *segments)),
        PauseAfterMatch(d) => Some(insert_pause(base, d)),
    }
}
