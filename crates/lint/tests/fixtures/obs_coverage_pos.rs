// lint-fixture: path=crates/obs/src/reporter.rs

impl Reporter {
    /// Journals the injection but never moves the paired counter: the
    /// summary table cannot corroborate what the event stream shows.
    pub fn note_injection(&mut self, at: SimTime, bytes: usize) {
        self.journal.record(at, EventKind::PacketInjected { bytes });
    }
}
