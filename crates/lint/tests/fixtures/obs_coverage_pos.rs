// lint-fixture: path=crates/obs/src/reporter.rs

impl Reporter {
    /// Journals the injection but never moves the paired counter: the
    /// summary table cannot corroborate what the event stream shows.
    pub fn note_injection(&mut self, at: SimTime, bytes: usize) {
        self.journal.record(at, EventKind::PacketInjected { bytes });
    }

    /// Same blind spot on the histogram surface: bytes quantiles with
    /// no injection count to corroborate them.
    pub fn note_wire_size(&mut self, bytes: usize) {
        self.journal.observe(Hist::InjectBytes, bytes as u64);
    }
}
