// lint-fixture: path=crates/core/src/deploy/tasks.rs

impl FlowTask<SimSubstrate> for BackoffFlowTask {
    type Output = PoolFlowReport;

    /// The same retry backoff expressed in virtual time: the task parks
    /// on the timer wheel and the worker keeps polling other lanes; the
    /// wheel resumes this flow once its simulated deadline arrives.
    fn poll(&mut self, session: &mut Session) -> TaskPoll<PoolFlowReport> {
        if self.needs_backoff {
            self.needs_backoff = false;
            return TaskPoll::Pending(Wake::Timer(Duration::from_millis(50)));
        }
        TaskPoll::Done(self.report.clone())
    }

    fn replays_done(&self) -> u64 {
        self.replays
    }
}
