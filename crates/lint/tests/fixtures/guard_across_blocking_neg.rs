// lint-fixture: path=crates/core/src/deploy/wave.rs

impl WaveDriver {
    /// Copies what the wave needs out of the guard's scope, then replays
    /// without holding the session table.
    pub fn run_all(&self) -> Result<(), LiberateError> {
        let plan = {
            let guard = self.sessions.lock();
            guard.plan.clone()
        };
        self.run_wave(&plan)?;
        Ok(())
    }
}
