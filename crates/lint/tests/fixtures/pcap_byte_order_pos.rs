// lint-fixture: path=crates/packet/src/pcap.rs

/// Hand-assembles the snaplen field one byte lane at a time: the byte
/// order lives in the arithmetic instead of being named at the write site.
pub fn write_snaplen(out: &mut Vec<u8>, v: u32) {
    out.push((v >> 24) as u8);
    out.push((v >> 16) as u8);
    out.push((v >> 8) as u8);
    out.push(v as u8);
}
