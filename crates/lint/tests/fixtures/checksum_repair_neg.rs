// lint-fixture: path=crates/packet/src/mutate.rs

/// Rewrites the sequence number and repairs the checksum afterwards.
pub fn rewrite_seq(wire: &mut [u8], seq: u32) {
    wire[4..8].copy_from_slice(&seq.to_be_bytes());
    let ck = pseudo_header_checksum(wire);
    wire[16..18].copy_from_slice(&ck.to_be_bytes());
}
