// lint-fixture: path=crates/netsim/src/hop.rs
//! Negative fixture: views, refcount bumps on `buf`-named bindings, an
//! annotated sanctioned copy, and copies of non-payload data all pass.

fn forward(wire: &PacketBuf) -> PacketBuf {
    // Range views are the sanctioned way to pass payload along.
    wire.slice(4..)
}

fn duplicate(buf: &PacketBuf) -> PacketBuf {
    // Helpers name PacketBuf parameters `buf`: cloning one is a refcount
    // bump, not a payload copy.
    buf.clone()
}

fn ingest(wire: &PacketBuf) -> Vec<u8> {
    // lint: allow(payload-copy) endpoint ingestion: the server owns its
    // copy of the bytes once they leave the wire.
    wire.to_vec()
}

fn bookkeeping(rules: &RuleSet, wire: &PacketBuf) -> usize {
    let _rules = rules.clone();
    wire.len()
}
