// lint-fixture: path=crates/core/src/deploy/wave.rs

impl WaveDriver {
    /// Holds the session-table guard across run_wave: every flow that
    /// tries to register while the wave replays serializes behind this
    /// lock for the wave's full duration.
    pub fn run_all(&self) -> Result<(), LiberateError> {
        let guard = self.sessions.lock();
        self.run_wave(&guard.plan)?;
        Ok(())
    }
}
