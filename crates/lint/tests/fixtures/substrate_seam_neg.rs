// lint-fixture: path=crates/core/src/replay.rs

/// Reaches the backend through the Substrate trait and the crate::sim
/// re-exports: the seam stays intact.
use liberate_substrate::Substrate;

use crate::sim::{OsKind, SimSubstrate};

pub fn default_os() -> OsKind {
    OsKind::Linux
}

pub fn settle<S: Substrate>(env: &mut S) {
    env.run_until_idle();
}

pub fn backend_of(env: &SimSubstrate) -> &'static str {
    env.backend_name()
}
