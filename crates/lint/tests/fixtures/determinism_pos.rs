// lint-fixture: path=crates/netsim/src/jitter.rs

/// Samples link jitter from ambient entropy and the wall clock: two runs
/// of the same scenario produce different traces.
pub fn sample_delay_ns(ceiling: u64) -> u64 {
    let mut rng = thread_rng();
    let started = Instant::now();
    (rng.next_u64() ^ started.elapsed().subsec_nanos() as u64) % ceiling
}
