// lint-fixture: path=crates/core/src/deploy/state.rs

impl PoolDriver {
    /// Monotonic staleness check: any report stamped at or past the
    /// current generation has already paid for the change.
    pub fn acked(&self, report: &FlowReport) -> bool {
        report.generation >= self.current
    }

    /// Reads go through the snapshot accessor, never the raw field.
    pub fn snapshot_stamp(&self) -> u64 {
        self.published.generation()
    }
}
