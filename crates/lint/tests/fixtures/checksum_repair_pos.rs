// lint-fixture: path=crates/packet/src/mutate.rs

/// Zeroes the TCP checksum field and never repairs it: the receiving
/// stack drops the replayed packet before the classifier sees it.
pub fn clobber_checksum(wire: &mut [u8]) {
    wire[16] = 0;
    wire[17] = 0;
}
