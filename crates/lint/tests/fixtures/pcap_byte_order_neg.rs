// lint-fixture: path=crates/packet/src/pcap.rs

/// Writes the whole field through to_le_bytes: the pcap file header is
/// little-endian and the call site says so.
pub fn write_snaplen(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}
