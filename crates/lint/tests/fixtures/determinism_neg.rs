// lint-fixture: path=crates/netsim/src/jitter.rs

/// Same sampler, but the rng is seeded by the scenario and time comes
/// from the simulated clock: replays are bit-identical.
pub fn sample_delay_ns(rng: &mut StdRng, now: SimTime, ceiling: u64) -> u64 {
    (rng.next_u64() ^ now.as_nanos()) % ceiling
}
