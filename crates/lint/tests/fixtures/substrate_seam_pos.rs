// lint-fixture: path=crates/core/src/replay.rs

/// Imports the simulator crate directly from a generic core module,
/// re-coupling the probe/evade pipeline to one backend.
use liberate_netsim::os::OsKind;

pub fn default_os() -> OsKind {
    OsKind::Linux
}

/// A qualified path is just as much a seam violation as a `use`.
pub fn fresh_env_name() -> String {
    liberate_netsim::env::Environment::describe()
}
