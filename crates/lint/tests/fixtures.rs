//! Golden-file corpus for the lint rules.
//!
//! Every rule ships one positive fixture (the rule fires) and one
//! negative fixture (a near-miss that stays clean) under
//! `tests/fixtures/`. A fixture's first line maps it into the workspace
//! path space its rule applies to:
//!
//! ```text
//! // lint-fixture: path=crates/dpi/src/flowtable.rs
//! ```
//!
//! The full engine runs on every fixture — all rules, the allow miner,
//! and the unused-allow meta-check — so cross-rule interference shows up
//! here, not in production. The JSON output is compared against the
//! checked-in `<fixture>.expected.json`. After changing a rule or adding
//! a fixture, regenerate the goldens with:
//!
//! ```text
//! UPDATE_FIXTURES=1 cargo test -p liberate-lint --test fixtures
//! ```

use std::fs;
use std::path::{Path, PathBuf};

use liberate_lint::{lint_source, rule_names, to_json, UNUSED_ALLOW_RULE};

struct Fixture {
    file: PathBuf,
    /// Rule under test, derived from the file stem (`_` → `-`).
    rule: String,
    /// `_pos` fixtures must fire the rule; `_neg` must stay clean.
    positive: bool,
    /// Workspace-relative path the fixture pretends to live at.
    mapped_path: String,
    source: String,
}

fn fixtures_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures")
}

fn load_fixtures() -> Vec<Fixture> {
    let dir = fixtures_dir();
    let mut paths: Vec<PathBuf> = fs::read_dir(&dir)
        .expect("tests/fixtures directory")
        .map(|e| e.expect("readable directory entry").path())
        .filter(|p| p.extension().is_some_and(|x| x == "rs"))
        .collect();
    paths.sort();
    assert!(!paths.is_empty(), "no fixtures found in {}", dir.display());

    paths
        .into_iter()
        .map(|file| {
            let source = fs::read_to_string(&file)
                .unwrap_or_else(|e| panic!("reading {}: {e}", file.display()));
            let stem = file
                .file_stem()
                .expect("fixture file name")
                .to_string_lossy()
                .into_owned();
            let (base, positive) = match (stem.strip_suffix("_pos"), stem.strip_suffix("_neg")) {
                (Some(b), _) => (b, true),
                (_, Some(b)) => (b, false),
                _ => panic!("fixture `{stem}` must end in _pos or _neg"),
            };
            let mapped_path = source
                .lines()
                .next()
                .and_then(|l| l.strip_prefix("// lint-fixture: path="))
                .unwrap_or_else(|| {
                    panic!(
                        "{}: first line must be `// lint-fixture: path=<rel_path>`",
                        file.display()
                    )
                })
                .trim()
                .to_string();
            Fixture {
                file,
                rule: base.replace('_', "-"),
                positive,
                mapped_path,
                source,
            }
        })
        .collect()
}

/// Each fixture's full-engine JSON output matches its checked-in golden.
#[test]
fn fixtures_match_their_goldens() {
    let update = std::env::var_os("UPDATE_FIXTURES").is_some();
    let mut mismatches = Vec::new();
    for fx in load_fixtures() {
        let got = to_json(&lint_source(&fx.mapped_path, &fx.source));
        let golden = fx.file.with_extension("expected.json");
        if update {
            fs::write(&golden, format!("{got}\n"))
                .unwrap_or_else(|e| panic!("writing {}: {e}", golden.display()));
            continue;
        }
        let want = fs::read_to_string(&golden).unwrap_or_else(|_| {
            panic!(
                "missing golden {}; regenerate with UPDATE_FIXTURES=1",
                golden.display()
            )
        });
        if want.trim_end() != got {
            mismatches.push(format!(
                "{}:\n  want: {}\n  got:  {got}",
                fx.file.display(),
                want.trim_end()
            ));
        }
    }
    assert!(
        mismatches.is_empty(),
        "golden mismatches (UPDATE_FIXTURES=1 to accept):\n{}",
        mismatches.join("\n")
    );
}

/// Positive fixtures fire their rule, negatives stay clean, and no
/// fixture trips a rule other than the one it exercises — a stray
/// diagnostic means two rules' scopes are interfering.
#[test]
fn fixtures_are_polarized_and_pure() {
    for fx in load_fixtures() {
        let diags = lint_source(&fx.mapped_path, &fx.source);
        let hits = diags.iter().filter(|d| d.rule == fx.rule).count();
        if fx.positive {
            assert!(
                hits > 0,
                "{}: expected at least one `{}` diagnostic, got none",
                fx.file.display(),
                fx.rule
            );
        } else {
            assert_eq!(
                hits,
                0,
                "{}: negative fixture fired `{}`",
                fx.file.display(),
                fx.rule
            );
        }
        for d in &diags {
            assert_eq!(
                d.rule,
                fx.rule,
                "{}: stray diagnostic from another rule: {d}",
                fx.file.display()
            );
        }
    }
}

/// The corpus covers the whole registry: one positive and one negative
/// fixture per rule, including the engine-level unused-allow meta-check.
#[test]
fn every_rule_has_both_fixture_polarities() {
    let fixtures = load_fixtures();
    let mut names = rule_names();
    names.push(UNUSED_ALLOW_RULE);
    for name in names {
        for positive in [true, false] {
            assert!(
                fixtures
                    .iter()
                    .any(|f| f.rule == name && f.positive == positive),
                "rule `{name}` is missing a {} fixture",
                if positive { "positive" } else { "negative" }
            );
        }
    }
}

/// The acceptance regression for the IR port: a destructured shard guard
/// — invisible to the old token-level engine — is caught holding its
/// tier when a same-tier shard is acquired.
#[test]
fn destructured_guard_regression_is_locked_in() {
    let fx_path = fixtures_dir().join("flowtable_lock_ordering_pos.rs");
    let source = fs::read_to_string(&fx_path).expect("regression fixture");
    let diags = lint_source("crates/dpi/src/flowtable.rs", &source);
    assert!(
        diags
            .iter()
            .any(|d| d.rule == "flowtable-lock-ordering" && d.message.contains("guard")),
        "destructured-guard violation no longer detected: {diags:?}"
    );
}
