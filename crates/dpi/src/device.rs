//! The DPI middlebox: a [`PathElement`] combining the rule engine,
//! inspection policy, validation model, flow table, and policy actions.
//!
//! The device is deliberately *configurable in its imperfections*: every
//! behavioural axis the paper exploits (lax validation, packet windows,
//! gated or absent reassembly, state timeouts, RST handling) is a knob, and
//! [`crate::profiles`] sets the knobs to reproduce the six environments
//! of §6.

use std::collections::HashMap;
use std::sync::Arc;

use liberate_netsim::element::{CopyTally, Effects, PacketBuf, PathElement, TimedPacket, Verdict};
use liberate_netsim::shaper::TokenBucket;
use liberate_netsim::time::SimTime;
use liberate_obs::{Counter, EventKind, Hist, Journal};
use liberate_packet::flow::{Direction, FlowKey};
use liberate_packet::packet::{Packet, ParsedPacket};
use liberate_packet::tcp::TcpFlags;
use liberate_packet::validate::validate_wire;

use crate::actions::Policy;
use crate::automaton::{CompiledRuleSet, MatcherKind};
use crate::flowtable::{Classification, FlowEntry, FlowTable, GateStatus, StreamDelta};
use crate::inspect::{FlowConfig, InspectionPolicy, ReassemblyMode};
use crate::matcher::starts_with_any;
use crate::resource::TimeOfDayLoad;
use crate::rules::RuleSet;
use crate::sharded::ShardedFlowTable;
use crate::validation::ValidationModel;

/// Default stream-assembly window when the reassembly mode does not
/// specify one.
const DEFAULT_WINDOW_BYTES: usize = 16 * 1024;

/// Bytes-per-packet assumption when sizing a packet-count window.
const SERVER_MSS_BYTES: usize = 1500;

/// Full configuration of a DPI device.
#[derive(Debug, Clone)]
pub struct DpiConfig {
    pub name: String,
    pub rules: RuleSet,
    pub inspect: InspectionPolicy,
    pub validation: ValidationModel,
    pub flow: FlowConfig,
    /// Traffic class → policy.
    pub policies: HashMap<String, Policy>,
    /// Time-of-day resource model overriding the tracking timeout.
    pub resource: Option<TimeOfDayLoad>,
    /// Parse the transport header even when the IP protocol field is
    /// bogus (the testbed device classifies "wrong protocol" packets as if
    /// they were TCP — Table 3 footnote 1). Strict devices leave this off.
    pub loose_transport_parsing: bool,
    /// Which matcher implementation inspects payloads. Verdicts are
    /// byte-identical either way (pinned by the matcher parity tests);
    /// the automaton feeds each stream byte once instead of rescanning.
    pub matcher: MatcherKind,
}

/// One classification event, for diagnostics and the testbed's immediate
/// readout.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClassificationEvent {
    pub at: SimTime,
    pub flow: FlowKey,
    pub class: String,
    pub rule_id: String,
}

/// The middlebox.
pub struct DpiDevice {
    pub config: DpiConfig,
    /// Flow state, possibly shared with sibling devices in a session
    /// pool. A solo device (via [`DpiDevice::new`]) owns its own table.
    table: Arc<ShardedFlowTable>,
    /// Bytes attributed to the subscriber's quota.
    pub billed_bytes: u64,
    /// Bytes zero-rated under a matched policy.
    pub zero_rated_bytes: u64,
    /// Log of every classification made.
    pub events: Vec<ClassificationEvent>,
    /// Latest packet time seen, used by the readout API for expiry.
    last_seen: SimTime,
    /// Observability journal, attached by the owning `Network`.
    journal: Option<Arc<Journal>>,
    /// Flow churn this device caused but has not yet reported to the
    /// journal. Per-device deltas (captured from the shard guard), not
    /// table totals: with a shared table, totals mix in sibling devices'
    /// churn and would double-report.
    flows_created_pending: u64,
    flows_evicted_pending: u64,
    /// Per-flow scanned-byte figures drained from the shard but not yet
    /// observed into the bytes-scanned histogram.
    evicted_scanned_pending: Vec<u64>,
    /// Lazily compiled automaton over `config.rules` + gate prefixes
    /// (`None` until first use, or always under `MatcherKind::NaiveRescan`).
    compiled: Option<Arc<CompiledRuleSet>>,
}

impl DpiDevice {
    pub fn new(config: DpiConfig) -> DpiDevice {
        DpiDevice::with_shared_table(config, Arc::new(ShardedFlowTable::default()))
    }

    /// A device fronting a table shared with other devices — the pooled
    /// engine builds one device per worker network, all handing packets
    /// to the same sharded state.
    pub fn with_shared_table(config: DpiConfig, table: Arc<ShardedFlowTable>) -> DpiDevice {
        DpiDevice {
            config,
            table,
            billed_bytes: 0,
            zero_rated_bytes: 0,
            events: Vec::new(),
            last_seen: SimTime::ZERO,
            journal: None,
            flows_created_pending: 0,
            flows_evicted_pending: 0,
            evicted_scanned_pending: Vec::new(),
            compiled: None,
        }
    }

    /// The compiled automaton for this device's rules, building it on
    /// first use. `None` under [`MatcherKind::NaiveRescan`]. Callers hold
    /// the returned `Arc` across flow-table borrows.
    fn compiled_rules(&mut self) -> Option<Arc<CompiledRuleSet>> {
        if self.config.matcher == MatcherKind::NaiveRescan {
            return None;
        }
        if self.compiled.is_none() {
            let compiled = Arc::new(CompiledRuleSet::compile(
                &self.config.rules,
                self.config.inspect.reassembly.gate_prefixes(),
            ));
            if let Some(j) = &self.journal {
                j.metrics
                    .add(Counter::AutomatonStates, compiled.state_count() as u64);
            }
            self.compiled = Some(compiled);
        }
        self.compiled.clone()
    }

    /// Drop the compiled automaton so the next packet recompiles — for
    /// tests and tools that mutate `config.rules` or `config.matcher`
    /// after the device has already inspected traffic.
    pub fn invalidate_compiled_rules(&mut self) {
        self.compiled = None;
    }

    /// Tell the device time has passed without traffic. `last_seen` (the
    /// clock expiry and journaled management events read) normally moves
    /// only when a packet is inspected; drivers that quiesce the device
    /// and then act on it (rule swaps, batch reclamation) call this first
    /// so the action is stamped at the driver's clock rather than the
    /// last packet's. Monotonic: never moves the clock backwards — lane-
    /// virtualized engines whose per-flow timestamps lag the session
    /// clock rely on that.
    pub fn observe_now(&mut self, now: SimTime) {
        self.last_seen = self.last_seen.max(now);
    }

    /// Replace this device's rule set in place — the scripted
    /// "classifier changed under us" event benches and deployment tests
    /// use to exercise re-characterization. Existing flow state is kept
    /// (live flows keep their verdicts until expiry, like a real
    /// middlebox taking a rule push); the compiled automaton is dropped
    /// so the next inspected packet compiles the new rules. Journaled as
    /// a `rule_swap` event plus the `rule-swaps` counter.
    pub fn hot_swap_rules(&mut self, rules: RuleSet) {
        self.config.rules = rules;
        self.invalidate_compiled_rules();
        self.journal_incr(Counter::RuleSwaps);
        self.journal_record(
            self.last_seen,
            EventKind::RuleSwap {
                device: self.config.name.clone(),
                rules: self.config.rules.rules.len() as u64,
            },
        );
    }

    /// The flow state this device fronts (for sharing with a sibling or
    /// inspecting from tests).
    pub fn shared_table(&self) -> Arc<ShardedFlowTable> {
        Arc::clone(&self.table)
    }

    /// Report this device's pending flow-churn deltas to the journal.
    /// Runs after every processed packet so the counters are exact at
    /// packet boundaries (the table also evicts lazily inside `lookup`).
    /// Deltas accumulated while no journal is attached stay local, like
    /// pre-attachment totals did before sharding.
    fn sync_flow_metrics(&mut self) {
        let created = std::mem::take(&mut self.flows_created_pending);
        let evicted = std::mem::take(&mut self.flows_evicted_pending);
        let scanned = std::mem::take(&mut self.evicted_scanned_pending);
        let Some(j) = &self.journal else {
            return;
        };
        if created > 0 {
            j.metrics.add(Counter::FlowsCreated, created);
        }
        if evicted > 0 {
            j.metrics.add(Counter::FlowsEvicted, evicted);
        }
        for bytes in scanned {
            j.observe(Hist::FlowBytesScanned, bytes);
        }
    }

    /// Between-wave batch reclamation: evict every flow idle past its
    /// deadline in one sweep — one lock acquisition per shard instead of
    /// one per future lookup — and journal the churn (`flows-evicted`
    /// plus the bytes-scanned histogram) immediately. The deployment
    /// pool calls this once per wave, while its workers are quiescent.
    /// Returns the number of flows evicted.
    pub fn drain_expired_flows(&mut self) -> u64 {
        let batch = self.table.drain_expired(
            self.last_seen,
            &self.config.flow,
            self.config.resource.as_ref(),
        );
        self.flows_evicted_pending += batch.evicted;
        self.evicted_scanned_pending.extend(batch.scanned);
        self.sync_flow_metrics();
        batch.evicted
    }

    /// Fold a finished shard guard's churn into this device's pending
    /// deltas.
    fn absorb_shard_deltas(&mut self, mut shard: crate::sharded::ShardGuard<'_>) {
        let (created, evicted) = shard.deltas();
        let scanned = shard.drain_evicted_scanned();
        drop(shard);
        self.flows_created_pending += created;
        self.flows_evicted_pending += evicted;
        self.evicted_scanned_pending.extend(scanned);
    }

    fn journal_record(&self, now: SimTime, kind: EventKind) {
        if let Some(j) = &self.journal {
            j.record(now.as_micros(), kind);
        }
    }

    fn journal_incr(&self, c: Counter) {
        if let Some(j) = &self.journal {
            j.metrics.incr(c);
        }
    }

    /// The testbed readout: current classification of a flow, if any.
    pub fn classification_of(&mut self, key: FlowKey) -> Option<String> {
        // Peek without refreshing activity; expiry is applied so a flushed
        // result reads as unclassified.
        let now = self.last_seen;
        let table = Arc::clone(&self.table);
        let mut shard = table.shard(key);
        let class = shard
            .lookup(key, now, &self.config.flow, self.config.resource.as_ref())
            .and_then(|e| e.classification.as_ref())
            .map(|c| c.class.clone());
        self.absorb_shard_deltas(shard);
        class
    }

    /// Most recent classification event, if any.
    pub fn last_event(&self) -> Option<&ClassificationEvent> {
        self.events.last()
    }

    /// Forget all flow state and counters (between experiment runs).
    /// With a shared table this resets flows *and* penalties for every
    /// device on it, so pooled workers must be quiescent.
    pub fn reset(&mut self) {
        self.table.reset_all();
        self.billed_bytes = 0;
        self.zero_rated_bytes = 0;
        self.events.clear();
    }

    fn window_bytes(&self) -> usize {
        match &self.config.inspect.reassembly {
            ReassemblyMode::FullStream { window_bytes, .. } => *window_bytes,
            _ => DEFAULT_WINDOW_BYTES,
        }
    }

    fn account(&mut self, zero_rated: bool, len: usize) {
        if zero_rated {
            self.zero_rated_bytes += len as u64;
        } else {
            self.billed_bytes += len as u64;
        }
    }

    /// Inspect one payload-bearing packet for a tracked flow. Returns the
    /// matched (class, rule id) if classification fires now, plus the
    /// payload bytes the matcher examined (for `matcher-bytes-scanned`).
    ///
    /// `compiled` selects the implementation: `None` runs the naive
    /// reference rescanner, `Some` streams bytes through the automaton.
    /// Both produce identical verdicts; the parity tests pin this.
    #[allow(clippy::too_many_arguments)]
    fn inspect(
        entry: &mut FlowEntry,
        config: &DpiConfig,
        compiled: Option<&CompiledRuleSet>,
        pkt: &ParsedPacket,
        payload: &PacketBuf,
        dir: Direction,
        server_port: u16,
    ) -> (Option<(String, String)>, u64) {
        let Some(tracking) = entry.tracking.as_mut() else {
            return (None, 0);
        };
        let (idx, offset) = match dir {
            Direction::ClientToServer => (
                tracking.client_payload_packets,
                tracking.client_payload_bytes,
            ),
            Direction::ServerToClient => (
                tracking.server_payload_packets,
                tracking.server_payload_bytes,
            ),
        };
        // Count this payload packet (whether or not it ends up matched).
        match dir {
            Direction::ClientToServer => {
                tracking.client_payload_packets += 1;
                tracking.client_payload_bytes += pkt.payload.len() as u64;
            }
            Direction::ServerToClient => {
                tracking.server_payload_packets += 1;
                tracking.server_payload_bytes += pkt.payload.len() as u64;
            }
        }

        // Gate evaluation on the first client-direction payload packet.
        if dir == Direction::ClientToServer && tracking.gate == GateStatus::Pending {
            tracking.gate = match config.inspect.reassembly.gate_prefixes() {
                None => GateStatus::Passed,
                Some(prefixes) => {
                    if starts_with_any(&pkt.payload, prefixes) {
                        GateStatus::Passed
                    } else {
                        GateStatus::Failed
                    }
                }
            };
        }

        let rule_at = |i: usize| {
            let r = &config.rules.rules[i];
            (r.class.clone(), r.id.clone())
        };
        match &config.inspect.reassembly {
            ReassemblyMode::PerPacket => {
                if !config.inspect.within_scope_at(idx, offset) {
                    return (None, 0);
                }
                match compiled {
                    Some(c) => {
                        let (m, scanned) = c.first_match_packet(
                            &config.rules,
                            &pkt.payload,
                            dir,
                            server_port,
                            Some(idx),
                        );
                        (m.map(rule_at), scanned)
                    }
                    None => {
                        let (m, scanned) = config.rules.first_match_counted(
                            &pkt.payload,
                            dir,
                            server_port,
                            Some(idx),
                        );
                        (m.map(|r| (r.class.clone(), r.id.clone())), scanned)
                    }
                }
            }
            ReassemblyMode::GatedPerPacket { .. } => {
                if tracking.gate != GateStatus::Passed
                    || !config.inspect.within_scope_at(idx, offset)
                {
                    return (None, 0);
                }
                match compiled {
                    Some(c) => {
                        let (m, scanned) = c.first_match_packet(
                            &config.rules,
                            &pkt.payload,
                            dir,
                            server_port,
                            Some(idx),
                        );
                        (m.map(rule_at), scanned)
                    }
                    None => {
                        let (m, scanned) = config.rules.first_match_counted(
                            &pkt.payload,
                            dir,
                            server_port,
                            Some(idx),
                        );
                        (m.map(|r| (r.class.clone(), r.id.clone())), scanned)
                    }
                }
            }
            ReassemblyMode::GatedStream { window_packets, .. } => {
                if tracking.gate != GateStatus::Passed || dir != Direction::ClientToServer {
                    return (None, 0);
                }
                let seq = pkt.tcp().map(|t| t.seq).unwrap_or(0);
                match compiled {
                    None => {
                        if tracking.window_packets.len() < *window_packets {
                            // The window buffers a view of the in-flight
                            // wire buffer, not a copy.
                            // lint: allow(payload-copy) PacketBuf refcount bump
                            tracking.window_packets.push((seq, payload.clone()));
                        }
                        // Sequence-anchored reassembly of the window, anchored at
                        // the first *arriving* payload packet, first-wins on
                        // overlap (so a same-sequence inert decoy shadows the real
                        // data). Data before the anchor or beyond the window is
                        // invisible.
                        let mut asm = crate::flowtable::StreamAssembler::new(
                            window_packets * SERVER_MSS_BYTES,
                        );
                        asm.base_seq = Some(tracking.window_packets[0].0);
                        for (seq, payload) in &tracking.window_packets {
                            asm.insert(*seq, payload);
                        }
                        let stream = asm.assembled_prefix();
                        let (m, scanned) =
                            config
                                .rules
                                .first_match_counted(&stream, dir, server_port, None);
                        (m.map(|r| (r.class.clone(), r.id.clone())), scanned)
                    }
                    Some(c) => {
                        // Same window semantics, but the assembler persists
                        // across packets and only newly contiguous bytes are
                        // fed to the automaton. The packet cap counts pushed
                        // packets (in-window or not), like the naive buffer.
                        if tracking.window_asm.is_none() {
                            let mut asm = crate::flowtable::StreamAssembler::new(
                                window_packets * SERVER_MSS_BYTES,
                            );
                            asm.base_seq = Some(seq);
                            tracking.window_asm = Some(asm);
                        }
                        let asm = tracking.window_asm.as_mut().expect("just ensured");
                        if tracking.window_seen < *window_packets {
                            tracking.window_seen += 1;
                            asm.insert(seq, payload);
                        }
                        let scanned = match asm.drain_new_contiguous() {
                            StreamDelta::Restart(all) => {
                                tracking.window_scan.reset();
                                c.feed(&mut tracking.window_scan, &all);
                                all.len() as u64
                            }
                            StreamDelta::Append(new) => {
                                c.feed(&mut tracking.window_scan, &new);
                                new.len() as u64
                            }
                        };
                        let m = c.first_match_stream(
                            &config.rules,
                            &tracking.window_scan,
                            dir,
                            server_port,
                        );
                        (m.map(rule_at), scanned)
                    }
                }
            }
            ReassemblyMode::FullStream { gate_prefixes, .. } => {
                if dir != Direction::ClientToServer {
                    return (None, 0);
                }
                let seq = pkt.tcp().map(|t| t.seq).unwrap_or(0);
                if !tracking.stream.insert(seq, payload) {
                    return (None, 0); // out-of-window or no ISN anchor
                }
                match compiled {
                    None => {
                        let assembled = tracking.stream.assembled_prefix();
                        if assembled.is_empty() || !starts_with_any(&assembled, gate_prefixes) {
                            return (None, 0);
                        }
                        let (m, scanned) =
                            config
                                .rules
                                .first_match_counted(&assembled, dir, server_port, None);
                        (m.map(|r| (r.class.clone(), r.id.clone())), scanned)
                    }
                    Some(c) => {
                        // Feed only the newly contiguous bytes. The gate is
                        // compiled into the automaton: it passes iff a gate
                        // prefix occurred at stream offset 0, and once enough
                        // bytes are in to rule that out, appends are skipped
                        // entirely (a first-wins overlap rewrite triggers a
                        // Restart, which refeeds the real prefix).
                        let scanned = match tracking.stream.drain_new_contiguous() {
                            StreamDelta::Restart(all) => {
                                tracking.stream_scan.reset();
                                c.feed(&mut tracking.stream_scan, &all);
                                all.len() as u64
                            }
                            StreamDelta::Append(new) => {
                                if c.gate_failed(&tracking.stream_scan) {
                                    0
                                } else {
                                    c.feed(&mut tracking.stream_scan, &new);
                                    new.len() as u64
                                }
                            }
                        };
                        if tracking.stream_scan.fed_bytes() == 0
                            || !c.gate_passed(&tracking.stream_scan)
                        {
                            return (None, scanned);
                        }
                        let m = c.first_match_stream(
                            &config.rules,
                            &tracking.stream_scan,
                            dir,
                            server_port,
                        );
                        (m.map(rule_at), scanned)
                    }
                }
            }
        }
    }

    /// Fire a block action: inject RSTs (and optionally a block page)
    /// adjacent to this element.
    #[allow(clippy::too_many_arguments)]
    fn fire_block(
        &mut self,
        now: SimTime,
        dir: Direction,
        pkt: &ParsedPacket,
        key: FlowKey,
        effects: &mut Effects,
        class: &str,
    ) {
        let Some(policy) = self.config.policies.get(class) else {
            return;
        };
        let Some(block) = policy.block.clone() else {
            return;
        };
        // Orient addresses: who is the client for this packet?
        let (client, server, client_port, server_port) = match dir {
            Direction::ClientToServer => (pkt.ip.src, pkt.ip.dst, key.src_port, key.dst_port),
            Direction::ServerToClient => (pkt.ip.dst, pkt.ip.src, key.dst_port, key.src_port),
        };
        let (seq, ack, plen) = pkt
            .tcp()
            .map(|t| (t.seq, t.ack, pkt.payload.len() as u32))
            .unwrap_or((0, 0, 0));
        let (c_seq, c_ack) = match dir {
            Direction::ClientToServer => (ack, seq.wrapping_add(plen)),
            Direction::ServerToClient => (seq.wrapping_add(plen), ack),
        };

        if let Some(page) = &block.block_page {
            let pg = Packet::tcp(
                server,
                client,
                server_port,
                client_port,
                c_seq,
                c_ack,
                page.clone(),
            );
            effects.inject(
                Direction::ServerToClient,
                TimedPacket::now(now, pg.serialize()),
            );
        }
        for i in 0..block.rsts_to_client {
            let rst = Packet::tcp(
                server,
                client,
                server_port,
                client_port,
                c_seq.wrapping_add(i as u32),
                c_ack,
                Vec::new(),
            )
            .with_flags(TcpFlags::RST);
            effects.inject(
                Direction::ServerToClient,
                TimedPacket::now(now, rst.serialize()),
            );
        }
        for i in 0..block.rsts_to_server {
            let rst = Packet::tcp(
                client,
                server,
                client_port,
                server_port,
                c_ack.wrapping_add(i as u32),
                c_seq,
                Vec::new(),
            )
            .with_flags(TcpFlags::RST);
            effects.inject(
                Direction::ClientToServer,
                TimedPacket::now(now, rst.serialize()),
            );
        }
        if let Some(threshold) = block.server_port_penalty_after {
            self.table.record_blocked_flow(
                server,
                server_port,
                now,
                threshold,
                block.penalty_duration,
            );
        }
    }

    /// Apply the classified policy to a forwarded packet. `ft` is the
    /// caller's already-locked shard for this flow.
    fn forward_classified(
        &mut self,
        ft: &mut FlowTable,
        now: SimTime,
        dir: Direction,
        wire: PacketBuf,
        key: FlowKey,
    ) -> Verdict {
        let canonicalish = key;
        let entry = ft
            .lookup(
                canonicalish,
                now,
                &self.config.flow,
                self.config.resource.as_ref(),
            )
            .expect("caller checked classification exists");
        let class = entry
            .classification
            .as_ref()
            .expect("caller checked")
            .class
            .clone();
        let policy = self
            .config
            .policies
            .get(&class)
            .cloned()
            .unwrap_or_default();
        self.account(policy.zero_rate, wire.len());

        // Content modification (server direction). The rewrite builds a
        // fresh buffer, so it is one of the few sanctioned deep copies on
        // the forwarding path.
        let mut wire = wire;
        if dir == Direction::ServerToClient {
            if let Some((find, replace)) = &policy.rewrite {
                if let Some(rewritten) =
                    liberate_packet::mutate::rewrite_tcp_payload(&wire, find, replace)
                {
                    if let Some(j) = &self.journal {
                        j.metrics.add(Counter::PayloadCopies, 1);
                        j.metrics
                            .add(Counter::PayloadBytesCopied, rewritten.len() as u64);
                    }
                    wire = rewritten.into();
                }
            }
        }

        // Deprioritization latency.
        let base = match policy.delay {
            Some(d) => now + d,
            None => now,
        };

        if let (Some((rate, burst)), Direction::ServerToClient) = (policy.throttle, dir) {
            let entry = ft
                .lookup(key, now, &self.config.flow, self.config.resource.as_ref())
                .expect("still present");
            let c = entry.classification.as_mut().expect("still classified");
            let shaper = c
                .shaper
                .get_or_insert_with(|| TokenBucket::new(rate, burst));
            let at = shaper.schedule(base, wire.len());
            return Verdict::Forward(vec![TimedPacket { at, wire }]);
        }
        Verdict::Forward(vec![TimedPacket { at: base, wire }])
    }
}

impl PathElement for DpiDevice {
    fn name(&self) -> &str {
        &self.config.name
    }

    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }

    fn attach_journal(&mut self, journal: &Arc<Journal>) {
        // Churn accumulated before attachment stays local; the journal
        // sees deltas from this point on.
        self.flows_created_pending = 0;
        self.flows_evicted_pending = 0;
        self.journal = Some(journal.clone());
    }

    fn process(
        &mut self,
        now: SimTime,
        dir: Direction,
        wire: PacketBuf,
        effects: &mut Effects,
    ) -> Verdict {
        let verdict = self.process_packet(now, dir, wire, effects);
        self.sync_flow_metrics();
        verdict
    }
}

impl DpiDevice {
    fn process_packet(
        &mut self,
        now: SimTime,
        dir: Direction,
        wire: PacketBuf,
        effects: &mut Effects,
    ) -> Verdict {
        self.last_seen = now;
        let len = wire.len();
        let Some(mut pkt) = ParsedPacket::parse(&wire) else {
            self.account(false, len);
            return Verdict::pass(now, wire);
        };
        let defects = validate_wire(&wire);

        // A lax device parses the transport header regardless of a bogus
        // protocol number: re-view the bytes as TCP for classification
        // only (the forwarded packet is untouched).
        if self.config.loose_transport_parsing
            && pkt.ip.fragment_offset == 0
            && matches!(
                pkt.transport,
                liberate_packet::packet::ParsedTransport::Other(p)
                    if p != liberate_packet::ipv4::protocol::ICMP
            )
        {
            if wire.len() > 9 {
                // lint: allow(payload-copy) PacketBuf refcount bump; the
                // actual copy happens in make_mut below, which tallies it.
                let mut patched = wire.clone();
                let mut tally = CopyTally::default();
                patched.make_mut(&mut tally)[9] = liberate_packet::ipv4::protocol::TCP;
                if let Some(j) = &self.journal {
                    if !tally.is_empty() {
                        j.metrics.add(Counter::PayloadCopies, tally.copies);
                        j.metrics.add(Counter::PayloadBytesCopied, tally.bytes);
                    }
                }
                if let Some(as_tcp) = ParsedPacket::parse(&patched) {
                    if as_tcp.tcp().is_some() {
                        pkt = as_tcp;
                    }
                }
            }
        }

        // Packets failing the device's validation are invisible to the
        // classifier but still forwarded.
        if !self.config.validation.processes(&defects) {
            self.account(false, len);
            return Verdict::pass(now, wire);
        }

        // Fragments and unknown transports cannot be attributed to a flow.
        let Some(key) = FlowKey::from_packet(&pkt) else {
            self.account(false, len);
            return Verdict::pass(now, wire);
        };
        let (server_addr, server_port) = match dir {
            Direction::ClientToServer => (pkt.ip.dst, key.dst_port),
            Direction::ServerToClient => (pkt.ip.src, key.src_port),
        };

        // GFC-style residual penalty: all traffic toward a penalized
        // server:port is disrupted regardless of content.
        if dir == Direction::ClientToServer
            && self.table.is_penalized(server_addr, server_port, now)
        {
            // Find the blocking class to reuse its RST behaviour.
            if let Some((class, _)) = self
                .config
                .policies
                .iter()
                .find(|(_, p)| p.block.is_some())
                .map(|(c, p)| (c.clone(), p.clone()))
            {
                self.fire_block(now, dir, &pkt, key, effects, &class);
            }
            self.account(false, len);
            return Verdict::pass(now, wire);
        }

        // Everything from here on reads or writes this flow's entry: take
        // the owning shard's lock once for the rest of the packet. The
        // guard borrows a local clone of the `Arc` so `self` stays free,
        // and its lifetime-counter deltas are folded into this device's
        // pending journal figures on the way out.
        let table = Arc::clone(&self.table);
        let mut shard = table.shard(key);
        let verdict =
            self.process_flow(&mut shard, now, dir, &pkt, key, wire, effects, server_port);
        self.absorb_shard_deltas(shard);
        verdict
    }

    /// Per-flow stages of packet processing, run under the flow's shard
    /// lock (`ft`). May take the cross-shard penalty lock (via
    /// `fire_block`) — that nesting is the declared lock order.
    #[allow(clippy::too_many_arguments)]
    fn process_flow(
        &mut self,
        ft: &mut FlowTable,
        now: SimTime,
        dir: Direction,
        pkt: &ParsedPacket,
        key: FlowKey,
        wire: PacketBuf,
        effects: &mut Effects,
        server_port: u16,
    ) -> Verdict {
        let len = wire.len();
        let is_tcp = pkt.tcp().is_some();
        let is_udp = pkt.udp().is_some();

        // RST observation affects flow state.
        if let Some(t) = pkt.tcp() {
            if t.flags.rst {
                if ft.apply_rst(key, &self.config.flow) {
                    self.journal_incr(Counter::FlowResets);
                    self.journal_record(now, EventKind::FlowReset);
                }
                self.account(false, len);
                return Verdict::pass(now, wire);
            }
        }

        // Flow entry management.
        let window_bytes = self.window_bytes();
        let have_entry = ft
            .lookup(key, now, &self.config.flow, self.config.resource.as_ref())
            .is_some();
        if !have_entry {
            let is_flow_start = if is_tcp {
                let t = pkt.tcp().expect("is_tcp");
                t.flags.syn && !t.flags.ack
            } else {
                is_udp && dir == Direction::ClientToServer
            };
            if !is_flow_start {
                // Mid-flow packet for an unknown (or evicted) flow: not
                // inspected. This is what pause- and RST-based flushing
                // exploit.
                self.account(false, len);
                return Verdict::pass(now, wire);
            }
            let entry = ft.create(key, now, window_bytes);
            if is_tcp {
                let t = pkt.tcp().expect("is_tcp");
                if let Some(tr) = entry.tracking.as_mut() {
                    tr.stream.base_seq = Some(t.seq.wrapping_add(1));
                }
            } else if let Some(tr) = entry.tracking.as_mut() {
                tr.stream.base_seq = Some(0);
            }
        }

        // Refresh activity.
        {
            let entry = ft
                .lookup(key, now, &self.config.flow, self.config.resource.as_ref())
                .expect("present");
            entry.last_activity = now;
        }

        let already_classified = ft
            .lookup(key, now, &self.config.flow, self.config.resource.as_ref())
            .map(|e| e.classification.is_some())
            .unwrap_or(false);

        // Decide whether to inspect this packet.
        let eligible = !pkt.payload.is_empty()
            && self.config.inspect.inspects_port(server_port)
            && (is_tcp || (is_udp && self.config.inspect.inspects_udp))
            && (!already_classified || !self.config.inspect.match_and_forget);

        if eligible {
            let compiled = self.compiled_rules();
            // The transport payload is always the tail of the wire buffer
            // (`ParsedPacket::parse` slices to the end), so this view
            // aliases the in-flight bytes — inspection and reassembly
            // buffering never copy them.
            let payload = wire.slice(wire.len() - pkt.payload.len()..);
            let (matched, scanned) = {
                let config = &self.config;
                let entry = ft
                    .lookup(key, now, &config.flow, config.resource.as_ref())
                    .expect("present");
                Self::inspect(
                    entry,
                    config,
                    compiled.as_deref(),
                    pkt,
                    &payload,
                    dir,
                    server_port,
                )
            };
            if scanned > 0 {
                if let Some(j) = &self.journal {
                    j.metrics.add(Counter::MatcherBytesScanned, scanned);
                }
            }
            if let Some((class, rule_id)) = matched {
                let newly = !already_classified;
                {
                    let entry = ft
                        .lookup(key, now, &self.config.flow, self.config.resource.as_ref())
                        .expect("present");
                    if entry.classification.is_none() {
                        entry.classification = Some(Classification {
                            class: class.clone(),
                            rule_id: rule_id.clone(),
                            at: now,
                            shaper: None,
                            block_fired: false,
                            result_timeout: self.config.flow.result_timeout,
                        });
                    }
                }
                if newly {
                    self.journal_incr(Counter::Verdicts);
                    self.journal_record(
                        now,
                        EventKind::ClassifierVerdict {
                            class: class.clone(),
                            rule_id: rule_id.clone(),
                        },
                    );
                    self.events.push(ClassificationEvent {
                        at: now,
                        flow: key,
                        class: class.clone(),
                        rule_id,
                    });
                    self.fire_block(now, dir, pkt, key, effects, &class);
                    if let Some(entry) =
                        ft.lookup(key, now, &self.config.flow, self.config.resource.as_ref())
                    {
                        if let Some(c) = entry.classification.as_mut() {
                            c.block_fired = true;
                        }
                    }
                }
            }
        }

        // Forward under whatever classification now stands.
        let classified_now = ft
            .lookup(key, now, &self.config.flow, self.config.resource.as_ref())
            .map(|e| e.classification.is_some())
            .unwrap_or(false);
        if classified_now {
            self.forward_classified(ft, now, dir, wire, key)
        } else {
            self.account(false, len);
            Verdict::pass(now, wire)
        }
    }
}
