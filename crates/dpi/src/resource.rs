//! The time-of-day resource model behind Figure 4.
//!
//! §6.5: the GFC flushes idle connection-tracking state faster during busy
//! hours ("likely due to classification results being flushed due to
//! scarce resources"), so delay-based evasion needs only ~40 s at peak but
//! fails even at 240 s in the quiet early-morning hours. We model the
//! effective idle-eviction threshold as a function of local time of day.

use std::time::Duration;

use liberate_netsim::time::SimTime;

/// Maps simulation time to the middlebox's current idle-eviction threshold
/// for pre-match flow-tracking state.
#[derive(Debug, Clone)]
pub struct TimeOfDayLoad {
    /// Wall-clock second-of-day at which the simulation's t=0 falls.
    pub sim_start_wallclock_secs: u64,
    /// Eviction threshold at peak load (shortest).
    pub busy_eviction: Duration,
    /// Eviction threshold at moderate load.
    pub normal_eviction: Duration,
    /// Threshold during quiet hours — `None` means state is effectively
    /// never evicted (delays up to the paper's 240 s ceiling fail).
    pub quiet_eviction: Option<Duration>,
    /// Per-flow variance in percent: the effective threshold is scaled by
    /// a deterministic pseudo-random factor in `[1 - j/100, 1 + j/100]`.
    /// The paper saw short delays succeed "only for a subset of tests"
    /// (§6.5); 0 disables the variance (the Table 3 runs use 0 so the
    /// matrix stays exactly reproducible).
    pub jitter_pct: u8,
}

/// Coarse load level by hour of day.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LoadLevel {
    Quiet,
    Normal,
    Busy,
}

/// Hour-of-day → load level for a national network: quiet 01:00–08:00,
/// busy 12:00–14:00 and 19:00–23:00, normal otherwise.
pub fn load_level_for_hour(hour: u64) -> LoadLevel {
    match hour {
        1..=7 => LoadLevel::Quiet,
        12..=13 | 19..=22 => LoadLevel::Busy,
        _ => LoadLevel::Normal,
    }
}

impl TimeOfDayLoad {
    /// The GFC model used throughout the experiments: 40 s eviction at
    /// peak, 120 s normally, no eviction in the quiet hours. Values chosen
    /// so the minimum successful delay sweeps the paper's observed
    /// 40–240 s range across the day.
    pub fn gfc(sim_start_wallclock_secs: u64) -> TimeOfDayLoad {
        TimeOfDayLoad {
            sim_start_wallclock_secs,
            busy_eviction: Duration::from_secs(40),
            normal_eviction: Duration::from_secs(120),
            quiet_eviction: None,
            jitter_pct: 0,
        }
    }

    /// Enable per-flow threshold variance (see [`TimeOfDayLoad::jitter_pct`]).
    pub fn with_jitter(mut self, pct: u8) -> TimeOfDayLoad {
        self.jitter_pct = pct.min(90);
        self
    }

    /// Current local hour of day (0–23) at simulation time `now`.
    pub fn hour(&self, now: SimTime) -> u64 {
        now.time_of_day_secs(self.sim_start_wallclock_secs) / 3600
    }

    /// The idle-eviction threshold in force at `now`. `None` = no
    /// eviction.
    pub fn eviction_threshold(&self, now: SimTime) -> Option<Duration> {
        let base = match load_level_for_hour(self.hour(now)) {
            LoadLevel::Busy => Some(self.busy_eviction),
            LoadLevel::Normal => Some(self.normal_eviction),
            LoadLevel::Quiet => self.quiet_eviction,
        }?;
        if self.jitter_pct == 0 {
            return Some(base);
        }
        // Deterministic pseudo-random factor from the query instant.
        let mut h = now.as_micros() ^ 0x9e37_79b9_7f4a_7c15;
        h ^= h >> 33;
        h = h.wrapping_mul(0xff51_afd7_ed55_8ccd);
        h ^= h >> 33;
        let span = self.jitter_pct as i64;
        let offset_pct = (h % (2 * span as u64 + 1)) as i64 - span;
        let scaled = base.as_secs_f64() * (1.0 + offset_pct as f64 / 100.0);
        Some(Duration::from_secs_f64(scaled.max(1.0)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn load_levels_cover_day() {
        assert_eq!(load_level_for_hour(3), LoadLevel::Quiet);
        assert_eq!(load_level_for_hour(13), LoadLevel::Busy);
        assert_eq!(load_level_for_hour(20), LoadLevel::Busy);
        assert_eq!(load_level_for_hour(10), LoadLevel::Normal);
        assert_eq!(load_level_for_hour(0), LoadLevel::Normal);
    }

    #[test]
    fn gfc_thresholds_by_time() {
        // Simulation starting at midnight.
        let model = TimeOfDayLoad::gfc(0);
        // 03:00 — quiet: no eviction.
        assert_eq!(model.eviction_threshold(SimTime::from_secs(3 * 3600)), None);
        // 13:00 — busy: 40 s.
        assert_eq!(
            model.eviction_threshold(SimTime::from_secs(13 * 3600)),
            Some(Duration::from_secs(40))
        );
        // 10:00 — normal: 120 s.
        assert_eq!(
            model.eviction_threshold(SimTime::from_secs(10 * 3600)),
            Some(Duration::from_secs(120))
        );
    }

    #[test]
    fn jitter_varies_deterministically_within_band() {
        let model = TimeOfDayLoad::gfc(12 * 3600).with_jitter(50);
        let mut seen = std::collections::BTreeSet::new();
        for i in 0..50u64 {
            let t = SimTime::from_micros(i * 1_234_567);
            let d = model.eviction_threshold(t).unwrap();
            // Band: 40 s ± 50 %.
            assert!(
                d >= Duration::from_secs(20) && d <= Duration::from_secs(60),
                "{d:?}"
            );
            // Deterministic: same instant, same answer.
            assert_eq!(model.eviction_threshold(t), Some(d));
            seen.insert(d.as_millis());
        }
        assert!(seen.len() > 10, "thresholds actually vary: {}", seen.len());
    }

    #[test]
    fn hour_wraps_across_days() {
        let model = TimeOfDayLoad::gfc(23 * 3600); // starts at 23:00
        assert_eq!(model.hour(SimTime::from_secs(2 * 3600)), 1);
    }
}
