//! Byte-pattern search used by the rule engine.
//!
//! Real DPI boxes use multi-pattern automata; for the flow sizes in these
//! experiments a windowed scan is plenty and keeps the behaviour obvious.

/// First occurrence of `needle` in `haystack`.
pub fn find(haystack: &[u8], needle: &[u8]) -> Option<usize> {
    if needle.is_empty() || haystack.len() < needle.len() {
        return None;
    }
    haystack.windows(needle.len()).position(|w| w == needle)
}

/// Whether `haystack` contains `needle`.
pub fn contains(haystack: &[u8], needle: &[u8]) -> bool {
    find(haystack, needle).is_some()
}

/// Whether `data` starts with any of `prefixes`.
pub fn starts_with_any(data: &[u8], prefixes: &[Vec<u8>]) -> bool {
    prefixes.iter().any(|p| data.starts_with(p))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn find_positions() {
        assert_eq!(
            find(b"Host: cloudfront.net\r\n", b"cloudfront.net"),
            Some(6)
        );
        assert_eq!(find(b"abc", b"abc"), Some(0));
        assert_eq!(find(b"abc", b"abcd"), None);
        assert_eq!(find(b"abc", b""), None);
    }

    #[test]
    fn prefix_matching() {
        let prefixes = vec![b"GET ".to_vec(), vec![0x16, 0x03]];
        assert!(starts_with_any(b"GET / HTTP/1.1", &prefixes));
        assert!(starts_with_any(&[0x16, 0x03, 0x01, 0x00], &prefixes));
        assert!(!starts_with_any(b"POST /", &prefixes));
        assert!(!starts_with_any(b"", &prefixes));
    }
}
