//! Classifier rules: the matching fields the paper reverse-engineers.
//!
//! Every classifier studied matched keywords in payload bytes — HTTP Host
//! headers, TLS SNI, STUN attribute types (§6) — optionally constrained by
//! direction, server port, and position in the flow.

use liberate_packet::flow::Direction;

use crate::matcher::contains;

/// Where in the flow a keyword must appear for the rule to fire.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PositionConstraint {
    /// Anywhere in the inspected data.
    Anywhere,
    /// Only within the i-th payload-bearing packet of the constrained
    /// direction (0-based). The testbed's Skype rule matches the STUN
    /// attribute only in the first client packet (§6.1).
    PacketIndex(usize),
}

/// One classification rule.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MatchRule {
    /// Identifier for reports ("binge-on-cloudfront").
    pub id: String,
    /// Traffic class assigned on match ("video", "skype", "blocked").
    pub class: String,
    /// The byte pattern to search for.
    pub keyword: Vec<u8>,
    /// Restrict matching to payloads traveling this direction
    /// (`None` = either).
    pub direction: Option<Direction>,
    /// Restrict to flows whose *server* port is in this list
    /// (`None` = any port). Iran and AT&T only classify port 80 (§6.3,
    /// §6.6).
    pub server_ports: Option<Vec<u16>>,
    pub position: PositionConstraint,
}

impl MatchRule {
    /// A keyword rule with no constraints beyond the pattern.
    pub fn keyword(id: &str, class: &str, keyword: impl Into<Vec<u8>>) -> MatchRule {
        MatchRule {
            id: id.to_string(),
            class: class.to_string(),
            keyword: keyword.into(),
            direction: None,
            server_ports: None,
            position: PositionConstraint::Anywhere,
        }
    }

    pub fn client_only(mut self) -> MatchRule {
        self.direction = Some(Direction::ClientToServer);
        self
    }

    pub fn server_only(mut self) -> MatchRule {
        self.direction = Some(Direction::ServerToClient);
        self
    }

    pub fn on_ports(mut self, ports: impl Into<Vec<u16>>) -> MatchRule {
        self.server_ports = Some(ports.into());
        self
    }

    pub fn in_packet(mut self, index: usize) -> MatchRule {
        self.position = PositionConstraint::PacketIndex(index);
        self
    }

    /// Does this rule apply to a flow with the given server port?
    pub fn applies_to_port(&self, server_port: u16) -> bool {
        match &self.server_ports {
            None => true,
            Some(ports) => ports.contains(&server_port),
        }
    }

    /// Does this rule apply to data traveling in `dir`?
    pub fn applies_to_direction(&self, dir: Direction) -> bool {
        self.direction.map(|d| d == dir).unwrap_or(true)
    }

    /// Match against a chunk of inspected data. `packet_index` is the
    /// 0-based payload-packet index when the data is a single packet's
    /// payload, or `None` when the data is a reassembled stream (position
    /// constraints then never match — a position-constrained rule needs
    /// per-packet visibility).
    pub fn matches(
        &self,
        data: &[u8],
        dir: Direction,
        server_port: u16,
        packet_index: Option<usize>,
    ) -> bool {
        if !self.applies_to_port(server_port) || !self.applies_to_direction(dir) {
            return false;
        }
        match self.position {
            PositionConstraint::Anywhere => contains(data, &self.keyword),
            PositionConstraint::PacketIndex(want) => {
                packet_index == Some(want) && contains(data, &self.keyword)
            }
        }
    }
}

/// An ordered rule set; first match wins.
#[derive(Debug, Clone, Default)]
pub struct RuleSet {
    pub rules: Vec<MatchRule>,
}

impl RuleSet {
    pub fn new(rules: Vec<MatchRule>) -> RuleSet {
        RuleSet { rules }
    }

    /// First matching rule for this data chunk.
    pub fn first_match(
        &self,
        data: &[u8],
        dir: Direction,
        server_port: u16,
        packet_index: Option<usize>,
    ) -> Option<&MatchRule> {
        self.rules
            .iter()
            .find(|r| r.matches(data, dir, server_port, packet_index))
    }

    /// [`RuleSet::first_match`] plus the scan cost it paid: `data.len()`
    /// for every rule whose keyword was actually searched (rules filtered
    /// out by port/direction/position or with empty keywords cost
    /// nothing; the scan stops at the first match). This is the naive
    /// model's contribution to the `matcher-bytes-scanned` counter.
    pub fn first_match_counted(
        &self,
        data: &[u8],
        dir: Direction,
        server_port: u16,
        packet_index: Option<usize>,
    ) -> (Option<&MatchRule>, u64) {
        let mut scanned = 0u64;
        for r in &self.rules {
            if !r.applies_to_port(server_port) || !r.applies_to_direction(dir) {
                continue;
            }
            let position_ok = match r.position {
                PositionConstraint::Anywhere => true,
                PositionConstraint::PacketIndex(want) => packet_index == Some(want),
            };
            if !position_ok || r.keyword.is_empty() {
                continue;
            }
            scanned += data.len() as u64;
            if contains(data, &r.keyword) {
                return (Some(r), scanned);
            }
        }
        (None, scanned)
    }

    pub fn is_empty(&self) -> bool {
        self.rules.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keyword_rule_matches_anywhere() {
        let r = MatchRule::keyword("cf", "video", &b"cloudfront.net"[..]);
        assert!(r.matches(
            b"GET / HTTP/1.1\r\nHost: x.cloudfront.net\r\n",
            Direction::ClientToServer,
            80,
            Some(0)
        ));
        assert!(r.matches(b"cloudfront.net", Direction::ServerToClient, 443, None));
        assert!(!r.matches(b"cloudfront.com", Direction::ClientToServer, 80, Some(0)));
    }

    #[test]
    fn direction_constraint() {
        let r = MatchRule::keyword("ct", "video", &b"Content-Type: video"[..]).server_only();
        assert!(!r.matches(b"Content-Type: video", Direction::ClientToServer, 80, None));
        assert!(r.matches(b"Content-Type: video", Direction::ServerToClient, 80, None));
    }

    #[test]
    fn port_constraint() {
        let r = MatchRule::keyword("fb", "blocked", &b"facebook.com"[..]).on_ports([80]);
        assert!(r.matches(b"facebook.com", Direction::ClientToServer, 80, None));
        assert!(!r.matches(b"facebook.com", Direction::ClientToServer, 8080, None));
        assert!(r.applies_to_port(80));
        assert!(!r.applies_to_port(443));
    }

    #[test]
    fn position_constraint_requires_packet_index() {
        let r = MatchRule::keyword("sq", "skype", vec![0x80, 0x55])
            .client_only()
            .in_packet(0);
        assert!(r.matches(
            &[0, 1, 0x80, 0x55],
            Direction::ClientToServer,
            3478,
            Some(0)
        ));
        assert!(!r.matches(
            &[0, 1, 0x80, 0x55],
            Direction::ClientToServer,
            3478,
            Some(1)
        ));
        // Reassembled stream data has no packet index: position rules skip.
        assert!(!r.matches(&[0, 1, 0x80, 0x55], Direction::ClientToServer, 3478, None));
    }

    #[test]
    fn first_match_counted_agrees_and_counts() {
        let rs = RuleSet::new(vec![
            MatchRule::keyword("srv", "a", &b"zzz"[..]).server_only(),
            MatchRule::keyword("empty", "b", Vec::new()),
            MatchRule::keyword("miss", "c", &b"nothere"[..]),
            MatchRule::keyword("hit", "d", &b"shared"[..]),
            MatchRule::keyword("after", "e", &b"shared"[..]),
        ]);
        let data = b"xx shared";
        let (m, scanned) = rs.first_match_counted(data, Direction::ClientToServer, 80, None);
        assert_eq!(
            m.map(|r| r.id.as_str()),
            rs.first_match(data, Direction::ClientToServer, 80, None)
                .map(|r| r.id.as_str())
        );
        // srv filtered by direction, empty keyword skipped, miss + hit
        // scanned, the rule after the match never reached.
        assert_eq!(scanned, 2 * data.len() as u64);
        // Server direction: srv, miss, and hit all scan (hit matches).
        let (m, scanned) = rs.first_match_counted(data, Direction::ServerToClient, 80, None);
        assert_eq!(m.map(|r| r.id.as_str()), Some("hit"));
        assert_eq!(scanned, 3 * data.len() as u64);
        // No applicable rule at all (all filtered): zero cost.
        let only = RuleSet::new(vec![
            MatchRule::keyword("cli", "a", &b"shared"[..]).client_only()
        ]);
        let (m, scanned) = only.first_match_counted(data, Direction::ServerToClient, 80, None);
        assert!(m.is_none());
        assert_eq!(scanned, 0);
    }

    #[test]
    fn first_match_wins() {
        let rs = RuleSet::new(vec![
            MatchRule::keyword("a", "classA", &b"shared"[..]),
            MatchRule::keyword("b", "classB", &b"shared"[..]),
        ]);
        let m = rs
            .first_match(b"shared bytes", Direction::ClientToServer, 80, Some(0))
            .unwrap();
        assert_eq!(m.class, "classA");
    }
}
