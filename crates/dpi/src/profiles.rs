//! Device and environment profiles calibrated to the paper's six
//! evaluation settings (§6.1–§6.6). Every knob cites the observation that
//! fixes it; the resulting Table 3 matrix is asserted wholesale by the
//! `table3` experiment and the workspace integration tests.

use std::collections::HashMap;
use std::net::Ipv4Addr;
use std::sync::Arc;
use std::time::Duration;

use liberate_netsim::blueprint::{ElementFactory, NetworkBlueprint};
use liberate_netsim::element::PathElement;
use liberate_netsim::filter::{FilterPolicy, FragmentHandling};
use liberate_netsim::firewall::StatefulFirewall;
use liberate_netsim::hop::RouterHop;
use liberate_netsim::network::Network;
use liberate_netsim::os::{OsKind, OsProfile};
use liberate_netsim::server::{ServerApp, ServerHost};
use liberate_netsim::shaper::LinkShaper;
use liberate_obs::Journal;
use liberate_packet::validate::Malformation::*;
use liberate_substrate::nft::{WirePolicy, WireRule, WireRuleset};

use crate::actions::{BlockBehavior, Policy};
use crate::automaton::MatcherKind;
use crate::device::{DpiConfig, DpiDevice};
use crate::inspect::{FlowConfig, InspectScope, InspectionPolicy, ReassemblyMode, RstEffect};
use crate::proxy::{ProxyConfig, TransparentProxy};
use crate::resource::TimeOfDayLoad;
use crate::rules::{MatchRule, RuleSet};
use crate::sharded::ShardedFlowTable;
use crate::validation::ValidationModel;

/// Client address used by every environment.
pub const CLIENT_ADDR: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 2);
/// Server (replay server) address used by every environment.
pub const SERVER_ADDR: Ipv4Addr = Ipv4Addr::new(203, 0, 113, 10);
/// Canonical name of the DPI element on the path.
pub const DPI_NAME: &str = "dpi";

/// The six evaluation environments.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EnvKind {
    /// §6.1: carrier-grade DPI box in a lab, direct classifier readout.
    Testbed,
    /// §6.2: T-Mobile US Binge On / Music Freedom (zero-rating + shaping).
    TMobile,
    /// §6.3: AT&T Stream Saver (transparent HTTP proxy, 1.5 Mbps).
    Att,
    /// §6.4: Sprint (no DPI found).
    Sprint,
    /// §6.5: the Great Firewall of China (RST blocking).
    Gfc,
    /// §6.6: Iran (403 + RST blocking, per-packet, port 80).
    Iran,
}

impl EnvKind {
    pub const ALL: [EnvKind; 6] = [
        EnvKind::Testbed,
        EnvKind::TMobile,
        EnvKind::Att,
        EnvKind::Sprint,
        EnvKind::Gfc,
        EnvKind::Iran,
    ];

    /// The five environments of Table 3 (Sprint has no classifier).
    pub const TABLE3: [EnvKind; 5] = [
        EnvKind::Testbed,
        EnvKind::TMobile,
        EnvKind::Gfc,
        EnvKind::Iran,
        EnvKind::Att,
    ];

    pub fn name(self) -> &'static str {
        match self {
            EnvKind::Testbed => "Testbed",
            EnvKind::TMobile => "T-Mobile",
            EnvKind::Att => "AT&T",
            EnvKind::Sprint => "Sprint",
            EnvKind::Gfc => "China",
            EnvKind::Iran => "Iran",
        }
    }
}

/// Gate prefixes for protocol anchoring: HTTP methods, a TLS handshake
/// record, and a STUN binding request.
fn gate_prefixes() -> Vec<Vec<u8>> {
    vec![
        b"GET ".to_vec(),
        b"POST ".to_vec(),
        b"HEAD ".to_vec(),
        vec![0x16, 0x03],
        vec![0x00, 0x01],
    ]
}

/// Rules recognizing the built-in application traces, shared by the
/// testbed and T-Mobile devices (hostnames, SNI fragments, a user-agent
/// token, and the Skype STUN attribute — §6.1/§6.2's "matching fields").
fn video_music_rules() -> Vec<MatchRule> {
    vec![
        MatchRule::keyword("cf-host", "video", &b"cloudfront.net"[..]).client_only(),
        MatchRule::keyword("yt-sni", "video", &b".googlevideo.com"[..]).client_only(),
        MatchRule::keyword("espn-host", "video", &b"espncdn.com"[..]).client_only(),
        MatchRule::keyword("nbc-host", "video", &b"nbcsports.com"[..]).client_only(),
        MatchRule::keyword("spotify-host", "music", &b"spotify.com"[..]).client_only(),
        // An innocuous "web browsing" class with a no-op policy: the decoy
        // class A used by inert-packet insertion (Fig. 2).
        MatchRule::keyword("web", "web", &b"example.org"[..]).client_only(),
    ]
}

/// §6.1 testbed device: lax validation, gated per-packet matching over the
/// first 5 payload packets, 120 s result/tracking timeouts, RST shortens
/// the result timeout to 10 s.
pub fn testbed_device() -> DpiConfig {
    let mut rules = video_music_rules();
    // The Skype rule: the MS-SERVICE-QUALITY attribute type (0x8055) in
    // the first client packet (§6.1).
    rules.push(
        MatchRule::keyword("skype-sq", "voip", vec![0x80, 0x55])
            .client_only()
            .in_packet(0),
    );
    let mut policies = HashMap::new();
    policies.insert("video".to_string(), Policy::throttle(1_500_000, 420_000));
    policies.insert("music".to_string(), Policy::throttle(1_500_000, 420_000));
    policies.insert("voip".to_string(), Policy::throttle(256_000, 64_000));
    policies.insert("web".to_string(), Policy::default());
    DpiConfig {
        name: DPI_NAME.to_string(),
        rules: RuleSet::new(rules),
        inspect: InspectionPolicy {
            scope: InspectScope::Packets(5),
            reassembly: ReassemblyMode::GatedPerPacket {
                gate_prefixes: gate_prefixes(),
            },
            match_and_forget: true,
            inspects_udp: true,
            port_whitelist: None,
        },
        // "our testbed device does not check for a wide range of invalid
        // packet header values" (§1) — it rejects only what it cannot
        // parse at all.
        validation: ValidationModel::ignoring([
            IpVersionInvalid,
            IpHeaderLengthInvalid,
            IpTotalLengthShort,
            TcpDataOffsetInvalid,
        ]),
        flow: FlowConfig {
            result_timeout: Some(Duration::from_secs(120)),
            tracking_timeout: Some(Duration::from_secs(120)),
            rst_after_match: RstEffect::ShortenTimeout(Duration::from_secs(10)),
            rst_before_match: RstEffect::FlushImmediately,
        },
        policies,
        resource: None,
        loose_transport_parsing: true,
        matcher: MatcherKind::Automaton,
    }
}

/// §6.2 T-Mobile device: GET/TLS-gated stream window of 4 packets (so an
/// in-order split of 5+ pushes the matching field out of the window),
/// strict-ish validation except IP options and TTL, no UDP classification,
/// results persist > 240 s, RSTs flush immediately.
pub fn tmus_device() -> DpiConfig {
    let mut policies = HashMap::new();
    policies.insert(
        "video".to_string(),
        Policy::zero_rated_and_throttled(1_500_000, 420_000),
    );
    policies.insert("music".to_string(), Policy::zero_rated());
    policies.insert("web".to_string(), Policy::default());
    DpiConfig {
        name: DPI_NAME.to_string(),
        rules: RuleSet::new(video_music_rules()),
        inspect: InspectionPolicy {
            scope: InspectScope::Packets(5),
            reassembly: ReassemblyMode::GatedStream {
                gate_prefixes: gate_prefixes(),
                window_packets: 4,
            },
            match_and_forget: true,
            inspects_udp: false, // "TMUS does not classify UDP traffic"
            port_whitelist: None,
        },
        // Partial validation (§1): IP options pass (the two option rows
        // are T-Mobile's only processed inert packets besides low TTL).
        validation: ValidationModel::ignoring([
            IpVersionInvalid,
            IpHeaderLengthInvalid,
            IpTotalLengthLong,
            IpTotalLengthShort,
            IpChecksumWrong,
            IpProtocolUnknown,
            TcpChecksumWrong,
            TcpDataOffsetInvalid,
            TcpFlagsInvalid,
            TcpAckFlagMissing,
            UdpChecksumWrong,
            UdpLengthLong,
            UdpLengthShort,
        ]),
        flow: FlowConfig {
            // "the classification result in TMUS applies to a flow for
            // more than 240 s" — effectively no timeout at probe scale.
            result_timeout: None,
            tracking_timeout: None,
            rst_after_match: RstEffect::FlushImmediately,
            rst_before_match: RstEffect::FlushImmediately,
        },
        policies,
        resource: None,
        loose_transport_parsing: false,
        matcher: MatcherKind::Automaton,
    }
}

/// §6.5 GFC device: full sequence-tracked stream reassembly anchored at
/// the SYN, GET-anchored at stream byte 0, extensive validation except TCP
/// checksums and the ACK flag, RST-before-match tears down tracking,
/// tracking eviction follows the time-of-day load model.
/// `start_time_of_day_secs` sets the wall-clock second at which sim t=0
/// falls (Figure 4 sweeps it).
pub fn gfc_device(start_time_of_day_secs: u64) -> DpiConfig {
    let mut policies = HashMap::new();
    policies.insert(
        "blocked".to_string(),
        Policy::blocking(BlockBehavior::gfc()),
    );
    DpiConfig {
        name: DPI_NAME.to_string(),
        rules: RuleSet::new(vec![MatchRule::keyword(
            "economist",
            "blocked",
            &b"economist.com"[..],
        )
        .client_only()]),
        inspect: InspectionPolicy {
            scope: InspectScope::AllPackets,
            reassembly: ReassemblyMode::FullStream {
                gate_prefixes: vec![b"GET ".to_vec(), b"POST ".to_vec(), b"HEAD ".to_vec()],
                window_bytes: 4096,
            },
            match_and_forget: true,
            inspects_udp: false, // "the GFC does not classify UDP traffic"
            port_whitelist: None,
        },
        // "the GFC does extensive packet validation" — but processes bad
        // TCP checksums and missing-ACK segments (their CC? is ✓).
        validation: ValidationModel::ignoring([
            IpVersionInvalid,
            IpHeaderLengthInvalid,
            IpTotalLengthLong,
            IpTotalLengthShort,
            IpChecksumWrong,
            IpOptionsInvalid,
            IpOptionsDeprecated,
            IpProtocolUnknown,
            TcpDataOffsetInvalid,
            TcpFlagsInvalid,
            UdpChecksumWrong,
            UdpLengthLong,
            UdpLengthShort,
        ])
        .with_seq_tracking(),
        flow: FlowConfig {
            result_timeout: None, // "delays after a matching GET never evade"
            tracking_timeout: Some(Duration::from_secs(120)), // overridden by model
            rst_after_match: RstEffect::Ignored,
            rst_before_match: RstEffect::FlushImmediately,
        },
        policies,
        resource: Some(TimeOfDayLoad::gfc(start_time_of_day_secs)),
        loose_transport_parsing: false,
        matcher: MatcherKind::Automaton,
    }
}

/// §6.6 Iran device: per-packet matching on every packet, port 80 only,
/// processes whatever reaches it (partial validation happens in-network),
/// no useful flow state.
pub fn iran_device() -> DpiConfig {
    let mut policies = HashMap::new();
    policies.insert(
        "blocked".to_string(),
        Policy::blocking(BlockBehavior::iran(
            b"HTTP/1.1 403 Forbidden\r\nContent-Type: text/html\r\n\r\n<html><body>Forbidden</body></html>"
                .to_vec(),
        )),
    );
    DpiConfig {
        name: DPI_NAME.to_string(),
        rules: RuleSet::new(vec![MatchRule::keyword(
            "facebook",
            "blocked",
            &b"facebook.com"[..],
        )
        .client_only()
        .on_ports([80])]),
        inspect: InspectionPolicy {
            scope: InspectScope::AllPackets,
            reassembly: ReassemblyMode::PerPacket,
            match_and_forget: false, // "the classifier checks every packet"
            inspects_udp: false,
            port_whitelist: Some(vec![80]),
        },
        validation: ValidationModel::lax(),
        flow: FlowConfig {
            result_timeout: None,
            tracking_timeout: None,
            rst_after_match: RstEffect::Ignored,
            rst_before_match: RstEffect::Ignored,
        },
        policies,
        resource: None,
        loose_transport_parsing: false,
        matcher: MatcherKind::Automaton,
    }
}

/// A fully built environment: the network plus path metadata the
/// experiments need.
pub struct Environment {
    pub kind: EnvKind,
    pub network: Network,
    /// TTL-decrementing hops before the middlebox (a TTL of
    /// `hops_before_middlebox + 1` reaches it without reaching the
    /// server).
    pub hops_before_middlebox: u8,
    pub total_hops: u8,
    /// Shared observability journal (the same handle the network and its
    /// DPI elements write into).
    pub journal: Arc<Journal>,
}

impl Environment {
    /// Replace the journal, propagating the handle to the network and all
    /// path elements. Used when several sessions share one journal.
    pub fn attach_journal(&mut self, journal: Arc<Journal>) {
        self.network.set_journal(journal.clone());
        self.journal = journal;
    }
    /// Downcast accessor for the DPI device, when the environment has one.
    pub fn dpi_mut(&mut self) -> Option<&mut DpiDevice> {
        let idx = self.network.element_index(DPI_NAME)?;
        self.network
            .element_mut(idx)
            .as_any_mut()
            .downcast_mut::<DpiDevice>()
    }

    /// Downcast accessor for the transparent proxy (AT&T).
    pub fn proxy_mut(&mut self) -> Option<&mut TransparentProxy> {
        let idx = self.network.element_index("att-stream-saver")?;
        self.network
            .element_mut(idx)
            .as_any_mut()
            .downcast_mut::<TransparentProxy>()
    }
}

fn hop_addr(i: u8) -> Ipv4Addr {
    Ipv4Addr::new(172, 16, 1, i)
}

/// Wrap a concrete-element constructor as a boxed [`ElementFactory`].
fn factory<E, F>(f: F) -> ElementFactory
where
    E: PathElement + 'static,
    F: Fn() -> E + Send + Sync + 'static,
{
    Box::new(move || Box::new(f()))
}

/// A reusable recipe for one environment: the element-chain blueprint,
/// path metadata, and the single [`ShardedFlowTable`] that every DPI
/// device built from this recipe fronts. Building the same blueprint N
/// times yields N independent networks (fresh hops, shapers, proxies,
/// firewalls, journals) whose middleboxes share flow state — exactly what
/// a pool of worker sessions probing one middlebox needs.
pub struct EnvironmentBlueprint {
    kind: EnvKind,
    net: NetworkBlueprint,
    hops_before_middlebox: u8,
    total_hops: u8,
    shared_table: Arc<ShardedFlowTable>,
}

impl EnvironmentBlueprint {
    /// Lay out the element chain for `kind`. `start_time_of_day_secs`
    /// only affects the GFC (Figure 4's clock).
    pub fn new(kind: EnvKind, start_time_of_day_secs: u64) -> EnvironmentBlueprint {
        let table = Arc::new(ShardedFlowTable::default());
        let mut net = NetworkBlueprint::new(CLIENT_ADDR);
        let (hops_before, total);

        match kind {
            EnvKind::Testbed => {
                // client — DPI — router — server (§6.1). The lab router
                // drops structurally-broken IP and ACK-less data, and
                // reassembles fragments before the server (Table 3
                // footnote 2).
                let t = Arc::clone(&table);
                net.push(factory(move || {
                    DpiDevice::with_shared_table(testbed_device(), Arc::clone(&t))
                }));
                net.push(factory(|| {
                    RouterHop::new(
                        "lab-router",
                        hop_addr(1),
                        FilterPolicy::ip_hygiene()
                            .also_dropping([TcpAckFlagMissing])
                            .with_fragments(FragmentHandling::Reassemble),
                    )
                    .silent()
                }));
                hops_before = 0;
                total = 1;
            }
            EnvKind::TMobile => {
                // client — access shaper — r1 — r2(normalizer) — DPI — r3 —
                // server. TTL = 3 reaches the classifier (§6.2). The
                // cellular gateway normalizes aggressively (most inert
                // packets die in-network) and tracks TCP sequence windows;
                // invalid-option packets die *after* the classifier.
                net.push(factory(|| {
                    LinkShaper::symmetric("lte-access", 4_000_000, 900_000)
                }));
                net.push(factory(|| RouterHop::transparent("r1", hop_addr(1))));
                net.push(factory(|| StatefulFirewall::new("gw-firewall", 65_535)));
                net.push(factory(|| {
                    RouterHop::new(
                        "gw-normalizer",
                        hop_addr(2),
                        FilterPolicy::strict_normalizer()
                            .with_fragments(FragmentHandling::Reassemble),
                    )
                    .silent()
                }));
                let t = Arc::clone(&table);
                net.push(factory(move || {
                    DpiDevice::with_shared_table(tmus_device(), Arc::clone(&t))
                }));
                net.push(factory(|| {
                    RouterHop::new(
                        "core-r3",
                        hop_addr(3),
                        FilterPolicy::dropping([IpOptionsInvalid, IpOptionsDeprecated]),
                    )
                    .silent()
                }));
                hops_before = 2;
                total = 3;
            }
            EnvKind::Att => {
                // client — r1 — proxy — r2 — server (§6.3).
                net.push(factory(|| {
                    RouterHop::transparent("r1", hop_addr(1)).silent()
                }));
                net.push(factory(|| {
                    TransparentProxy::new(ProxyConfig::stream_saver())
                }));
                net.push(factory(|| {
                    RouterHop::transparent("r2", hop_addr(2)).silent()
                }));
                hops_before = 1;
                total = 2;
            }
            EnvKind::Sprint => {
                // client — access shaper — r1 — r2 — server: no DPI (§6.4).
                net.push(factory(|| {
                    LinkShaper::symmetric("lte-access", 6_000_000, 900_000)
                }));
                net.push(factory(|| {
                    RouterHop::transparent("r1", hop_addr(1)).silent()
                }));
                net.push(factory(|| {
                    RouterHop::transparent("r2", hop_addr(2)).silent()
                }));
                hops_before = 2;
                total = 2;
            }
            EnvKind::Gfc => {
                // client — r1..r9 — GFC — r10..r13 — server: a TTL of 10
                // reaches the classifier without reaching the server
                // (§6.5). The border normalizer (r5) enforces IP hygiene,
                // drops IP options and malformed-length UDP, repairs TCP
                // checksums (footnote 4), and reassembles fragments before
                // the GFC.
                for i in 1..=9u8 {
                    if i == 5 {
                        net.push(factory(move || {
                            RouterHop::new(
                                "border-normalizer",
                                hop_addr(i),
                                FilterPolicy::ip_hygiene()
                                    .also_dropping([
                                        IpOptionsInvalid,
                                        IpOptionsDeprecated,
                                        UdpLengthLong,
                                        UdpLengthShort,
                                    ])
                                    .with_fragments(FragmentHandling::Reassemble),
                            )
                            .silent()
                            .fixing_tcp_checksums()
                        }));
                    } else {
                        net.push(factory(move || {
                            RouterHop::transparent(format!("r{i}"), hop_addr(i))
                        }));
                    }
                }
                let t = Arc::clone(&table);
                net.push(factory(move || {
                    DpiDevice::with_shared_table(gfc_device(start_time_of_day_secs), Arc::clone(&t))
                }));
                for i in 10..=13u8 {
                    net.push(factory(move || {
                        RouterHop::transparent(format!("r{i}"), hop_addr(i))
                    }));
                }
                hops_before = 9;
                total = 13;
            }
            EnvKind::Iran => {
                // client — r1..r7 — DPI — firewall — r8 — server: the
                // classifier answers at a TTL of 8 (§6.6). Hard-broken IP
                // and all fragments die before the classifier; IP options
                // and malformed TCP die after it (hence footnote 3: the
                // classifier *processed* them); malformed UDP sails
                // through everywhere.
                for i in 1..=7u8 {
                    if i == 4 {
                        net.push(factory(move || {
                            RouterHop::new(
                                "edge-filter",
                                hop_addr(i),
                                FilterPolicy::ip_hygiene()
                                    .also_dropping([IpProtocolUnknown, TcpDataOffsetInvalid])
                                    .with_fragments(FragmentHandling::Drop),
                            )
                            .silent()
                        }));
                    } else {
                        net.push(factory(move || {
                            RouterHop::transparent(format!("r{i}"), hop_addr(i))
                        }));
                    }
                }
                let t = Arc::clone(&table);
                net.push(factory(move || {
                    DpiDevice::with_shared_table(iran_device(), Arc::clone(&t))
                }));
                net.push(factory(|| StatefulFirewall::new("post-firewall", 65_535)));
                net.push(factory(|| {
                    RouterHop::new(
                        "post-filter",
                        hop_addr(8),
                        FilterPolicy::dropping([
                            IpOptionsInvalid,
                            IpOptionsDeprecated,
                            TcpChecksumWrong,
                            TcpAckFlagMissing,
                            TcpFlagsInvalid,
                        ]),
                    )
                    .silent()
                }));
                hops_before = 7;
                total = 8;
            }
        }

        EnvironmentBlueprint {
            kind,
            net,
            hops_before_middlebox: hops_before,
            total_hops: total,
            shared_table: table,
        }
    }

    pub fn kind(&self) -> EnvKind {
        self.kind
    }

    /// The flow table every DPI device built from this blueprint fronts.
    pub fn shared_table(&self) -> Arc<ShardedFlowTable> {
        Arc::clone(&self.shared_table)
    }

    /// Materialize one environment: a fresh network (own journal, own
    /// element state except the shared flow table) around the given
    /// server OS and application.
    pub fn build(&self, os: OsKind, app: Box<dyn ServerApp>) -> Environment {
        let server = ServerHost::new(SERVER_ADDR, OsProfile::new(os), app);
        let journal = Arc::new(Journal::new());
        let mut network = self.net.build(server);
        network.set_journal(journal.clone());
        Environment {
            kind: self.kind,
            network,
            hops_before_middlebox: self.hops_before_middlebox,
            total_hops: self.total_hops,
            journal,
        }
    }
}

/// Lower an environment's classifier configuration into the backend-
/// neutral [`WireRuleset`] vocabulary the nftables-shaped substrate
/// programs onto a real wire. This is a *projection*, not the full
/// device model: keyword rules, port/first-packet constraints, and the
/// per-class policy kind survive; reassembly modes, validation models,
/// and flow-state timeouts are simulator-only detail the kernel ruleset
/// cannot express.
pub fn wire_ruleset(kind: EnvKind) -> WireRuleset {
    fn keyword_rules() -> Vec<WireRule> {
        vec![
            WireRule::keyword("cf-host", "video", &b"cloudfront.net"[..]),
            WireRule::keyword("yt-sni", "video", &b".googlevideo.com"[..]),
            WireRule::keyword("espn-host", "video", &b"espncdn.com"[..]),
            WireRule::keyword("nbc-host", "video", &b"nbcsports.com"[..]),
            WireRule::keyword("spotify-host", "music", &b"spotify.com"[..]),
            WireRule::keyword("web", "web", &b"example.org"[..]),
        ]
    }
    let (rules, policies) = match kind {
        EnvKind::Testbed => {
            let mut rules = keyword_rules();
            rules.push(WireRule::keyword("skype-sq", "voip", vec![0x80, 0x55]).in_packet(0));
            (
                rules,
                vec![
                    ("video".to_string(), WirePolicy::Throttle { bps: 1_500_000 }),
                    ("music".to_string(), WirePolicy::Throttle { bps: 1_500_000 }),
                    ("voip".to_string(), WirePolicy::Throttle { bps: 256_000 }),
                    ("web".to_string(), WirePolicy::NoOp),
                ],
            )
        }
        EnvKind::TMobile => (
            keyword_rules(),
            vec![
                ("video".to_string(), WirePolicy::Throttle { bps: 1_500_000 }),
                ("music".to_string(), WirePolicy::ZeroRate),
                ("web".to_string(), WirePolicy::NoOp),
            ],
        ),
        EnvKind::Att => (
            vec![WireRule::keyword("stream-saver", "video", &b"video"[..]).on_ports([80])],
            vec![("video".to_string(), WirePolicy::Throttle { bps: 1_500_000 })],
        ),
        EnvKind::Sprint => (Vec::new(), Vec::new()),
        EnvKind::Gfc => (
            vec![WireRule::keyword(
                "economist",
                "blocked",
                &b"economist.com"[..],
            )],
            vec![("blocked".to_string(), WirePolicy::Block { rsts: 3 })],
        ),
        EnvKind::Iran => (
            vec![WireRule::keyword("facebook", "blocked", &b"facebook.com"[..]).on_ports([80])],
            vec![("blocked".to_string(), WirePolicy::Block { rsts: 1 })],
        ),
    };
    let hops = match kind {
        EnvKind::Testbed => 0,
        EnvKind::TMobile => 2,
        EnvKind::Att => 1,
        EnvKind::Sprint => 2,
        EnvKind::Gfc => 9,
        EnvKind::Iran => 7,
    };
    WireRuleset {
        profile: kind.name().to_string(),
        rules,
        policies,
        hops_before_middlebox: hops,
    }
}

/// Build an environment with the given server OS and server application.
/// `start_time_of_day_secs` only affects the GFC (Figure 4's clock). One
/// blueprint, one build: a solo session gets a private flow table, same
/// as before the blueprint refactor.
pub fn build_environment(
    kind: EnvKind,
    os: OsKind,
    app: Box<dyn ServerApp>,
    start_time_of_day_secs: u64,
) -> Environment {
    EnvironmentBlueprint::new(kind, start_time_of_day_secs).build(os, app)
}

#[cfg(test)]
mod tests {
    use super::*;
    use liberate_netsim::server::EchoApp;

    #[test]
    fn environments_build_and_expose_dpi() {
        for kind in EnvKind::ALL {
            let mut env = build_environment(kind, OsKind::Linux, Box::<EchoApp>::default(), 0);
            let has_dpi = env.dpi_mut().is_some();
            let has_proxy = env.proxy_mut().is_some();
            match kind {
                EnvKind::Testbed | EnvKind::TMobile | EnvKind::Gfc | EnvKind::Iran => {
                    assert!(has_dpi, "{} should have a DPI device", kind.name());
                }
                EnvKind::Att => assert!(has_proxy, "AT&T should have a proxy"),
                EnvKind::Sprint => {
                    assert!(!has_dpi && !has_proxy, "Sprint has no middlebox")
                }
            }
        }
    }

    #[test]
    fn hop_counts_match_paper_probes() {
        let env = |k| build_environment(k, OsKind::Linux, Box::<EchoApp>::default(), 0);
        // T-Mobile: "an inert packet with TTL = 3 is sufficient" (§6.2).
        assert_eq!(env(EnvKind::TMobile).hops_before_middlebox + 1, 3);
        // GFC: "a TTL of 10 leads to misclassification" (§6.5).
        assert_eq!(env(EnvKind::Gfc).hops_before_middlebox + 1, 10);
        // Iran: "the classifier is eight hops away" (§6.6).
        assert_eq!(env(EnvKind::Iran).hops_before_middlebox + 1, 8);
    }

    #[test]
    fn blueprint_builds_share_one_flow_table() {
        let bp = EnvironmentBlueprint::new(EnvKind::Testbed, 0);
        let mut a = bp.build(OsKind::Linux, Box::<EchoApp>::default());
        let mut b = bp.build(OsKind::Linux, Box::<EchoApp>::default());
        let ta = a.dpi_mut().expect("testbed has DPI").shared_table();
        let tb = b.dpi_mut().expect("testbed has DPI").shared_table();
        assert!(Arc::ptr_eq(&ta, &tb), "workers must front one table");
        assert!(Arc::ptr_eq(&ta, &bp.shared_table()));
        // Journals, by contrast, are per-build.
        assert!(!Arc::ptr_eq(&a.journal, &b.journal));
    }

    #[test]
    fn solo_builds_get_private_flow_tables() {
        let mut a = build_environment(
            EnvKind::Testbed,
            OsKind::Linux,
            Box::<EchoApp>::default(),
            0,
        );
        let mut b = build_environment(
            EnvKind::Testbed,
            OsKind::Linux,
            Box::<EchoApp>::default(),
            0,
        );
        let ta = a.dpi_mut().expect("testbed has DPI").shared_table();
        let tb = b.dpi_mut().expect("testbed has DPI").shared_table();
        assert!(!Arc::ptr_eq(&ta, &tb));
    }

    #[test]
    fn wire_rulesets_mirror_blueprint_path_metadata() {
        for kind in EnvKind::ALL {
            let env = build_environment(kind, OsKind::Linux, Box::<EchoApp>::default(), 0);
            let rs = wire_ruleset(kind);
            assert_eq!(
                rs.hops_before_middlebox,
                env.hops_before_middlebox,
                "{}",
                kind.name()
            );
            assert_eq!(rs.profile, kind.name());
            // Every policy class is reachable through at least one rule.
            for (class, _) in &rs.policies {
                assert!(
                    rs.rules.iter().any(|r| &r.class == class),
                    "{}: unreachable policy class {class}",
                    kind.name()
                );
            }
        }
    }

    #[test]
    fn network_ttl_accounting_matches_metadata() {
        for kind in EnvKind::ALL {
            let env = build_environment(kind, OsKind::Linux, Box::<EchoApp>::default(), 0);
            assert_eq!(
                env.network.ttl_hops_total(),
                env.total_hops,
                "{}",
                kind.name()
            );
        }
    }
}
