//! Policy actions a middlebox applies to classified flows: throttling,
//! blocking (RST injection and/or block pages), and zero-rating.

use std::time::Duration;

/// How a blocking middlebox disrupts a classified flow.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BlockBehavior {
    /// Number of RST packets injected toward the client (the GFC sends
    /// 3–5, §6.5; Iran sends 2, §6.6).
    pub rsts_to_client: u8,
    /// Number of RSTs injected toward the server.
    pub rsts_to_server: u8,
    /// An unsolicited response body injected toward the client before the
    /// RSTs (Iran's "HTTP/1.1 403 Forbidden" page, §6.6).
    pub block_page: Option<Vec<u8>>,
    /// After this many *blocked flows* to the same server:port, block all
    /// subsequent flows to that pair regardless of content, for
    /// `penalty_duration` (the GFC's residual blocking, §6.5).
    pub server_port_penalty_after: Option<u32>,
    /// How long a server:port penalty lasts.
    pub penalty_duration: Duration,
}

impl BlockBehavior {
    /// GFC-style: 3–5 RSTs both ways, server:port penalty after 2 flows.
    pub fn gfc() -> BlockBehavior {
        BlockBehavior {
            rsts_to_client: 4,
            rsts_to_server: 3,
            block_page: None,
            server_port_penalty_after: Some(2),
            penalty_duration: Duration::from_secs(90),
        }
    }

    /// Iran-style: a 403 Forbidden page plus 2 RSTs to the client.
    pub fn iran(block_page: Vec<u8>) -> BlockBehavior {
        BlockBehavior {
            rsts_to_client: 2,
            rsts_to_server: 2,
            block_page: Some(block_page),
            server_port_penalty_after: None,
            penalty_duration: Duration::ZERO,
        }
    }
}

/// The policy applied to a traffic class.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Policy {
    /// Shape the flow to this rate (bits/second) with the given bucket
    /// depth in bytes.
    pub throttle: Option<(u64, u64)>,
    /// Count the flow's bytes against the zero-rated meter instead of the
    /// billed meter (T-Mobile Binge On, §6.2).
    pub zero_rate: bool,
    /// Disrupt the flow.
    pub block: Option<BlockBehavior>,
    /// Deprioritize: add this much latency to every classified packet
    /// (§4.1 lists "latency differences" among detectable differentiation).
    pub delay: Option<Duration>,
    /// Content modification: replace `0` with the same-length `1` in
    /// server-direction TCP payloads (e.g. a quality-downgrading rewrite;
    /// §4.1 lists content modification too).
    pub rewrite: Option<(Vec<u8>, Vec<u8>)>,
}

impl Policy {
    /// Add fixed latency to classified packets.
    pub fn delaying(delay: Duration) -> Policy {
        Policy {
            delay: Some(delay),
            ..Policy::default()
        }
    }

    /// Rewrite server-direction content (same-length replacement).
    pub fn rewriting(find: impl Into<Vec<u8>>, replace: impl Into<Vec<u8>>) -> Policy {
        let (find, replace) = (find.into(), replace.into());
        assert_eq!(find.len(), replace.len(), "same-length rewrites only");
        Policy {
            rewrite: Some((find, replace)),
            ..Policy::default()
        }
    }

    pub fn throttle(rate_bps: u64, burst_bytes: u64) -> Policy {
        Policy {
            throttle: Some((rate_bps, burst_bytes)),
            ..Policy::default()
        }
    }

    pub fn zero_rated() -> Policy {
        Policy {
            zero_rate: true,
            ..Policy::default()
        }
    }

    pub fn zero_rated_and_throttled(rate_bps: u64, burst_bytes: u64) -> Policy {
        Policy {
            throttle: Some((rate_bps, burst_bytes)),
            zero_rate: true,
            ..Policy::default()
        }
    }

    pub fn blocking(behavior: BlockBehavior) -> Policy {
        Policy {
            block: Some(behavior),
            ..Policy::default()
        }
    }

    pub fn is_noop(&self) -> bool {
        self.throttle.is_none()
            && !self.zero_rate
            && self.block.is_none()
            && self.delay.is_none()
            && self.rewrite.is_none()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors() {
        assert!(Policy::default().is_noop());
        assert!(!Policy::throttle(1_500_000, 64_000).is_noop());
        assert!(Policy::zero_rated().zero_rate);
        let p = Policy::zero_rated_and_throttled(1_500_000, 64_000);
        assert!(p.zero_rate && p.throttle.is_some());
        assert!(Policy::blocking(BlockBehavior::gfc()).block.is_some());
    }

    #[test]
    fn block_presets_match_paper() {
        let gfc = BlockBehavior::gfc();
        assert!(gfc.rsts_to_client >= 3 && gfc.rsts_to_client <= 5);
        assert_eq!(gfc.server_port_penalty_after, Some(2));
        let iran = BlockBehavior::iran(b"HTTP/1.1 403 Forbidden\r\n\r\n".to_vec());
        assert_eq!(iran.rsts_to_client, 2);
        assert!(iran.block_page.is_some());
    }
}
