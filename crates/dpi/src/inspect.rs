//! Inspection policy: *how much* of a flow a classifier looks at and *how*
//! it assembles what it sees. These two axes explain most of Table 3's
//! splitting/reordering column:
//!
//! - the testbed box matches **per packet** within a small packet window
//!   and gates on a protocol prefix at flow start (§6.1);
//! - T-Mobile reassembles segments **only if the first payload packet
//!   begins with `GET`** (or a TLS handshake) and searches a small window
//!   (§6.2);
//! - the GFC does **full in-order stream reassembly** with sequence
//!   tracking, anchored at flow start (§6.5);
//! - Iran matches **every packet independently**, forever (§6.6).

use std::time::Duration;

/// How a classifier assembles payload before matching.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ReassemblyMode {
    /// Match within each packet's payload independently; no reassembly,
    /// no protocol anchoring (Iran: "a per-packet classification
    /// implementation", §6.6).
    PerPacket,
    /// Per-packet matching, but the flow is only inspected at all if its
    /// *first* payload packet starts with one of `gate_prefixes` (protocol
    /// anchoring: "does this look like HTTP/TLS/STUN from byte 0?"). The
    /// testbed behaves this way — a first packet carrying a single byte
    /// defeats it (§6.1).
    GatedPerPacket { gate_prefixes: Vec<Vec<u8>> },
    /// Reassemble the client byte stream in sequence order, but only if
    /// the first *arriving* payload packet starts with one of
    /// `gate_prefixes`; search the concatenation of the first
    /// `window_packets` payload packets. T-Mobile: GET-gated, small window
    /// — in-order splits of five or more packets push the matching field
    /// out of the window, and any reordering breaks the gate (§6.2).
    GatedStream {
        gate_prefixes: Vec<Vec<u8>>,
        window_packets: usize,
    },
    /// Full, correct, sequence-tracked stream reassembly anchored at the
    /// ISN from the SYN: segments are placed at their sequence offsets, so
    /// neither splitting nor reordering changes what the matcher sees. The
    /// stream must still begin with one of `gate_prefixes` at byte 0, and
    /// only the first `window_bytes` of stream are searched (the GFC,
    /// §6.5: prepending one dummy byte defeats it; splitting does not).
    FullStream {
        gate_prefixes: Vec<Vec<u8>>,
        window_bytes: usize,
    },
}

impl ReassemblyMode {
    /// Gate prefixes, if this mode anchors on a protocol prefix.
    pub fn gate_prefixes(&self) -> Option<&[Vec<u8>]> {
        match self {
            ReassemblyMode::PerPacket => None,
            ReassemblyMode::GatedPerPacket { gate_prefixes }
            | ReassemblyMode::GatedStream { gate_prefixes, .. }
            | ReassemblyMode::FullStream { gate_prefixes, .. } => Some(gate_prefixes),
        }
    }
}

/// How much of a flow the classifier inspects before giving up.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InspectScope {
    /// The first `n` payload-bearing packets (per direction).
    Packets(usize),
    /// The first `n` payload bytes (per direction) — the other limit kind
    /// §5.1's probe ladder distinguishes ("else, we conclude that the
    /// limit is no more than k·MTU bytes").
    Bytes(usize),
    /// Every packet of the flow, indefinitely (Iran).
    AllPackets,
}

/// The complete inspection policy of a DPI device.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InspectionPolicy {
    pub scope: InspectScope,
    pub reassembly: ReassemblyMode,
    /// Once classified, stop inspecting ("match and forget", §4.2). Iran
    /// re-evaluates every packet instead.
    pub match_and_forget: bool,
    /// Whether UDP flows are inspected at all. None of the operational
    /// networks classified UDP (§6.2, §6.5, §6.6); the testbed does.
    pub inspects_udp: bool,
    /// Server ports eligible for inspection (`None` = all).
    pub port_whitelist: Option<Vec<u16>>,
}

impl InspectionPolicy {
    pub fn inspects_port(&self, server_port: u16) -> bool {
        match &self.port_whitelist {
            None => true,
            Some(p) => p.contains(&server_port),
        }
    }

    /// Is a payload packet at `packet_index` (0-based counter), whose
    /// stream starts at byte offset `byte_offset`, still within the
    /// inspection window?
    pub fn within_scope_at(&self, packet_index: usize, byte_offset: u64) -> bool {
        match self.scope {
            InspectScope::Packets(n) => packet_index < n,
            InspectScope::Bytes(n) => byte_offset < n as u64,
            InspectScope::AllPackets => true,
        }
    }

    /// Packet-count-only convenience used where no byte offset is known.
    pub fn within_scope(&self, packet_index: usize) -> bool {
        self.within_scope_at(packet_index, 0)
    }
}

/// Flow-state lifecycle configuration: how long classification results and
/// tracking state persist, and what RSTs do to them (§6's classification
/// flushing findings).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FlowConfig {
    /// Classification result lifetime with no matching traffic
    /// (testbed: 120 s; T-Mobile: longer than the 240 s probe ceiling).
    pub result_timeout: Option<Duration>,
    /// Pre-match tracking state (gate status, reassembly buffers, packet
    /// counters) lifetime while idle. When evicted, later packets look
    /// mid-flow and are not inspected.
    pub tracking_timeout: Option<Duration>,
    /// Effect of seeing a RST for a flow *after* it was classified.
    pub rst_after_match: RstEffect,
    /// Effect of seeing a RST *before* classification.
    pub rst_before_match: RstEffect,
}

/// What a RST does to middlebox flow state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RstEffect {
    /// Nothing.
    Ignored,
    /// Drop all state immediately (T-Mobile flushes on RST, §6.2; the GFC
    /// tears down pre-match tracking, §6.5).
    FlushImmediately,
    /// Shorten the result timeout to this duration (the testbed drops the
    /// 120 s timeout to 10 s after a RST, §6.1).
    ShortenTimeout(Duration),
}

#[cfg(test)]
mod tests {
    use super::*;

    fn policy(scope: InspectScope) -> InspectionPolicy {
        InspectionPolicy {
            scope,
            reassembly: ReassemblyMode::PerPacket,
            match_and_forget: true,
            inspects_udp: false,
            port_whitelist: Some(vec![80]),
        }
    }

    #[test]
    fn scope_window() {
        let p = policy(InspectScope::Packets(5));
        assert!(p.within_scope(0));
        assert!(p.within_scope(4));
        assert!(!p.within_scope(5));
        let all = policy(InspectScope::AllPackets);
        assert!(all.within_scope(1_000_000));
    }

    #[test]
    fn port_whitelist() {
        let p = policy(InspectScope::AllPackets);
        assert!(p.inspects_port(80));
        assert!(!p.inspects_port(8080));
        let open = InspectionPolicy {
            port_whitelist: None,
            ..p
        };
        assert!(open.inspects_port(8080));
    }
}
