//! Per-flow middlebox state: gate status, payload counters, stream
//! reassembly buffers, classification results, and their lifecycles
//! (timeouts, RST effects, resource-pressure eviction).

use std::collections::{BTreeMap, HashMap};
use std::net::Ipv4Addr;
use std::time::Duration;

use liberate_netsim::element::PacketBuf;
use liberate_netsim::shaper::TokenBucket;
use liberate_netsim::time::SimTime;
use liberate_packet::flow::FlowKey;

use crate::automaton::StreamScan;
use crate::inspect::{FlowConfig, RstEffect};
use crate::resource::TimeOfDayLoad;

/// Result of protocol anchoring on the first payload packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GateStatus {
    /// No payload packet seen yet.
    Pending,
    /// First payload packet matched a gate prefix: inspect the flow.
    Passed,
    /// First payload packet did not match: the flow is never inspected.
    Failed,
}

/// Client-stream reassembly buffer for `FullStream` mode: segments placed
/// at their sequence offsets relative to the ISN.
#[derive(Debug, Default, Clone)]
pub struct StreamAssembler {
    /// Client ISN + 1 (sequence number of stream byte 0), from the SYN.
    pub base_seq: Option<u32>,
    /// Segment payloads keyed by stream byte offset. Stored as shared
    /// [`PacketBuf`] views into the original wire buffers: buffering a
    /// segment for reassembly is a refcount bump, not a copy.
    segments: BTreeMap<u64, PacketBuf>,
    /// Cap on buffered stream bytes.
    window_bytes: usize,
    /// Contiguous bytes already handed out by `drain_new_contiguous`.
    drained: usize,
    /// A segment landed below `drained`: first-wins overlap may have
    /// rewritten bytes already handed out, so the next drain restarts.
    dirty: bool,
}

/// What `drain_new_contiguous` yields to a streaming consumer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StreamDelta {
    /// The newly contiguous bytes extending the prefix (possibly empty).
    Append(Vec<u8>),
    /// Already-drained bytes may have changed (a new segment claimed
    /// cells under the drained prefix): here is the full prefix again,
    /// the consumer must restart from scratch.
    Restart(Vec<u8>),
}

impl StreamAssembler {
    pub fn new(window_bytes: usize) -> StreamAssembler {
        StreamAssembler {
            base_seq: None,
            segments: BTreeMap::new(),
            window_bytes,
            drained: 0,
            dirty: false,
        }
    }

    /// Insert a segment by TCP sequence number. Returns `false` when the
    /// segment lies outside the assembly window (e.g. a wrong-sequence
    /// inert packet) and was ignored.
    pub fn insert(&mut self, seq: u32, payload: impl Into<PacketBuf>) -> bool {
        let Some(base) = self.base_seq else {
            return false;
        };
        let offset = seq.wrapping_sub(base);
        // Offsets beyond the window (including enormous "wrong sequence
        // number" values, which wrap to huge u32s) are ignored.
        if offset as u64 > self.window_bytes as u64 {
            return false;
        }
        // First arrival at an offset wins: this is what lets an inert
        // decoy segment shadow the real request that later reuses the same
        // sequence range (wrong-checksum / missing-ACK evasion, §4.3).
        if let std::collections::btree_map::Entry::Vacant(slot) = self.segments.entry(offset as u64)
        {
            slot.insert(payload.into());
            // A fresh segment under the drained prefix can steal cells
            // from a later-offset segment that currently owns them.
            if (offset as usize) < self.drained {
                self.dirty = true;
            }
        }
        true
    }

    /// The contiguous in-order prefix of the stream assembled so far,
    /// truncated to the window. First-arrived data wins on overlap.
    pub fn assembled_prefix(&self) -> Vec<u8> {
        let mut out: Vec<Option<u8>> = Vec::new();
        for (&off, data) in &self.segments {
            let off = off as usize;
            let end = (off + data.len()).min(self.window_bytes);
            if end > out.len() {
                out.resize(end, None);
            }
            for (i, b) in data.iter().enumerate() {
                let idx = off + i;
                if idx < end && out[idx].is_none() {
                    out[idx] = Some(*b);
                }
            }
        }
        out.into_iter()
            .take_while(|b| b.is_some())
            .map(|b| b.unwrap())
            .collect()
    }

    /// Incremental counterpart of [`StreamAssembler::assembled_prefix`]:
    /// yield only the bytes that became contiguous since the last drain,
    /// or the whole prefix again (as [`StreamDelta::Restart`]) when a
    /// first-wins overlap may have rewritten already-drained bytes. The
    /// concatenation of drained bytes (restarting on `Restart`) is always
    /// exactly `assembled_prefix()` — the device's streaming matcher
    /// depends on that invariant for byte parity with the naive rescanner.
    pub fn drain_new_contiguous(&mut self) -> StreamDelta {
        if self.dirty {
            self.dirty = false;
            let all = self.assembled_prefix();
            self.drained = all.len();
            return StreamDelta::Restart(all);
        }
        let mut out = Vec::new();
        let mut cursor = self.drained;
        'fill: while cursor < self.window_bytes {
            // The cell at `cursor` belongs to the first segment in offset
            // order covering it; that segment owns the whole run up to
            // its end (any lower-offset segment reaching into the run
            // would have covered `cursor` too).
            for (&off, data) in self.segments.range(..=cursor as u64) {
                let off = off as usize;
                let end = (off + data.len()).min(self.window_bytes);
                if end > cursor {
                    out.extend_from_slice(&data[cursor - off..end - off]);
                    cursor = end;
                    continue 'fill;
                }
            }
            break; // hole at `cursor`
        }
        self.drained = cursor;
        StreamDelta::Append(out)
    }

    /// Bytes already handed out by `drain_new_contiguous`.
    pub fn drained_len(&self) -> usize {
        self.drained
    }
}

/// Pre-classification tracking state for one flow.
#[derive(Debug, Clone)]
pub struct Tracking {
    pub gate: GateStatus,
    /// Payload-bearing packets seen client→server.
    pub client_payload_packets: usize,
    /// Payload-bearing packets seen server→client.
    pub server_payload_packets: usize,
    /// Payload bytes seen client→server (for byte-limited scopes).
    pub client_payload_bytes: u64,
    /// Payload bytes seen server→client.
    pub server_payload_bytes: u64,
    /// Arrival-order payload packets collected for `GatedStream` windows:
    /// (sequence number, payload view into the original wire buffer).
    pub window_packets: Vec<(u32, PacketBuf)>,
    /// Sequence-anchored assembler for `FullStream`.
    pub stream: StreamAssembler,
    /// Automaton cursor over `stream`'s drained prefix (`FullStream`
    /// with `MatcherKind::Automaton`).
    pub stream_scan: StreamScan,
    /// Persistent windowed assembler for `GatedStream` under the
    /// automaton matcher (the naive path rebuilds one per packet from
    /// `window_packets` instead). Anchored at the first pushed packet.
    pub window_asm: Option<StreamAssembler>,
    /// Automaton cursor over `window_asm`'s drained prefix.
    pub window_scan: StreamScan,
    /// Payload packets counted toward the `GatedStream` window cap —
    /// mirrors `window_packets.len()` growth without buffering payloads.
    pub window_seen: usize,
}

impl Tracking {
    pub fn new(window_bytes: usize) -> Tracking {
        Tracking {
            gate: GateStatus::Pending,
            client_payload_packets: 0,
            server_payload_packets: 0,
            client_payload_bytes: 0,
            server_payload_bytes: 0,
            window_packets: Vec::new(),
            stream: StreamAssembler::new(window_bytes),
            stream_scan: StreamScan::default(),
            window_asm: None,
            window_scan: StreamScan::default(),
            window_seen: 0,
        }
    }
}

/// A classification verdict attached to a flow.
#[derive(Debug, Clone)]
pub struct Classification {
    pub class: String,
    pub rule_id: String,
    pub at: SimTime,
    /// Per-flow shaper when the class's policy throttles.
    pub shaper: Option<TokenBucket>,
    /// Whether the block page / RST burst has been fired already.
    pub block_fired: bool,
    /// Idle timeout currently in force for this result (can be shortened
    /// by a RST on the testbed device).
    pub result_timeout: Option<Duration>,
}

/// One flow table entry.
#[derive(Debug, Clone)]
pub struct FlowEntry {
    pub created: SimTime,
    pub last_activity: SimTime,
    pub tracking: Option<Tracking>,
    pub classification: Option<Classification>,
}

/// Residual server:port blocking state (the GFC's collateral damage,
/// §6.5): a blocked-flow count per (server, port) pair and, once the
/// device's threshold is crossed, an expiry until which *all* traffic
/// toward the pair is disrupted regardless of content.
///
/// Factored out of [`FlowTable`] so the sharded table
/// ([`crate::sharded::ShardedFlowTable`]) can promote it to a single
/// cross-shard structure: a penalty earned by a flow hashed to one shard
/// must hit flows hashed to every other shard.
#[derive(Debug, Default, Clone)]
pub struct PenaltyBox {
    /// (server addr, server port) → (blocked-flow count, penalty expiry).
    penalties: HashMap<(Ipv4Addr, u16), (u32, Option<SimTime>)>,
}

impl PenaltyBox {
    /// Record a blocked flow toward a server:port and return whether the
    /// pair has crossed into penalty blocking.
    pub fn record_blocked_flow(
        &mut self,
        server: Ipv4Addr,
        port: u16,
        now: SimTime,
        threshold: u32,
        penalty: Duration,
    ) -> bool {
        let entry = self.penalties.entry((server, port)).or_insert((0, None));
        entry.0 += 1;
        if entry.0 >= threshold {
            entry.1 = Some(now + penalty);
            true
        } else {
            false
        }
    }

    /// Whether (server, port) is currently under penalty blocking.
    pub fn is_penalized(&self, server: Ipv4Addr, port: u16, now: SimTime) -> bool {
        match self.penalties.get(&(server, port)) {
            Some((_, Some(until))) => now < *until,
            _ => false,
        }
    }

    /// Number of (server, port) pairs with recorded blocked flows.
    pub fn tracked_pairs(&self) -> usize {
        self.penalties.len()
    }

    pub fn is_empty(&self) -> bool {
        self.penalties.is_empty()
    }

    pub fn clear(&mut self) {
        self.penalties.clear();
    }
}

/// The middlebox flow table.
#[derive(Debug, Default)]
pub struct FlowTable {
    entries: HashMap<FlowKey, FlowEntry>,
    /// Residual server:port penalties. In the sharded engine this box is
    /// unused — penalties live in the cross-shard [`PenaltyBox`] owned by
    /// [`crate::sharded::ShardedFlowTable`] instead.
    penalties: PenaltyBox,
    /// Monotonic creation count (never reset, even by `clear`), so the
    /// observability layer can report exact lifetime totals.
    pub created_total: u64,
    /// Monotonic eviction count: expiry removals plus RST flushes.
    pub evicted_total: u64,
    /// Payload-byte totals (client + server) of flows whose tracking
    /// state was dropped (timeout expiry or RST flush) and not yet
    /// drained into the per-flow bytes-scanned histogram. The holder of
    /// the shard lock drains these after processing, so with a shared
    /// table each device reports only its own churn.
    evicted_scanned_pending: Vec<u64>,
}

impl FlowTable {
    /// Look up a flow, applying expiry rules first. `config` supplies the
    /// static timeouts; `load` (when present) overrides the tracking
    /// timeout with the time-of-day resource model.
    pub fn lookup(
        &mut self,
        key: FlowKey,
        now: SimTime,
        config: &FlowConfig,
        load: Option<&TimeOfDayLoad>,
    ) -> Option<&mut FlowEntry> {
        let canonical = key.canonical();
        let remove = {
            let entry = self.entries.get_mut(&canonical)?;
            let idle = now.since(entry.last_activity);
            // Result expiry: idle-based.
            if let Some(c) = &entry.classification {
                if let Some(t) = c.result_timeout {
                    if idle > t {
                        entry.classification = None;
                    }
                }
            }
            // Tracking expiry: resource model wins over static config.
            let tracking_timeout = match load {
                Some(model) => model.eviction_threshold(now),
                None => config.tracking_timeout,
            };
            if let Some(t) = tracking_timeout {
                if idle > t {
                    if let Some(tr) = entry.tracking.take() {
                        self.evicted_scanned_pending
                            .push(tr.client_payload_bytes + tr.server_payload_bytes);
                    }
                }
            }
            entry.classification.is_none() && entry.tracking.is_none()
        };
        if remove {
            self.entries.remove(&canonical);
            self.evicted_total += 1;
            return None;
        }
        self.entries.get_mut(&canonical)
    }

    /// Create or replace the entry for a flow (called on SYN for TCP, on
    /// the first datagram for UDP).
    pub fn create(&mut self, key: FlowKey, now: SimTime, window_bytes: usize) -> &mut FlowEntry {
        let canonical = key.canonical();
        self.created_total += 1;
        self.entries.insert(
            canonical,
            FlowEntry {
                created: now,
                last_activity: now,
                tracking: Some(Tracking::new(window_bytes)),
                classification: None,
            },
        );
        self.entries.get_mut(&canonical).expect("just inserted")
    }

    /// Apply a RST's effect to a flow per the device's configuration.
    /// Returns whether the RST changed flow state (flushed the entry, or
    /// shortened a classification's timeout) — false for `Ignored` or an
    /// absent entry.
    pub fn apply_rst(&mut self, key: FlowKey, config: &FlowConfig) -> bool {
        let canonical = key.canonical();
        let Some(entry) = self.entries.get_mut(&canonical) else {
            return false;
        };
        let effect = if entry.classification.is_some() {
            config.rst_after_match
        } else {
            config.rst_before_match
        };
        match effect {
            RstEffect::Ignored => false,
            RstEffect::FlushImmediately => {
                if let Some(e) = self.entries.remove(&canonical) {
                    if let Some(tr) = e.tracking {
                        self.evicted_scanned_pending
                            .push(tr.client_payload_bytes + tr.server_payload_bytes);
                    }
                }
                self.evicted_total += 1;
                true
            }
            RstEffect::ShortenTimeout(t) => {
                if let Some(c) = entry.classification.as_mut() {
                    c.result_timeout = Some(t);
                    true
                } else {
                    false
                }
            }
        }
    }

    /// Drain the per-flow scanned-byte figures of flows whose tracking
    /// died since the last drain (see `evicted_scanned_pending`).
    pub fn drain_evicted_scanned(&mut self) -> Vec<u64> {
        std::mem::take(&mut self.evicted_scanned_pending)
    }

    /// Batch expiry: apply [`FlowTable::lookup`]'s eviction rules to every
    /// entry in one pass instead of waiting for each flow's next lookup
    /// (which, for a replay wave's abandoned probe flows, never comes).
    /// Returns the number of entries evicted; their scanned-byte figures
    /// land in the same pending buffer lazy eviction feeds.
    ///
    /// Sweeps in canonical-key order: `HashMap` iteration order varies run
    /// to run, and the scanned samples flow into journal output that must
    /// stay byte-identical for a fixed seed.
    pub fn sweep_expired(
        &mut self,
        now: SimTime,
        config: &FlowConfig,
        load: Option<&TimeOfDayLoad>,
    ) -> u64 {
        let tracking_timeout = match load {
            Some(model) => model.eviction_threshold(now),
            None => config.tracking_timeout,
        };
        let mut keys: Vec<FlowKey> = self.entries.keys().copied().collect();
        keys.sort_unstable();
        let mut evicted = 0;
        for key in keys {
            let Some(entry) = self.entries.get_mut(&key) else {
                continue;
            };
            let idle = now.since(entry.last_activity);
            if let Some(c) = &entry.classification {
                if let Some(t) = c.result_timeout {
                    if idle > t {
                        entry.classification = None;
                    }
                }
            }
            if let Some(t) = tracking_timeout {
                if idle > t {
                    if let Some(tr) = entry.tracking.take() {
                        self.evicted_scanned_pending
                            .push(tr.client_payload_bytes + tr.server_payload_bytes);
                    }
                }
            }
            if entry.classification.is_none() && entry.tracking.is_none() {
                self.entries.remove(&key);
                self.evicted_total += 1;
                evicted += 1;
            }
        }
        evicted
    }

    /// Record a blocked flow toward a server:port and return whether the
    /// pair has crossed into penalty blocking.
    pub fn record_blocked_flow(
        &mut self,
        server: Ipv4Addr,
        port: u16,
        now: SimTime,
        threshold: u32,
        penalty: Duration,
    ) -> bool {
        self.penalties
            .record_blocked_flow(server, port, now, threshold, penalty)
    }

    /// Whether (server, port) is currently under penalty blocking.
    pub fn is_penalized(&self, server: Ipv4Addr, port: u16, now: SimTime) -> bool {
        self.penalties.is_penalized(server, port, now)
    }

    pub fn live_flow_count(&self) -> usize {
        self.entries.len()
    }

    /// Full harness reset: forget live flows **and** the penalty box.
    /// Alias of [`FlowTable::reset_all`], kept for callers that predate
    /// the explicit naming. Lifetime counters survive — they are
    /// observability totals, not middlebox state.
    pub fn clear(&mut self) {
        self.reset_all();
    }

    /// Forget live flow entries but keep penalty-box state. This is what
    /// a middlebox losing (or shedding) flow state actually does: residual
    /// server:port penalties outlive the flows that earned them (§6.5).
    pub fn clear_flows(&mut self) {
        self.entries.clear();
    }

    /// Forget live flows *and* penalties: the explicit between-experiment
    /// reset. Pooled sessions sharing a table must use this (not
    /// [`FlowTable::clear_flows`]) so blocked-flow state cannot leak from
    /// one probe run into the next. Lifetime counters are preserved.
    pub fn reset_all(&mut self) {
        self.entries.clear();
        self.penalties.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key() -> FlowKey {
        FlowKey::new(
            Ipv4Addr::new(10, 0, 0, 1),
            Ipv4Addr::new(10, 9, 9, 9),
            40000,
            80,
            6,
        )
    }

    fn config() -> FlowConfig {
        FlowConfig {
            result_timeout: Some(Duration::from_secs(120)),
            tracking_timeout: Some(Duration::from_secs(120)),
            rst_after_match: RstEffect::ShortenTimeout(Duration::from_secs(10)),
            rst_before_match: RstEffect::FlushImmediately,
        }
    }

    #[test]
    fn assembler_places_segments_by_offset() {
        let mut a = StreamAssembler::new(4096);
        a.base_seq = Some(1000);
        assert!(a.insert(1005, b"world"));
        assert_eq!(a.assembled_prefix(), b""); // hole at offset 0
        assert!(a.insert(1000, b"hello"));
        assert_eq!(a.assembled_prefix(), b"helloworld");
    }

    #[test]
    fn assembler_ignores_out_of_window_seq() {
        let mut a = StreamAssembler::new(4096);
        a.base_seq = Some(1000);
        // A far-future "wrong sequence number" inert packet.
        assert!(!a.insert(1000u32.wrapping_add(1_000_000), b"GET /evil"));
        // A wrapped (negative) offset is also enormous as u32.
        assert!(!a.insert(500, b"before-isn"));
        assert!(a.assembled_prefix().is_empty());
    }

    #[test]
    fn assembler_without_base_ignores_everything() {
        let mut a = StreamAssembler::new(4096);
        assert!(!a.insert(1000, b"mid-flow"));
    }

    #[test]
    fn overlap_first_wins() {
        let mut a = StreamAssembler::new(4096);
        a.base_seq = Some(0);
        a.insert(0, b"AAAA");
        a.insert(2, b"BBBB");
        assert_eq!(a.assembled_prefix(), b"AAAABB");
    }

    /// Drive an assembler with `drain_new_contiguous` after every insert
    /// and check the streaming view reconstructs `assembled_prefix`
    /// exactly at every step.
    fn drain_tracks_prefix(window: usize, inserts: &[(u32, &[u8])]) {
        let mut a = StreamAssembler::new(window);
        a.base_seq = Some(0);
        let mut streamed: Vec<u8> = Vec::new();
        for &(seq, payload) in inserts {
            a.insert(seq, payload);
            match a.drain_new_contiguous() {
                StreamDelta::Restart(all) => streamed = all,
                StreamDelta::Append(new) => streamed.extend_from_slice(&new),
            }
            assert_eq!(streamed, a.assembled_prefix(), "after insert at seq {seq}");
            assert_eq!(streamed.len(), a.drained_len());
        }
    }

    #[test]
    fn drain_in_order_appends() {
        drain_tracks_prefix(4096, &[(0, b"GET /"), (5, b"index"), (10, b".html")]);
    }

    #[test]
    fn drain_out_of_order_hole_fills_later() {
        // Holes at 0 and 10 fill after later segments arrived.
        drain_tracks_prefix(
            4096,
            &[(5, b"index"), (10, b".html"), (0, b"GET /"), (15, b" HTTP")],
        );
    }

    #[test]
    fn drain_duplicate_retransmissions_are_inert() {
        drain_tracks_prefix(
            4096,
            &[(0, b"hello"), (0, b"hello"), (5, b"world"), (0, b"XXXXX")],
        );
    }

    #[test]
    fn drain_overlap_extending_past_drained_prefix() {
        // Segment at 2 overlaps the drained [0,4) prefix and reaches
        // beyond it; first-wins means only cells 4..8 are new.
        drain_tracks_prefix(4096, &[(0, b"AAAA"), (2, b"BBBBBB")]);
    }

    #[test]
    fn drain_restart_when_overlap_rewrites_drained_bytes() {
        // A@0 and B@4 drain as AAAABBBB; then C@2 arrives. Cells 4..7 now
        // belong to C (the first segment in offset order covering them),
        // so the already-drained bytes changed retroactively.
        let mut a = StreamAssembler::new(4096);
        a.base_seq = Some(0);
        a.insert(0, b"AAAA");
        a.insert(4, b"BBBB");
        assert_eq!(
            a.drain_new_contiguous(),
            StreamDelta::Append(b"AAAABBBB".to_vec())
        );
        a.insert(2, b"CCCCCC");
        let delta = a.drain_new_contiguous();
        assert_eq!(delta, StreamDelta::Restart(b"AAAACCCC".to_vec()));
        assert_eq!(a.assembled_prefix(), b"AAAACCCC");
        // The restart clears the flag: the next drain appends normally.
        a.insert(8, b"DD");
        assert_eq!(
            a.drain_new_contiguous(),
            StreamDelta::Append(b"DD".to_vec())
        );
    }

    #[test]
    fn drain_caps_at_window() {
        drain_tracks_prefix(6, &[(0, b"AAAA"), (4, b"BBBB"), (8, b"CCCC")]);
        // And mid-segment truncation specifically:
        let mut a = StreamAssembler::new(6);
        a.base_seq = Some(0);
        a.insert(0, b"AAAABBBB");
        assert_eq!(
            a.drain_new_contiguous(),
            StreamDelta::Append(b"AAAABB".to_vec())
        );
        assert_eq!(a.drain_new_contiguous(), StreamDelta::Append(Vec::new()));
    }

    #[test]
    fn drain_with_hole_yields_nothing_until_filled() {
        let mut a = StreamAssembler::new(4096);
        a.base_seq = Some(1000);
        a.insert(1005, b"world");
        assert_eq!(a.drain_new_contiguous(), StreamDelta::Append(Vec::new()));
        a.insert(1000, b"hello");
        assert_eq!(
            a.drain_new_contiguous(),
            StreamDelta::Append(b"helloworld".to_vec())
        );
    }

    #[test]
    fn lookup_expires_idle_tracking_and_results() {
        let mut table = FlowTable::default();
        let cfg = config();
        let e = table.create(key(), SimTime::ZERO, 4096);
        e.classification = Some(Classification {
            class: "video".into(),
            rule_id: "r".into(),
            at: SimTime::ZERO,
            shaper: None,
            block_fired: false,
            result_timeout: cfg.result_timeout,
        });
        // At t=60 s everything survives.
        assert!(table
            .lookup(key(), SimTime::from_secs(60), &cfg, None)
            .is_some());
        // Do NOT touch last_activity: at t=200 s both expired (> 120 s idle
        // since t=0... note lookup at 60 s did not refresh activity).
        let gone = table.lookup(key(), SimTime::from_secs(200), &cfg, None);
        assert!(gone.is_none());
        assert_eq!(table.live_flow_count(), 0);
    }

    #[test]
    fn rst_before_match_flushes() {
        let mut table = FlowTable::default();
        let cfg = config();
        table.create(key(), SimTime::ZERO, 4096);
        table.apply_rst(key(), &cfg);
        assert_eq!(table.live_flow_count(), 0);
    }

    #[test]
    fn rst_after_match_shortens_timeout() {
        let mut table = FlowTable::default();
        let cfg = config();
        let e = table.create(key(), SimTime::ZERO, 4096);
        e.classification = Some(Classification {
            class: "video".into(),
            rule_id: "r".into(),
            at: SimTime::ZERO,
            shaper: None,
            block_fired: false,
            result_timeout: cfg.result_timeout,
        });
        table.apply_rst(key(), &cfg);
        // 11 s later (> 10 s shortened timeout) the result is gone.
        let e = table.lookup(key(), SimTime::from_secs(11), &cfg, None);
        // Tracking (120 s) still there, classification flushed.
        let e = e.expect("tracking survives");
        assert!(e.classification.is_none());
    }

    #[test]
    fn lifetime_counters_are_monotonic() {
        let mut table = FlowTable::default();
        let cfg = config();
        table.create(key(), SimTime::ZERO, 4096);
        assert_eq!(table.created_total, 1);
        // Before a match the testbed config flushes on RST: one eviction.
        assert!(table.apply_rst(key(), &cfg));
        assert_eq!(table.evicted_total, 1);
        // A RST against a missing entry changes nothing.
        assert!(!table.apply_rst(key(), &cfg));
        assert_eq!(table.evicted_total, 1);
        table.create(key(), SimTime::ZERO, 4096);
        table.clear();
        assert_eq!(table.created_total, 2);
        // clear() resets live state, not the lifetime counters; it is a
        // harness reset, not an eviction the middlebox performed.
        assert_eq!(table.evicted_total, 1);
    }

    #[test]
    fn penalty_threshold_and_expiry() {
        let mut table = FlowTable::default();
        let server = Ipv4Addr::new(10, 9, 9, 9);
        let now = SimTime::from_secs(100);
        let penalty = Duration::from_secs(90);
        assert!(!table.record_blocked_flow(server, 80, now, 2, penalty));
        assert!(!table.is_penalized(server, 80, now));
        assert!(table.record_blocked_flow(server, 80, now, 2, penalty));
        assert!(table.is_penalized(server, 80, now));
        assert!(table.is_penalized(server, 80, now + Duration::from_secs(89)));
        assert!(!table.is_penalized(server, 80, now + Duration::from_secs(91)));
        // A different port is unaffected.
        assert!(!table.is_penalized(server, 8080, now));
    }

    #[test]
    fn clear_flows_keeps_penalties_but_reset_all_drops_them() {
        let mut table = FlowTable::default();
        let server = Ipv4Addr::new(10, 9, 9, 9);
        let now = SimTime::from_secs(100);
        table.create(key(), SimTime::ZERO, 4096);
        table.record_blocked_flow(server, 80, now, 1, Duration::from_secs(90));
        assert!(table.is_penalized(server, 80, now));

        // clear_flows: the flow entries go, the penalty persists — losing
        // flow state must not amnesty a penalized server:port.
        table.clear_flows();
        assert_eq!(table.live_flow_count(), 0);
        assert!(table.is_penalized(server, 80, now));

        // reset_all (and its clear() alias): everything goes.
        table.create(key(), SimTime::ZERO, 4096);
        table.reset_all();
        assert_eq!(table.live_flow_count(), 0);
        assert!(!table.is_penalized(server, 80, now));

        table.record_blocked_flow(server, 80, now, 1, Duration::from_secs(90));
        table.clear();
        assert!(
            !table.is_penalized(server, 80, now),
            "clear() is a full reset including the penalty box"
        );
    }

    #[test]
    fn canonical_keying_matches_both_directions() {
        let mut table = FlowTable::default();
        let cfg = config();
        table.create(key(), SimTime::ZERO, 4096);
        assert!(table
            .lookup(key().reverse(), SimTime::from_secs(1), &cfg, None)
            .is_some());
    }
}
