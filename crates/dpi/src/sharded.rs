//! A sharded flow table: the shared DPI state behind the multi-session
//! replay engine.
//!
//! One middlebox serves every probe the pool's worker sessions replay, so
//! its flow state must be shared across workers without serializing them
//! on a single table lock. [`ShardedFlowTable`] hashes each canonical
//! [`FlowKey`] to a shard and wraps every shard in its own mutex; workers
//! probing disjoint flows (the pool strides client ports precisely so
//! flows *are* disjoint) contend only when their keys collide on a shard.
//!
//! The residual server:port penalty box ([`PenaltyBox`]) is promoted out
//! of the per-shard tables into one cross-shard structure: the GFC blocks
//! a (server, port) pair after enough classified flows *regardless of
//! which flows earned the strikes* (§6.5), so a penalty recorded while
//! processing a flow on shard A must disrupt a flow hashed to shard B.
//!
//! # Lock ordering
//!
//! Two locks exist: the shard mutexes and the penalty mutex. The declared
//! acquisition order, enforced by the `flowtable-lock-ordering` lint rule,
//! is:
//!
//! 1. at most **one shard lock** at a time (cross-shard walks like
//!    [`ShardedFlowTable::reset_all`] take shard locks transiently, one
//!    after the other, never nested);
//! 2. the **penalty lock after the shard lock**, never before it, and
//!    only transiently (the device fires a block action while holding the
//!    packet's shard and then records the penalty).

use std::net::Ipv4Addr;
use std::ops::{Deref, DerefMut};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

use parking_lot::{Mutex, MutexGuard};

use liberate_netsim::time::SimTime;
use liberate_packet::flow::FlowKey;

use crate::flowtable::{FlowTable, PenaltyBox};
use crate::inspect::FlowConfig;
use crate::resource::TimeOfDayLoad;

/// Default shard count. Small enough that per-table overhead is noise,
/// large enough that a handful of pool workers rarely collide.
pub const DEFAULT_SHARDS: usize = 8;

/// A flow table split into independently locked shards plus one
/// cross-shard penalty box. Cheap to share: the device clones an `Arc` of
/// it, and the environment blueprint hands the same `Arc` to every worker
/// network it builds.
#[derive(Debug)]
pub struct ShardedFlowTable {
    shards: Box<[Mutex<FlowTable>]>,
    /// Cross-shard penalty state; see the module docs for lock order.
    penalties: Mutex<PenaltyBox>,
    /// Lifetime flow creations across all shards, folded in when a shard
    /// guard drops so reads never need to visit every shard.
    created_total: AtomicU64,
    /// Lifetime evictions across all shards (expiry + RST flushes).
    evicted_total: AtomicU64,
}

impl Default for ShardedFlowTable {
    fn default() -> Self {
        ShardedFlowTable::new(DEFAULT_SHARDS)
    }
}

impl ShardedFlowTable {
    pub fn new(shard_count: usize) -> ShardedFlowTable {
        let shard_count = shard_count.max(1);
        ShardedFlowTable {
            shards: (0..shard_count)
                .map(|_| Mutex::new(FlowTable::default()))
                .collect(),
            penalties: Mutex::new(PenaltyBox::default()),
            created_total: AtomicU64::new(0),
            evicted_total: AtomicU64::new(0),
        }
    }

    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Which shard a flow hashes to. FNV-1a over the canonical key, so
    /// both directions of a flow land on the same shard and the mapping is
    /// stable across runs and platforms (no `RandomState`).
    pub fn shard_index(&self, key: FlowKey) -> usize {
        let k = key.canonical();
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        let mut eat = |b: u8| {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        };
        for b in k.src.octets() {
            eat(b);
        }
        for b in k.src_port.to_be_bytes() {
            eat(b);
        }
        for b in k.dst.octets() {
            eat(b);
        }
        for b in k.dst_port.to_be_bytes() {
            eat(b);
        }
        eat(k.protocol);
        (h % self.shards.len() as u64) as usize
    }

    /// Lock the shard owning `key`. The guard derefs to the plain
    /// [`FlowTable`]; on drop it folds the shard's lifetime-counter deltas
    /// into the cross-shard totals.
    pub fn shard(&self, key: FlowKey) -> ShardGuard<'_> {
        self.shard_at(self.shard_index(key))
    }

    /// Lock shard `idx` directly (tests and cross-shard walks).
    pub fn shard_at(&self, idx: usize) -> ShardGuard<'_> {
        let table = self.shards[idx].lock();
        ShardGuard {
            created_at_acquire: table.created_total,
            evicted_at_acquire: table.evicted_total,
            table,
            created_total: &self.created_total,
            evicted_total: &self.evicted_total,
        }
    }

    /// Record a blocked flow in the cross-shard penalty box. Safe to call
    /// while holding a shard guard (penalty-after-shard is the declared
    /// order); the lock is released before returning.
    pub fn record_blocked_flow(
        &self,
        server: Ipv4Addr,
        port: u16,
        now: SimTime,
        threshold: u32,
        penalty: Duration,
    ) -> bool {
        self.penalties
            .lock()
            .record_blocked_flow(server, port, now, threshold, penalty)
    }

    /// Whether (server, port) is currently under penalty blocking,
    /// regardless of which shard the asking flow hashes to.
    pub fn is_penalized(&self, server: Ipv4Addr, port: u16, now: SimTime) -> bool {
        self.penalties.lock().is_penalized(server, port, now)
    }

    /// Lifetime flow creations across all shards, as of the last guard
    /// drop. Monotonic; never reset.
    pub fn created_total(&self) -> u64 {
        self.created_total.load(Ordering::Relaxed)
    }

    /// Lifetime evictions across all shards, as of the last guard drop.
    pub fn evicted_total(&self) -> u64 {
        self.evicted_total.load(Ordering::Relaxed)
    }

    /// Live entries across all shards. Takes each shard lock transiently,
    /// one at a time.
    pub fn live_flow_count(&self) -> usize {
        self.shards.iter().map(|s| s.lock().live_flow_count()).sum()
    }

    /// Forget live flows on every shard but keep the penalty box — the
    /// sharded analogue of [`FlowTable::clear_flows`].
    pub fn clear_flows(&self) {
        for s in self.shards.iter() {
            s.lock().clear_flows();
        }
    }

    /// Batch-reclaim expired flows on every shard: **one lock acquisition
    /// per shard** regardless of how many flows die, where the lazy path
    /// pays one acquisition per future lookup — and a wave's abandoned
    /// probe flows are never looked up again, so without this they linger
    /// until the next experiment reset. The deployment pool runs this
    /// between waves, when its workers are quiescent; each shard's
    /// scanned-byte samples are drained in the same critical section so
    /// the caller can feed the bytes-scanned histogram in one batch.
    pub fn drain_expired(
        &self,
        now: SimTime,
        config: &FlowConfig,
        load: Option<&TimeOfDayLoad>,
    ) -> DrainBatch {
        let mut batch = DrainBatch::default();
        for idx in 0..self.shards.len() {
            let mut shard = self.shard_at(idx);
            batch.evicted += shard.sweep_expired(now, config, load);
            batch.scanned.extend(shard.drain_evicted_scanned());
        }
        batch
    }

    /// Full between-experiment reset: every shard's flows *and* the
    /// cross-shard penalty box. With a pooled table this wipes state for
    /// every session sharing the `Arc`, so workers must be quiescent.
    /// Lifetime counters are preserved.
    pub fn reset_all(&self) {
        for s in self.shards.iter() {
            s.lock().reset_all();
        }
        self.penalties.lock().clear();
    }
}

/// Everything one [`ShardedFlowTable::drain_expired`] sweep reclaimed,
/// batched across shards so the holder journals it in one pass.
#[derive(Debug, Default)]
pub struct DrainBatch {
    /// Flows evicted across all shards.
    pub evicted: u64,
    /// Scanned-byte figures of the evicted flows (plus any samples a
    /// prior holder left pending), for the bytes-scanned histogram. In
    /// shard order, canonical-key order within a shard — deterministic
    /// for a fixed seed.
    pub scanned: Vec<u64>,
}

/// A locked shard. Dereferences to the inner [`FlowTable`]; callers that
/// attribute flow churn to a specific device (the observability layer
/// journals per-device deltas) read [`ShardGuard::deltas`] before drop.
pub struct ShardGuard<'a> {
    table: MutexGuard<'a, FlowTable>,
    created_at_acquire: u64,
    evicted_at_acquire: u64,
    created_total: &'a AtomicU64,
    evicted_total: &'a AtomicU64,
}

impl ShardGuard<'_> {
    /// (flows created, flows evicted) on this shard since the guard was
    /// acquired — i.e. by the holder itself.
    pub fn deltas(&self) -> (u64, u64) {
        (
            self.table.created_total - self.created_at_acquire,
            self.table.evicted_total - self.evicted_at_acquire,
        )
    }
}

impl Deref for ShardGuard<'_> {
    type Target = FlowTable;
    fn deref(&self) -> &FlowTable {
        &self.table
    }
}

impl DerefMut for ShardGuard<'_> {
    fn deref_mut(&mut self) -> &mut FlowTable {
        &mut self.table
    }
}

impl Drop for ShardGuard<'_> {
    fn drop(&mut self) {
        let (created, evicted) = self.deltas();
        if created > 0 {
            self.created_total.fetch_add(created, Ordering::Relaxed);
        }
        if evicted > 0 {
            self.evicted_total.fetch_add(evicted, Ordering::Relaxed);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inspect::{FlowConfig, RstEffect};

    fn key_with_client_port(port: u16) -> FlowKey {
        FlowKey::new(
            Ipv4Addr::new(10, 0, 0, 2),
            Ipv4Addr::new(203, 0, 113, 10),
            port,
            80,
            6,
        )
    }

    fn config() -> FlowConfig {
        FlowConfig {
            result_timeout: Some(Duration::from_secs(120)),
            tracking_timeout: Some(Duration::from_secs(120)),
            rst_after_match: RstEffect::ShortenTimeout(Duration::from_secs(10)),
            rst_before_match: RstEffect::FlushImmediately,
        }
    }

    /// Two same-(server, port) flows whose keys hash to *different* shards.
    fn cross_shard_keys(table: &ShardedFlowTable) -> (FlowKey, FlowKey) {
        let a = key_with_client_port(42_000);
        let shard_a = table.shard_index(a);
        for port in 42_001..52_000 {
            let b = key_with_client_port(port);
            if table.shard_index(b) != shard_a {
                return (a, b);
            }
        }
        unreachable!("FNV cannot map 10k keys to one shard")
    }

    #[test]
    fn shard_index_is_direction_independent() {
        let table = ShardedFlowTable::new(8);
        let k = key_with_client_port(42_000);
        assert_eq!(table.shard_index(k), table.shard_index(k.reverse()));
    }

    #[test]
    fn cross_shard_penalty_box() {
        // Satellite: a blocked flow on shard A must penalize the
        // (server, port) pair as seen by a flow hashed to shard B.
        let table = ShardedFlowTable::new(8);
        let (a, b) = cross_shard_keys(&table);
        assert_ne!(table.shard_index(a), table.shard_index(b));
        let server = a.dst;
        let now = SimTime::from_secs(50);

        // Create both flows on their own shards.
        table.shard(a).create(a, SimTime::ZERO, 4096);
        table.shard(b).create(b, SimTime::ZERO, 4096);

        // Strikes earned while processing flow A (threshold 2, GFC-style).
        let penalty = Duration::from_secs(90);
        assert!(!table.record_blocked_flow(server, 80, now, 2, penalty));
        assert!(table.record_blocked_flow(server, 80, now, 2, penalty));

        // Flow B's shard never saw a strike, yet the pair is penalized
        // from its vantage point too.
        assert!(table.is_penalized(server, 80, now));
        assert!(!table.is_penalized(server, 8080, now));
        assert!(!table.is_penalized(server, 80, now + Duration::from_secs(91)));
    }

    #[test]
    fn eviction_count_parity_with_unsharded_table() {
        // Satellite: the same operation sequence drives a plain FlowTable
        // and an 8-shard table to identical lifetime totals.
        let mut flat = FlowTable::default();
        let sharded = ShardedFlowTable::new(8);
        let cfg = config();

        for i in 0..32u16 {
            let k = key_with_client_port(42_000 + i);
            flat.create(k, SimTime::ZERO, 4096);
            sharded.shard(k).create(k, SimTime::ZERO, 4096);
            if i % 3 == 0 {
                // RST before match flushes: one eviction.
                assert!(flat.apply_rst(k, &cfg));
                assert!(sharded.shard(k).apply_rst(k, &cfg));
            } else if i % 3 == 1 {
                // Idle past the tracking timeout: lazy eviction on lookup.
                assert!(flat
                    .lookup(k, SimTime::from_secs(500), &cfg, None)
                    .is_none());
                assert!(sharded
                    .shard(k)
                    .lookup(k, SimTime::from_secs(500), &cfg, None)
                    .is_none());
            }
        }

        assert_eq!(sharded.created_total(), flat.created_total);
        assert_eq!(sharded.evicted_total(), flat.evicted_total);
        assert_eq!(sharded.live_flow_count(), flat.live_flow_count());
    }

    #[test]
    fn guard_deltas_attribute_churn_to_the_holder() {
        let table = ShardedFlowTable::new(4);
        let k = key_with_client_port(42_000);
        let mut guard = table.shard(k);
        guard.create(k, SimTime::ZERO, 4096);
        assert_eq!(guard.deltas(), (1, 0));
        drop(guard);
        assert_eq!(table.created_total(), 1);
        // A fresh guard starts from a zero baseline.
        let guard = table.shard(k);
        assert_eq!(guard.deltas(), (0, 0));
    }

    #[test]
    fn drain_expired_matches_lazy_eviction() {
        // The batched sweep must evict exactly the flows per-lookup lazy
        // expiry would have, with identical lifetime totals.
        let cfg = config();
        let lazy = ShardedFlowTable::new(8);
        let batched = ShardedFlowTable::new(8);
        for i in 0..24u16 {
            let k = key_with_client_port(42_000 + i);
            // Flows 0..8 idle from t=0 (expired at t=500); the rest stay
            // fresh at t=450 and must survive.
            let born = if i < 8 {
                SimTime::ZERO
            } else {
                SimTime::from_secs(450)
            };
            lazy.shard(k).create(k, born, 4096);
            batched.shard(k).create(k, born, 4096);
        }

        let now = SimTime::from_secs(500);
        let report = batched.drain_expired(now, &cfg, None);
        assert_eq!(report.evicted, 8);
        assert_eq!(report.scanned.len(), 8, "each eviction yields a sample");

        for i in 0..24u16 {
            let k = key_with_client_port(42_000 + i);
            lazy.shard(k).lookup(k, now, &cfg, None);
        }
        assert_eq!(batched.evicted_total(), lazy.evicted_total());
        assert_eq!(batched.live_flow_count(), lazy.live_flow_count());
        assert_eq!(batched.live_flow_count(), 16);

        // Nothing newly idle: a second sweep is a no-op.
        assert_eq!(batched.drain_expired(now, &cfg, None).evicted, 0);
    }

    #[test]
    fn reset_all_clears_flows_and_penalties_but_not_totals() {
        let table = ShardedFlowTable::new(4);
        let k = key_with_client_port(42_000);
        table.shard(k).create(k, SimTime::ZERO, 4096);
        let now = SimTime::from_secs(10);
        table.record_blocked_flow(k.dst, 80, now, 1, Duration::from_secs(60));
        assert!(table.is_penalized(k.dst, 80, now));

        table.clear_flows();
        assert_eq!(table.live_flow_count(), 0);
        assert!(
            table.is_penalized(k.dst, 80, now),
            "clear_flows keeps penalties"
        );

        table.reset_all();
        assert!(!table.is_penalized(k.dst, 80, now));
        assert_eq!(table.created_total(), 1, "lifetime totals survive reset");
    }
}
