//! # liberate-dpi
//!
//! A configurable DPI middlebox for the lib·erate reproduction — the thing
//! the library probes and evades.
//!
//! The paper's core observation is that middleboxes classify traffic with
//! *incomplete* models of end-to-end communication; every dimension of that
//! incompleteness is a knob here:
//!
//! - [`rules`]: keyword rules with direction/port/position constraints;
//! - [`automaton`]: the rule set compiled into one Aho–Corasick DFA with
//!   per-flow streaming scan state (each stream byte fed exactly once);
//! - [`inspect`]: how much of a flow is examined and how payload is
//!   (mis)assembled — per-packet, protocol-gated, windowed, or full
//!   sequence-tracked reassembly;
//! - [`validation`]: which malformed packets the device still processes;
//! - [`flowtable`]: state lifecycles — result/tracking timeouts, RST
//!   effects, and resource-pressure eviction ([`resource`]);
//! - [`sharded`]: the flow table split into independently locked shards
//!   with a cross-shard penalty box, shared by pooled worker sessions;
//! - [`actions`]: throttle, zero-rate, RST/403 blocking with residual
//!   server:port penalties;
//! - [`device`]: the composed middlebox as a simulator path element;
//! - [`proxy`]: a TCP-terminating transparent HTTP proxy (AT&T);
//! - [`profiles`]: the six environments of §6, calibrated knob-by-knob.

pub mod actions;
pub mod automaton;
pub mod device;
pub mod flowtable;
pub mod inspect;
pub mod matcher;
pub mod profiles;
pub mod proxy;
pub mod resource;
pub mod rules;
pub mod sharded;
pub mod validation;

pub mod prelude {
    pub use crate::actions::{BlockBehavior, Policy};
    pub use crate::automaton::{Automaton, CompiledRuleSet, MatcherKind, StreamScan};
    pub use crate::device::{ClassificationEvent, DpiConfig, DpiDevice};
    pub use crate::inspect::{
        FlowConfig, InspectScope, InspectionPolicy, ReassemblyMode, RstEffect,
    };
    pub use crate::profiles::{
        build_environment, EnvKind, Environment, EnvironmentBlueprint, CLIENT_ADDR, DPI_NAME,
        SERVER_ADDR,
    };
    pub use crate::proxy::{ProxyConfig, TransparentProxy};
    pub use crate::resource::TimeOfDayLoad;
    pub use crate::rules::{MatchRule, PositionConstraint, RuleSet};
    pub use crate::sharded::{ShardGuard, ShardedFlowTable, DEFAULT_SHARDS};
    pub use crate::validation::ValidationModel;
}
