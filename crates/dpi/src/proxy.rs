//! A transparent HTTP proxy middlebox — the AT&T Stream Saver model
//! (§6.3).
//!
//! The proxy *terminates* TCP connections on its configured ports: it
//! answers the client's handshake itself, reassembles the full byte stream,
//! opens its own connection toward the server, and re-originates traffic in
//! both directions. Because both endpoints only ever talk to the proxy's
//! own stacks, every packet-level evasion technique dies here ("None of the
//! evasion techniques is effective for Stream Saver, because they deploy a
//! transparent HTTP proxy that terminates TCP connections"). Traffic on any
//! other port passes through untouched — which is why simply moving the
//! server port evades it.

use std::collections::{BTreeMap, HashMap};

use liberate_netsim::element::{Effects, PacketBuf, PathElement, TimedPacket, Verdict};
use liberate_netsim::shaper::TokenBucket;
use liberate_netsim::time::SimTime;
use liberate_packet::flow::{Direction, FlowKey};
use liberate_packet::packet::{Packet, ParsedPacket};
use liberate_packet::tcp::TcpFlags;
use liberate_packet::validate::validate_wire;

use crate::matcher::contains;

/// Segment size the proxy uses when re-originating data.
const PROXY_MSS: usize = 1460;

/// Configuration for the transparent proxy.
#[derive(Debug, Clone)]
pub struct ProxyConfig {
    pub name: String,
    /// Server ports the proxy intercepts (AT&T: port 80 only).
    pub intercept_ports: Vec<u16>,
    /// Client-direction tokens that mark the stream as HTTP worth
    /// classifying (e.g. "GET", "HTTP/1.1").
    pub request_tokens: Vec<Vec<u8>>,
    /// Server-direction keyword that triggers the policy
    /// (e.g. "Content-Type: video").
    pub response_keyword: Vec<u8>,
    /// Throttle rate applied to classified flows (bits/second, burst
    /// bytes). AT&T: 1.5 Mbps.
    pub throttle: (u64, u64),
}

impl ProxyConfig {
    /// The AT&T Stream Saver configuration.
    pub fn stream_saver() -> ProxyConfig {
        ProxyConfig {
            name: "att-stream-saver".to_string(),
            intercept_ports: vec![80],
            request_tokens: vec![b"GET ".to_vec(), b"HTTP/1.1".to_vec()],
            response_keyword: b"Content-Type: video".to_vec(),
            throttle: (1_500_000, 32_000),
        }
    }
}

/// One side of a proxied connection: in-order receive state plus our send
/// sequence state.
#[derive(Debug)]
struct HalfConn {
    /// Next sequence number expected from the peer.
    rcv_next: u32,
    /// Next sequence number we will send to the peer.
    snd_next: u32,
    /// Out-of-order buffer.
    ooo: BTreeMap<u32, Vec<u8>>,
    /// Total reassembled bytes (bounded scan window retained below).
    stream: Vec<u8>,
}

impl HalfConn {
    fn new(peer_isn_plus_one: u32, our_isn_plus_one: u32) -> HalfConn {
        HalfConn {
            rcv_next: peer_isn_plus_one,
            snd_next: our_isn_plus_one,
            ooo: BTreeMap::new(),
            stream: Vec::new(),
        }
    }

    /// Absorb a data segment; returns newly contiguous bytes.
    fn receive(&mut self, seq: u32, payload: &[u8]) -> Vec<u8> {
        fn seq_lt(a: u32, b: u32) -> bool {
            (a.wrapping_sub(b) as i32) < 0
        }
        let seg_end = seq.wrapping_add(payload.len() as u32);
        if seq_lt(seg_end, self.rcv_next) || seg_end == self.rcv_next {
            return Vec::new(); // entirely old
        }
        // lint: allow(payload-copy) endpoint ingestion: the proxy's
        // receive window drains the retransmitted prefix from an owned copy.
        let mut data = payload.to_vec();
        let mut start = seq;
        if seq_lt(seq, self.rcv_next) {
            let skip = self.rcv_next.wrapping_sub(seq) as usize;
            data.drain(..skip.min(data.len()));
            start = self.rcv_next;
        }
        self.ooo.entry(start).or_insert(data);
        let mut delivered = Vec::new();
        while let Some(seg) = self.ooo.remove(&self.rcv_next) {
            self.rcv_next = self.rcv_next.wrapping_add(seg.len() as u32);
            delivered.extend_from_slice(&seg);
        }
        self.stream.extend_from_slice(&delivered);
        // Keep only a bounded scan window.
        if self.stream.len() > 64 * 1024 {
            let cut = self.stream.len() - 64 * 1024;
            self.stream.drain(..cut);
        }
        delivered
    }
}

#[derive(Debug, PartialEq, Eq, Clone, Copy)]
enum ServerSide {
    SynSent,
    Established,
}

struct ProxiedFlow {
    /// Client-facing half (we act as the server).
    client: HalfConn,
    /// Server-facing half (we act as the client).
    server: HalfConn,
    server_state: ServerSide,
    /// Data from the client waiting for the server handshake.
    pending_to_server: Vec<u8>,
    /// Classified as throttle-worthy?
    classified: bool,
    shaper: Option<TokenBucket>,
    client_addr: std::net::Ipv4Addr,
    server_addr: std::net::Ipv4Addr,
    client_port: u16,
    server_port: u16,
}

/// The transparent proxy element.
pub struct TransparentProxy {
    pub config: ProxyConfig,
    flows: HashMap<FlowKey, ProxiedFlow>,
    isn_counter: u32,
    /// Flows the proxy classified (for diagnostics).
    pub classified_flows: u64,
}

impl TransparentProxy {
    pub fn new(config: ProxyConfig) -> TransparentProxy {
        TransparentProxy {
            config,
            flows: HashMap::new(),
            isn_counter: 0x6000_0000,
            classified_flows: 0,
        }
    }

    fn intercepts(&self, server_port: u16) -> bool {
        self.config.intercept_ports.contains(&server_port)
    }

    fn send_segments(
        flow: &mut ProxiedFlow,
        now: SimTime,
        dir: Direction,
        data: &[u8],
        effects: &mut Effects,
    ) {
        // Choose addressing and sequence space by direction.
        for chunk in data.chunks(PROXY_MSS) {
            let (pkt, at) = match dir {
                Direction::ClientToServer => {
                    let p = Packet::tcp(
                        flow.client_addr,
                        flow.server_addr,
                        flow.client_port,
                        flow.server_port,
                        flow.server.snd_next,
                        flow.server.rcv_next,
                        chunk.to_vec(),
                    );
                    flow.server.snd_next = flow.server.snd_next.wrapping_add(chunk.len() as u32);
                    (p, now)
                }
                Direction::ServerToClient => {
                    let p = Packet::tcp(
                        flow.server_addr,
                        flow.client_addr,
                        flow.server_port,
                        flow.client_port,
                        flow.client.snd_next,
                        flow.client.rcv_next,
                        chunk.to_vec(),
                    );
                    flow.client.snd_next = flow.client.snd_next.wrapping_add(chunk.len() as u32);
                    let at = if flow.classified {
                        let shaper = flow.shaper.get_or_insert_with(|| TokenBucket::new(0, 0));
                        shaper.schedule(now, chunk.len() + 40)
                    } else {
                        now
                    };
                    (p, at)
                }
            };
            effects.inject(dir, TimedPacket::now(at, pkt.serialize()));
        }
    }
}

impl PathElement for TransparentProxy {
    fn name(&self) -> &str {
        &self.config.name
    }

    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }

    fn process(
        &mut self,
        now: SimTime,
        dir: Direction,
        wire: PacketBuf,
        effects: &mut Effects,
    ) -> Verdict {
        let Some(pkt) = ParsedPacket::parse(&wire) else {
            return Verdict::pass(now, wire);
        };
        let Some(key) = FlowKey::from_packet(&pkt) else {
            return Verdict::pass(now, wire);
        };
        let server_port = match dir {
            Direction::ClientToServer => key.dst_port,
            Direction::ServerToClient => key.src_port,
        };
        let Some(tcp) = pkt.tcp().cloned() else {
            return Verdict::pass(now, wire); // UDP and others pass through
        };
        if !self.intercepts(server_port) {
            return Verdict::pass(now, wire);
        }

        // The proxy's own stack validates strictly: malformed packets die.
        if !validate_wire(&wire).is_empty() {
            return Verdict::Drop;
        }

        let canonical = key.canonical();

        // Client SYN: terminate it ourselves and dial the server.
        if dir == Direction::ClientToServer && tcp.flags.syn && !tcp.flags.ack {
            self.isn_counter = self.isn_counter.wrapping_add(0x10_000);
            let client_side_isn = self.isn_counter;
            self.isn_counter = self.isn_counter.wrapping_add(0x10_000);
            let server_side_isn = self.isn_counter;

            let flow = ProxiedFlow {
                client: HalfConn::new(tcp.seq.wrapping_add(1), client_side_isn.wrapping_add(1)),
                server: HalfConn::new(0, server_side_isn.wrapping_add(1)),
                server_state: ServerSide::SynSent,
                pending_to_server: Vec::new(),
                classified: false,
                shaper: None,
                client_addr: pkt.ip.src,
                server_addr: pkt.ip.dst,
                client_port: key.src_port,
                server_port: key.dst_port,
            };
            // SYN-ACK to the client, from "the server" (us).
            let syn_ack = Packet::tcp(
                flow.server_addr,
                flow.client_addr,
                flow.server_port,
                flow.client_port,
                client_side_isn,
                tcp.seq.wrapping_add(1),
                Vec::new(),
            )
            .with_flags(TcpFlags::SYN_ACK);
            effects.inject(
                Direction::ServerToClient,
                TimedPacket::now(now, syn_ack.serialize()),
            );
            // Our own SYN toward the real server.
            let syn = Packet::tcp(
                flow.client_addr,
                flow.server_addr,
                flow.client_port,
                flow.server_port,
                server_side_isn,
                0,
                Vec::new(),
            )
            .with_flags(TcpFlags::SYN);
            effects.inject(
                Direction::ClientToServer,
                TimedPacket::now(now, syn.serialize()),
            );
            self.flows.insert(canonical, flow);
            return Verdict::Drop; // the original SYN is absorbed
        }

        let Some(flow) = self.flows.get_mut(&canonical) else {
            // Not a proxied flow (e.g. mid-flow packet with no SYN seen):
            // AT&T's proxy swallows unsolicited port-80 traffic.
            return Verdict::Drop;
        };

        match dir {
            Direction::ClientToServer => {
                if tcp.flags.rst || tcp.flags.fin {
                    // Propagate teardown toward the server as our own.
                    let out = Packet::tcp(
                        flow.client_addr,
                        flow.server_addr,
                        flow.client_port,
                        flow.server_port,
                        flow.server.snd_next,
                        flow.server.rcv_next,
                        Vec::new(),
                    )
                    .with_flags(if tcp.flags.rst {
                        TcpFlags::RST
                    } else {
                        TcpFlags::FIN_ACK
                    });
                    effects.inject(
                        Direction::ClientToServer,
                        TimedPacket::now(now, out.serialize()),
                    );
                    if tcp.flags.rst {
                        self.flows.remove(&canonical);
                    }
                    return Verdict::Drop;
                }
                if !pkt.payload.is_empty() {
                    let delivered = flow.client.receive(tcp.seq, &pkt.payload);
                    // ACK the client from "the server".
                    let ack = Packet::tcp(
                        flow.server_addr,
                        flow.client_addr,
                        flow.server_port,
                        flow.client_port,
                        flow.client.snd_next,
                        flow.client.rcv_next,
                        Vec::new(),
                    )
                    .with_flags(TcpFlags::ACK);
                    effects.inject(
                        Direction::ServerToClient,
                        TimedPacket::now(now, ack.serialize()),
                    );
                    if !delivered.is_empty() {
                        if flow.server_state == ServerSide::Established {
                            Self::send_segments(
                                flow,
                                now,
                                Direction::ClientToServer,
                                &delivered,
                                effects,
                            );
                        } else {
                            flow.pending_to_server.extend_from_slice(&delivered);
                        }
                    }
                }
                Verdict::Drop
            }
            Direction::ServerToClient => {
                if tcp.flags.syn && tcp.flags.ack {
                    // Server answered our dial.
                    flow.server.rcv_next = tcp.seq.wrapping_add(1);
                    flow.server_state = ServerSide::Established;
                    let ack = Packet::tcp(
                        flow.client_addr,
                        flow.server_addr,
                        flow.client_port,
                        flow.server_port,
                        flow.server.snd_next,
                        flow.server.rcv_next,
                        Vec::new(),
                    )
                    .with_flags(TcpFlags::ACK);
                    effects.inject(
                        Direction::ClientToServer,
                        TimedPacket::now(now, ack.serialize()),
                    );
                    if !flow.pending_to_server.is_empty() {
                        let data = std::mem::take(&mut flow.pending_to_server);
                        Self::send_segments(flow, now, Direction::ClientToServer, &data, effects);
                    }
                    return Verdict::Drop;
                }
                if tcp.flags.rst || tcp.flags.fin {
                    let out = Packet::tcp(
                        flow.server_addr,
                        flow.client_addr,
                        flow.server_port,
                        flow.client_port,
                        flow.client.snd_next,
                        flow.client.rcv_next,
                        Vec::new(),
                    )
                    .with_flags(if tcp.flags.rst {
                        TcpFlags::RST
                    } else {
                        TcpFlags::FIN_ACK
                    });
                    effects.inject(
                        Direction::ServerToClient,
                        TimedPacket::now(now, out.serialize()),
                    );
                    if tcp.flags.rst {
                        self.flows.remove(&canonical);
                    }
                    return Verdict::Drop;
                }
                if !pkt.payload.is_empty() {
                    let delivered = flow.server.receive(tcp.seq, &pkt.payload);
                    let ack = Packet::tcp(
                        flow.client_addr,
                        flow.server_addr,
                        flow.client_port,
                        flow.server_port,
                        flow.server.snd_next,
                        flow.server.rcv_next,
                        Vec::new(),
                    )
                    .with_flags(TcpFlags::ACK);
                    effects.inject(
                        Direction::ClientToServer,
                        TimedPacket::now(now, ack.serialize()),
                    );
                    if !delivered.is_empty() {
                        // Classify: HTTP request tokens + video content type.
                        if !flow.classified {
                            let req_ok = self
                                .config
                                .request_tokens
                                .iter()
                                .all(|t| contains(&flow.client.stream, t));
                            let resp_ok =
                                contains(&flow.server.stream, &self.config.response_keyword);
                            if req_ok && resp_ok {
                                flow.classified = true;
                                let (rate, burst) = self.config.throttle;
                                flow.shaper = Some(TokenBucket::new(rate, burst));
                                self.classified_flows += 1;
                            }
                        }
                        Self::send_segments(
                            flow,
                            now,
                            Direction::ServerToClient,
                            &delivered,
                            effects,
                        );
                    }
                }
                Verdict::Drop
            }
        }
    }
}
