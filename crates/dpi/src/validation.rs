//! The middlebox packet-validation model: which malformed packets a
//! classifier still *processes* (feeding their payload to the matcher) and
//! which it ignores.
//!
//! This is the crux of inert-packet insertion (§4.3): a technique works
//! when the middlebox processes a packet that the server will never act
//! on. Table 3's CC? column is, for the inert rows, a direct readout of
//! this model per device:
//!
//! - the **testbed** box "does not check for a wide range of invalid
//!   packet header values" (§1);
//! - the **GFC** "does extensive packet validation" — but not TCP
//!   checksums or the ACK flag, and it cannot know remaining hop counts;
//! - **Iran and T-Mobile** "only partially check for invalid packet
//!   headers".

use liberate_packet::validate::{Malformation, MalformationSet};

/// Which defects make the middlebox ignore a packet (treat it as noise and
/// forward it without matching on its contents).
#[derive(Debug, Clone, Default)]
pub struct ValidationModel {
    ignores: MalformationSet,
    /// Whether the classifier tracks TCP sequence numbers: if so, a
    /// segment whose sequence number is far outside the expected window is
    /// ignored rather than matched (the GFC does this; the testbed does
    /// not, §6.1/§6.5).
    pub tracks_seq: bool,
}

impl ValidationModel {
    /// Process everything, however broken (the testbed's posture for most
    /// fields).
    pub fn lax() -> ValidationModel {
        ValidationModel::default()
    }

    /// Ignore packets exhibiting any of `malformations`.
    pub fn ignoring(malformations: impl IntoIterator<Item = Malformation>) -> ValidationModel {
        ValidationModel {
            ignores: malformations.into_iter().collect(),
            tracks_seq: false,
        }
    }

    pub fn with_seq_tracking(mut self) -> ValidationModel {
        self.tracks_seq = true;
        self
    }

    pub fn also_ignoring(
        mut self,
        malformations: impl IntoIterator<Item = Malformation>,
    ) -> ValidationModel {
        self.ignores.extend(malformations);
        self
    }

    /// Should a packet with `defects` be fed to the matcher?
    pub fn processes(&self, defects: &MalformationSet) -> bool {
        self.ignores.is_disjoint(defects)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use Malformation::*;

    #[test]
    fn lax_processes_everything() {
        let m = ValidationModel::lax();
        let defects: MalformationSet = [IpChecksumWrong, TcpChecksumWrong, TcpFlagsInvalid]
            .into_iter()
            .collect();
        assert!(m.processes(&defects));
        assert!(!m.tracks_seq);
    }

    #[test]
    fn strict_ignores_listed() {
        let m = ValidationModel::ignoring([IpChecksumWrong, IpVersionInvalid]).with_seq_tracking();
        assert!(!m.processes(&[IpChecksumWrong].into_iter().collect()));
        assert!(m.processes(&[TcpChecksumWrong].into_iter().collect()));
        assert!(m.processes(&MalformationSet::new()));
        assert!(m.tracks_seq);
    }

    #[test]
    fn also_ignoring_extends() {
        let m = ValidationModel::ignoring([IpVersionInvalid]).also_ignoring([UdpLengthLong]);
        assert!(!m.processes(&[UdpLengthLong].into_iter().collect()));
    }
}
