//! Compiled multi-pattern matching: a dependency-free Aho–Corasick
//! automaton plus the per-flow scan state that lets the device feed each
//! stream byte through it exactly once.
//!
//! The naive scanner in [`crate::matcher`] rescans an ever-growing
//! reassembled prefix from offset 0 on every packet, once per rule. Real
//! DPI boxes compile the whole rule set into one automaton and stream
//! bytes through it; this module does the same while staying byte-exact
//! with the naive model:
//!
//! - [`Automaton`]: trie + BFS failure links flattened into a dense
//!   byte-indexed transition table, with merged output lists per state.
//! - [`CompiledRuleSet`]: a [`crate::rules::RuleSet`]'s keywords and the
//!   reassembly mode's gate prefixes deduplicated into one automaton,
//!   plus the rule → pattern mapping needed to answer first-match
//!   queries in rule order.
//! - [`StreamScan`]: the per-flow cursor (automaton state, bytes fed,
//!   earliest occurrence per pattern, gate-at-offset-0 flag). Matching a
//!   growing stream is then O(new bytes), not O(stream × rules).
//!
//! Parity with the naive scanner is exact because keyword rules only ask
//! *containment* ("has pattern p occurred in the prefix fed so far?") and
//! the gate only asks "did a gate prefix occur starting at offset 0?" —
//! both are monotone facts the scan state carries across packets, and the
//! flow table restarts the scan whenever first-wins overlap rewrites an
//! already-fed byte (see `StreamAssembler::drain_new_contiguous`).

use std::collections::{BTreeMap, VecDeque};

use liberate_packet::flow::Direction;

use crate::rules::{MatchRule, PositionConstraint, RuleSet};

/// Which matcher implementation a device uses. Profiles default to the
/// automaton; the naive rescanner is kept as the reference model for
/// parity tests and benchmarks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum MatcherKind {
    /// Rescan the assembled data from offset 0, once per rule, on every
    /// packet ([`crate::matcher::find`]).
    NaiveRescan,
    /// Feed each byte once through a compiled [`CompiledRuleSet`].
    #[default]
    Automaton,
}

/// A dense Aho–Corasick automaton over arbitrary byte patterns.
///
/// Empty patterns are accepted but never produce output (the naive
/// [`crate::matcher::find`] returns `None` for an empty needle).
#[derive(Debug, Clone)]
pub struct Automaton {
    /// `delta[state][byte]` → next state. State 0 is the root.
    delta: Vec<[u32; 256]>,
    /// Pattern ids ending at each state, failure-closure merged.
    out: Vec<Box<[u32]>>,
    /// Pattern lengths by pattern id.
    lens: Vec<u32>,
    /// `root_live[b]` ⇔ byte `b` leaves the root (`delta[0][b] != 0`).
    /// Dead bytes self-loop at the root with no outputs (the root is the
    /// empty prefix; only non-empty patterns create states), so while the
    /// scan sits at the root it can skim them in a tight memchr-style
    /// loop without touching the transition table. With few patterns
    /// (single-keyword profiles) almost every byte is dead and the skip
    /// loop carries the whole scan.
    root_live: [bool; 256],
}

impl Automaton {
    /// Compile `patterns` (ids are their indices in the slice).
    pub fn build(patterns: &[Vec<u8>]) -> Automaton {
        // Goto trie. u32::MAX marks "no edge" until failure resolution.
        let mut next: Vec<[u32; 256]> = vec![[u32::MAX; 256]];
        let mut ends: Vec<Vec<u32>> = vec![Vec::new()];
        for (pid, pat) in patterns.iter().enumerate() {
            if pat.is_empty() {
                continue;
            }
            let mut s = 0usize;
            for &b in pat {
                let t = next[s][b as usize];
                s = if t == u32::MAX {
                    next.push([u32::MAX; 256]);
                    ends.push(Vec::new());
                    let fresh = (next.len() - 1) as u32;
                    next[s][b as usize] = fresh;
                    fresh as usize
                } else {
                    t as usize
                };
            }
            ends[s].push(pid as u32);
        }

        // BFS failure links, flattened directly into a dense delta so the
        // hot loop is a single table lookup per byte with no fallback
        // chasing.
        let n = next.len();
        let mut fail = vec![0u32; n];
        let mut delta = vec![[0u32; 256]; n];
        let mut queue = VecDeque::new();
        for (b, cell) in delta[0].iter_mut().enumerate() {
            let t = next[0][b];
            if t != u32::MAX {
                *cell = t;
                queue.push_back(t);
            }
        }
        while let Some(s) = queue.pop_front() {
            let su = s as usize;
            // The failure state is strictly shallower, so its output list
            // is already failure-closed when we merge it here (BFS order).
            let inherited = ends[fail[su] as usize].clone();
            ends[su].extend(inherited);
            for b in 0..256 {
                let t = next[su][b];
                if t == u32::MAX {
                    delta[su][b] = delta[fail[su] as usize][b];
                } else {
                    fail[t as usize] = delta[fail[su] as usize][b];
                    delta[su][b] = t;
                    queue.push_back(t);
                }
            }
        }

        let mut root_live = [false; 256];
        for (b, live) in root_live.iter_mut().enumerate() {
            *live = delta[0][b] != 0;
        }

        Automaton {
            delta,
            out: ends.into_iter().map(|v| v.into_boxed_slice()).collect(),
            lens: patterns.iter().map(|p| p.len() as u32).collect(),
            root_live,
        }
    }

    /// Length of the longest prefix of `bytes` made entirely of bytes
    /// that keep the automaton at the root. Only valid to skip while the
    /// current state *is* the root; the skipped bytes produce no
    /// transitions and no outputs, so callers advance their byte counters
    /// by the returned amount and the scan stays byte-exact.
    #[inline]
    pub fn skip_at_root(&self, bytes: &[u8]) -> usize {
        bytes
            .iter()
            .take_while(|&&b| !self.root_live[b as usize])
            .count()
    }

    /// Number of automaton states (trie nodes incl. the root).
    pub fn state_count(&self) -> usize {
        self.delta.len()
    }

    /// One transition.
    #[inline]
    pub fn step(&self, state: u32, byte: u8) -> u32 {
        self.delta[state as usize][byte as usize]
    }

    /// Pattern ids whose occurrences end when `state` is entered.
    #[inline]
    pub fn outputs(&self, state: u32) -> &[u32] {
        &self.out[state as usize]
    }

    /// Length of pattern `pid`.
    #[inline]
    pub fn pattern_len(&self, pid: u32) -> u32 {
        self.lens[pid as usize]
    }

    /// First occurrence offset of pattern `pid` in `haystack` — the
    /// automaton's answer to [`crate::matcher::find`], used by parity
    /// tests.
    pub fn find_first(&self, haystack: &[u8], pid: u32) -> Option<usize> {
        let mut state = 0u32;
        let mut i = 0usize;
        while i < haystack.len() {
            if state == 0 {
                i += self.skip_at_root(&haystack[i..]);
                if i >= haystack.len() {
                    break;
                }
            }
            state = self.step(state, haystack[i]);
            if self.outputs(state).contains(&pid) {
                return Some(i + 1 - self.pattern_len(pid) as usize);
            }
            i += 1;
        }
        None
    }
}

/// A [`RuleSet`] (plus the reassembly mode's gate prefixes) compiled into
/// one automaton, with the bookkeeping to answer rule-ordered first-match
/// queries and streaming gate decisions.
#[derive(Debug, Clone)]
pub struct CompiledRuleSet {
    automaton: Automaton,
    /// Rule index → pattern id; `None` for empty keywords (which the
    /// naive matcher never matches).
    rule_pattern: Vec<Option<u32>>,
    /// Pattern id → is it a gate prefix?
    is_gate: Vec<bool>,
    /// Longest gate prefix: once this many bytes are fed without a hit at
    /// offset 0 the gate can never pass.
    gate_max_len: usize,
    /// An *empty* gate prefix was supplied: any non-empty stream passes
    /// (`data.starts_with(b"")` is true).
    gate_trivial: bool,
}

impl CompiledRuleSet {
    /// Compile `rules`' keywords and the optional gate prefixes. Patterns
    /// are deduplicated: rules sharing a keyword share a pattern id.
    pub fn compile(rules: &RuleSet, gate_prefixes: Option<&[Vec<u8>]>) -> CompiledRuleSet {
        let mut ids: BTreeMap<Vec<u8>, u32> = BTreeMap::new();
        let mut patterns: Vec<Vec<u8>> = Vec::new();
        let mut intern = |pat: &[u8], patterns: &mut Vec<Vec<u8>>| -> u32 {
            *ids.entry(pat.to_vec()).or_insert_with(|| {
                patterns.push(pat.to_vec());
                (patterns.len() - 1) as u32
            })
        };

        let rule_pattern: Vec<Option<u32>> = rules
            .rules
            .iter()
            .map(|r| {
                if r.keyword.is_empty() {
                    None
                } else {
                    Some(intern(&r.keyword, &mut patterns))
                }
            })
            .collect();

        let mut gate_trivial = false;
        let mut gate_max_len = 0usize;
        let mut gate_ids = Vec::new();
        for g in gate_prefixes.unwrap_or(&[]) {
            if g.is_empty() {
                gate_trivial = true;
            } else {
                gate_max_len = gate_max_len.max(g.len());
                gate_ids.push(intern(g, &mut patterns));
            }
        }

        let mut is_gate = vec![false; patterns.len()];
        for id in gate_ids {
            is_gate[id as usize] = true;
        }

        CompiledRuleSet {
            automaton: Automaton::build(&patterns),
            rule_pattern,
            is_gate,
            gate_max_len,
            gate_trivial,
        }
    }

    pub fn automaton(&self) -> &Automaton {
        &self.automaton
    }

    pub fn state_count(&self) -> usize {
        self.automaton.state_count()
    }

    /// Number of distinct compiled patterns (keywords + gate prefixes).
    pub fn pattern_count(&self) -> usize {
        self.is_gate.len()
    }

    /// Pattern id for rule `i`, if its keyword is non-empty.
    pub fn pattern_of_rule(&self, i: usize) -> Option<u32> {
        self.rule_pattern.get(i).copied().flatten()
    }

    /// Feed bytes into a per-flow scan. Each byte costs one transition;
    /// occurrences update the earliest-offset table and the gate flag.
    pub fn feed(&self, scan: &mut StreamScan, bytes: &[u8]) {
        scan.earliest.resize(self.pattern_count(), u64::MAX);
        let mut state = scan.state;
        let mut i = 0usize;
        while i < bytes.len() {
            // Root fast path: skim bytes that cannot start any pattern.
            // They count as fed (offset accounting stays byte-exact) but
            // cost no table lookups.
            if state == 0 {
                let skipped = self.automaton.skip_at_root(&bytes[i..]);
                i += skipped;
                scan.fed += skipped as u64;
                if i >= bytes.len() {
                    break;
                }
            }
            state = self.automaton.step(state, bytes[i]);
            let outs = self.automaton.outputs(state);
            if !outs.is_empty() {
                for &pid in outs {
                    let start = scan.fed + 1 - self.automaton.pattern_len(pid) as u64;
                    let p = pid as usize;
                    if scan.earliest[p] == u64::MAX {
                        scan.earliest[p] = start;
                    }
                    if start == 0 && self.is_gate[p] {
                        scan.gate_hit = true;
                    }
                }
            }
            scan.fed += 1;
            i += 1;
        }
        scan.state = state;
    }

    /// Streaming equivalent of `starts_with_any(prefix, gate_prefixes)`
    /// for the bytes fed so far. Only meaningful when gate prefixes were
    /// compiled in.
    pub fn gate_passed(&self, scan: &StreamScan) -> bool {
        self.gate_trivial || scan.gate_hit
    }

    /// The gate can no longer pass: every gate prefix would already have
    /// completed within the first `gate_max_len` bytes.
    pub fn gate_failed(&self, scan: &StreamScan) -> bool {
        !self.gate_passed(scan) && scan.fed >= self.gate_max_len as u64
    }

    /// First rule (in rule order) matching the stream fed so far —
    /// equivalent to `RuleSet::first_match(prefix, .., None)` on the same
    /// bytes. Position-constrained rules never match stream data, exactly
    /// like the naive path with `packet_index = None`.
    pub fn first_match_stream(
        &self,
        rules: &RuleSet,
        scan: &StreamScan,
        dir: Direction,
        server_port: u16,
    ) -> Option<usize> {
        rules.rules.iter().enumerate().position(|(i, r)| {
            r.applies_to_port(server_port)
                && r.applies_to_direction(dir)
                && r.position == PositionConstraint::Anywhere
                && match self.rule_pattern[i] {
                    Some(pid) => scan.has(pid),
                    None => false,
                }
        })
    }

    /// First rule matching a single packet's payload, plus the bytes this
    /// scan cost: one pass over the payload if any applicable rule exists,
    /// zero otherwise (mirroring the naive accounting, which scans nothing
    /// when every rule is filtered out by port/direction/position).
    pub fn first_match_packet(
        &self,
        rules: &RuleSet,
        data: &[u8],
        dir: Direction,
        server_port: u16,
        packet_index: Option<usize>,
    ) -> (Option<usize>, u64) {
        let applies = |i: usize, r: &MatchRule| {
            self.rule_pattern[i].is_some()
                && r.applies_to_port(server_port)
                && r.applies_to_direction(dir)
                && match r.position {
                    PositionConstraint::Anywhere => true,
                    PositionConstraint::PacketIndex(want) => packet_index == Some(want),
                }
        };
        if !rules.rules.iter().enumerate().any(|(i, r)| applies(i, r)) {
            return (None, 0);
        }
        let mut hit = vec![false; self.pattern_count()];
        let mut state = 0u32;
        let mut i = 0usize;
        while i < data.len() {
            if state == 0 {
                i += self.automaton.skip_at_root(&data[i..]);
                if i >= data.len() {
                    break;
                }
            }
            state = self.automaton.step(state, data[i]);
            for &pid in self.automaton.outputs(state) {
                hit[pid as usize] = true;
            }
            i += 1;
        }
        let first = rules.rules.iter().enumerate().position(|(i, r)| {
            applies(i, r)
                && match self.rule_pattern[i] {
                    Some(pid) => hit[pid as usize],
                    None => false,
                }
        });
        (first, data.len() as u64)
    }
}

/// Per-flow scan cursor: everything the automaton needs to continue a
/// stream where the last packet left off. Cheap to clone, `Default` is
/// the pristine pre-stream state.
#[derive(Debug, Clone, Default)]
pub struct StreamScan {
    /// Current automaton state.
    state: u32,
    /// Stream bytes fed so far.
    fed: u64,
    /// Earliest occurrence offset per pattern id; `u64::MAX` = not seen.
    earliest: Vec<u64>,
    /// A gate prefix occurred starting at stream offset 0.
    gate_hit: bool,
}

impl StreamScan {
    /// Forget everything (used when first-wins overlap rewrites already
    /// fed bytes and the prefix must be refed from scratch).
    pub fn reset(&mut self) {
        *self = StreamScan::default();
    }

    /// Bytes fed so far.
    pub fn fed_bytes(&self) -> u64 {
        self.fed
    }

    /// Has pattern `pid` occurred in the bytes fed so far?
    pub fn has(&self, pid: u32) -> bool {
        self.earliest
            .get(pid as usize)
            .map(|&e| e != u64::MAX)
            .unwrap_or(false)
    }

    /// Earliest occurrence offset of pattern `pid`, if seen.
    pub fn earliest_offset(&self, pid: u32) -> Option<u64> {
        self.earliest
            .get(pid as usize)
            .copied()
            .filter(|&e| e != u64::MAX)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matcher;
    use crate::rules::MatchRule;

    fn pats(ps: &[&[u8]]) -> Vec<Vec<u8>> {
        ps.iter().map(|p| p.to_vec()).collect()
    }

    #[test]
    fn find_first_agrees_with_naive_find() {
        let patterns = pats(&[
            b"cloudfront.net",
            b"spotify.com",
            b"he",
            b"she",
            b"hers",
            b"GET ",
            &[0x16, 0x03],
        ]);
        let a = Automaton::build(&patterns);
        let haystacks: Vec<&[u8]> = vec![
            b"GET / HTTP/1.1\r\nHost: x.cloudfront.net\r\n\r\n",
            b"ushers",
            b"she sells sea shells",
            b"hershey",
            b"\x16\x03\x01\x00GET spotify.comcloudfront.net",
            b"",
            b"clou",
            b"cloudfront.ne",
        ];
        for hay in haystacks {
            for (pid, p) in patterns.iter().enumerate() {
                assert_eq!(
                    a.find_first(hay, pid as u32),
                    matcher::find(hay, p),
                    "pattern {p:?} in {hay:?}"
                );
            }
        }
    }

    #[test]
    fn overlapping_patterns_all_reported() {
        let patterns = pats(&[b"he", b"she", b"his", b"hers"]);
        let a = Automaton::build(&patterns);
        assert_eq!(a.find_first(b"ushers", 0), Some(2)); // he
        assert_eq!(a.find_first(b"ushers", 1), Some(1)); // she
        assert_eq!(a.find_first(b"ushers", 2), None); // his
        assert_eq!(a.find_first(b"ushers", 3), Some(2)); // hers
    }

    #[test]
    fn empty_pattern_never_matches() {
        let patterns = pats(&[b"", b"x"]);
        let a = Automaton::build(&patterns);
        assert_eq!(a.find_first(b"anything", 0), None);
        assert_eq!(a.find_first(b"xyz", 1), Some(0));
    }

    #[test]
    fn streaming_feed_is_split_invariant() {
        let rules = RuleSet::new(vec![
            MatchRule::keyword("cf", "video", &b"cloudfront.net"[..]).client_only(),
            MatchRule::keyword("sp", "music", &b"spotify.com"[..]).client_only(),
        ]);
        let c = CompiledRuleSet::compile(&rules, None);
        let data = b"GET / HTTP/1.1\r\nHost: media.cloudfront.net\r\n\r\n";

        let mut whole = StreamScan::default();
        c.feed(&mut whole, data);

        // Feed the same bytes one at a time: identical observable state.
        let mut bytewise = StreamScan::default();
        for b in data {
            c.feed(&mut bytewise, std::slice::from_ref(b));
        }
        let pid = c.pattern_of_rule(0).unwrap();
        assert!(whole.has(pid) && bytewise.has(pid));
        assert_eq!(
            whole.earliest_offset(pid),
            matcher::find(data, b"cloudfront.net").map(|o| o as u64)
        );
        assert_eq!(whole.earliest_offset(pid), bytewise.earliest_offset(pid));
        assert!(!whole.has(c.pattern_of_rule(1).unwrap()));
        assert_eq!(whole.fed_bytes(), data.len() as u64);
    }

    #[test]
    fn gate_requires_offset_zero() {
        let rules = RuleSet::new(vec![MatchRule::keyword(
            "e",
            "blocked",
            &b"economist.com"[..],
        )]);
        let gates = pats(&[b"GET ", b"POST "]);
        let c = CompiledRuleSet::compile(&rules, Some(&gates));

        let mut at_zero = StreamScan::default();
        c.feed(&mut at_zero, b"GET /x");
        assert!(c.gate_passed(&at_zero));

        // The same prefix one byte in never gates, and after the longest
        // gate prefix's worth of bytes the failure is permanent.
        let mut shifted = StreamScan::default();
        c.feed(&mut shifted, b"XGET /x");
        assert!(!c.gate_passed(&shifted));
        assert!(c.gate_failed(&shifted));

        let mut undecided = StreamScan::default();
        c.feed(&mut undecided, b"GET");
        assert!(!c.gate_passed(&undecided));
        assert!(!c.gate_failed(&undecided), "could still complete 'GET '");
    }

    #[test]
    fn first_match_stream_respects_rule_order_and_filters() {
        let rules = RuleSet::new(vec![
            MatchRule::keyword("srv", "a", &b"shared"[..]).server_only(),
            MatchRule::keyword("pos", "b", &b"shared"[..]).in_packet(0),
            MatchRule::keyword("any", "c", &b"shared"[..]),
            MatchRule::keyword("dup", "d", &b"shared"[..]),
        ]);
        let c = CompiledRuleSet::compile(&rules, None);
        let mut scan = StreamScan::default();
        c.feed(&mut scan, b"xx shared yy");
        // Server-only and position-constrained rules are filtered out on
        // client stream data; the first surviving rule in order wins.
        assert_eq!(
            c.first_match_stream(&rules, &scan, Direction::ClientToServer, 80),
            Some(2)
        );
        assert_eq!(
            c.first_match_stream(&rules, &scan, Direction::ServerToClient, 80),
            Some(0)
        );
    }

    #[test]
    fn first_match_packet_agrees_with_naive_first_match() {
        let rules = RuleSet::new(vec![
            MatchRule::keyword("sq", "voip", vec![0x80, 0x55])
                .client_only()
                .in_packet(0),
            MatchRule::keyword("fb", "blocked", &b"facebook.com"[..]).on_ports([80]),
            MatchRule::keyword("cf", "video", &b"cloudfront.net"[..]).client_only(),
        ]);
        let c = CompiledRuleSet::compile(&rules, None);
        let cases: Vec<(&[u8], Direction, u16, Option<usize>)> = vec![
            (
                b"\x00\x01\x80\x55",
                Direction::ClientToServer,
                3478,
                Some(0),
            ),
            (
                b"\x00\x01\x80\x55",
                Direction::ClientToServer,
                3478,
                Some(1),
            ),
            (b"GET facebook.com", Direction::ClientToServer, 80, Some(0)),
            (
                b"GET facebook.com",
                Direction::ClientToServer,
                8080,
                Some(0),
            ),
            (b"cloudfront.net", Direction::ServerToClient, 80, Some(3)),
            (b"cloudfront.net", Direction::ClientToServer, 443, None),
            (b"", Direction::ClientToServer, 80, Some(0)),
        ];
        for (data, dir, port, idx) in cases {
            let naive = rules
                .first_match(data, dir, port, idx)
                .map(|r| r.id.clone());
            let (auto, _) = c.first_match_packet(&rules, data, dir, port, idx);
            let auto = auto.map(|i| rules.rules[i].id.clone());
            assert_eq!(naive, auto, "{data:?} {dir:?} {port} {idx:?}");
        }
    }

    #[test]
    fn packet_scan_cost_is_zero_when_no_rule_applies() {
        let rules = RuleSet::new(vec![MatchRule::keyword(
            "fb",
            "blocked",
            &b"facebook.com"[..],
        )
        .on_ports([80])]);
        let c = CompiledRuleSet::compile(&rules, None);
        let (_, scanned) = c.first_match_packet(
            &rules,
            b"facebook.com",
            Direction::ClientToServer,
            443,
            None,
        );
        assert_eq!(scanned, 0);
        let (_, scanned) =
            c.first_match_packet(&rules, b"facebook.com", Direction::ClientToServer, 80, None);
        assert_eq!(scanned, 12);
    }

    #[test]
    fn skip_loop_finds_patterns_at_every_placement() {
        // A single-pattern automaton is all skip loop: the pattern at the
        // start, middle, end, back-to-back, and absent must all resolve
        // to the same offsets as the naive scanner.
        let patterns = pats(&[b"needle"]);
        let a = Automaton::build(&patterns);
        let dead = vec![b'x'; 500];
        let mut cases: Vec<Vec<u8>> = vec![
            b"needle".to_vec(),
            dead.clone(),
            Vec::new(),
            b"needleneedle".to_vec(),
            // Partial occurrences that fall back to the root mid-pattern.
            b"neeneedle".to_vec(),
            b"needl".to_vec(),
        ];
        for at in [0usize, 1, 250, 494] {
            let mut hay = dead.clone();
            hay[at..at + 6].copy_from_slice(b"needle");
            cases.push(hay);
        }
        for hay in cases {
            assert_eq!(
                a.find_first(&hay, 0),
                matcher::find(&hay, b"needle"),
                "haystack {hay:?}"
            );
        }
    }

    #[test]
    fn skip_loop_feed_is_split_invariant_over_dead_bytes() {
        // Chunk boundaries landing inside skipped runs and inside the
        // pattern itself must not change the scan's observable state.
        let rules = RuleSet::new(vec![MatchRule::keyword("n", "c", &b"needle"[..])]);
        let c = CompiledRuleSet::compile(&rules, None);
        let mut data = vec![b'.'; 300];
        data[150..156].copy_from_slice(b"needle");

        let mut whole = StreamScan::default();
        c.feed(&mut whole, &data);

        for chunk in [1usize, 3, 7, 64, 151, 153] {
            let mut scan = StreamScan::default();
            for piece in data.chunks(chunk) {
                c.feed(&mut scan, piece);
            }
            let pid = c.pattern_of_rule(0).unwrap();
            assert_eq!(scan.fed_bytes(), whole.fed_bytes(), "chunk {chunk}");
            assert_eq!(
                scan.earliest_offset(pid),
                whole.earliest_offset(pid),
                "chunk {chunk}"
            );
            assert_eq!(scan.earliest_offset(pid), Some(150));
        }
    }

    #[test]
    fn duplicate_keywords_share_a_pattern() {
        let rules = RuleSet::new(vec![
            MatchRule::keyword("a", "x", &b"same"[..]),
            MatchRule::keyword("b", "y", &b"same"[..]),
        ]);
        let c = CompiledRuleSet::compile(&rules, None);
        assert_eq!(c.pattern_count(), 1);
        assert_eq!(c.pattern_of_rule(0), c.pattern_of_rule(1));
    }

    #[test]
    fn reset_forgets_matches_and_gate() {
        let rules = RuleSet::new(vec![MatchRule::keyword("e", "b", &b"evil"[..])]);
        let gates = pats(&[b"GET "]);
        let c = CompiledRuleSet::compile(&rules, Some(&gates));
        let mut scan = StreamScan::default();
        c.feed(&mut scan, b"GET evil");
        assert!(c.gate_passed(&scan) && scan.has(c.pattern_of_rule(0).unwrap()));
        scan.reset();
        assert!(!c.gate_passed(&scan));
        assert_eq!(scan.fed_bytes(), 0);
        assert!(!scan.has(c.pattern_of_rule(0).unwrap()));
    }
}
