//! End-to-end middlebox behaviour through a scripted client: the headline
//! phenomena of §6 exercised directly, before lib·erate's own engines are
//! layered on top.

use std::time::Duration;

use liberate_dpi::prelude::*;
use liberate_netsim::os::OsKind;
use liberate_netsim::server::EchoApp;
use liberate_packet::packet::{Packet, ParsedPacket};
use liberate_packet::tcp::TcpFlags;
use liberate_traces::http::get_request;

const CPORT: u16 = 42_000;

/// Minimal scripted client: handshake then send payload packets in order.
struct Client {
    seq: u32,
    ack: u32,
    sport: u16,
    dport: u16,
}

impl Client {
    fn connect(env: &mut Environment, sport: u16, dport: u16) -> Client {
        let syn = Packet::tcp(CLIENT_ADDR, SERVER_ADDR, sport, dport, 5000, 0, vec![])
            .with_flags(TcpFlags::SYN);
        env.network
            .send_from_client(Duration::ZERO, syn.serialize());
        env.network.run_until_idle();
        let inbox = env.network.take_client_inbox();
        let syn_ack = inbox
            .iter()
            .filter_map(|(_, w)| ParsedPacket::parse(w))
            .find(|p| p.tcp().map(|t| t.flags.syn && t.flags.ack).unwrap_or(false))
            .expect("SYN-ACK");
        let t = syn_ack.tcp().unwrap();
        Client {
            seq: 5001,
            ack: t.seq.wrapping_add(1),
            sport,
            dport,
        }
    }

    fn send(&mut self, env: &mut Environment, payload: &[u8]) {
        let pkt = Packet::tcp(
            CLIENT_ADDR,
            SERVER_ADDR,
            self.sport,
            self.dport,
            self.seq,
            self.ack,
            payload.to_vec(),
        );
        self.seq = self.seq.wrapping_add(payload.len() as u32);
        env.network
            .send_from_client(Duration::ZERO, pkt.serialize());
        env.network.run_until_idle();
    }

    fn flow_key(&self) -> liberate_packet::flow::FlowKey {
        liberate_packet::flow::FlowKey::new(CLIENT_ADDR, SERVER_ADDR, self.sport, self.dport, 6)
    }
}

fn received_rst(env: &mut Environment) -> bool {
    env.network.take_client_inbox().iter().any(|(_, w)| {
        ParsedPacket::parse(w)
            .and_then(|p| p.tcp().map(|t| t.flags.rst))
            .unwrap_or(false)
    })
}

#[test]
fn testbed_classifies_prime_video() {
    let mut env = build_environment(
        EnvKind::Testbed,
        OsKind::Linux,
        Box::<EchoApp>::default(),
        0,
    );
    let mut c = Client::connect(&mut env, CPORT, 80);
    c.send(
        &mut env,
        &get_request("x.cloudfront.net", "/v.mp4", "Prime/5"),
    );
    let key = c.flow_key();
    let class = env.dpi_mut().unwrap().classification_of(key);
    assert_eq!(class.as_deref(), Some("video"));
}

#[test]
fn testbed_one_byte_first_packet_evades() {
    let mut env = build_environment(
        EnvKind::Testbed,
        OsKind::Linux,
        Box::<EchoApp>::default(),
        0,
    );
    let mut c = Client::connect(&mut env, CPORT, 80);
    let req = get_request("x.cloudfront.net", "/v.mp4", "Prime/5");
    c.send(&mut env, &req[..1]);
    c.send(&mut env, &req[1..]);
    let key = c.flow_key();
    assert_eq!(env.dpi_mut().unwrap().classification_of(key), None);
}

#[test]
fn testbed_decoy_changes_class_and_result_times_out() {
    let mut env = build_environment(
        EnvKind::Testbed,
        OsKind::Linux,
        Box::<EchoApp>::default(),
        0,
    );
    let mut c = Client::connect(&mut env, CPORT, 80);
    // A decoy for the innocuous class occupies the first inspected packet.
    c.send(&mut env, &get_request("www.example.org", "/", "curl"));
    c.send(
        &mut env,
        &get_request("x.cloudfront.net", "/v.mp4", "Prime/5"),
    );
    let key = c.flow_key();
    assert_eq!(
        env.dpi_mut().unwrap().classification_of(key).as_deref(),
        Some("web")
    );
    // 130 s idle > the 120 s result timeout: classification flushes.
    env.network.advance(Duration::from_secs(130));
    c.send(&mut env, b"more bytes");
    assert_eq!(env.dpi_mut().unwrap().classification_of(key), None);
}

#[test]
fn gfc_blocks_economist_and_penalizes_server_port() {
    let mut env = build_environment(EnvKind::Gfc, OsKind::Linux, Box::<EchoApp>::default(), 0);
    let mut c = Client::connect(&mut env, CPORT, 80);
    c.send(&mut env, &get_request("www.economist.com", "/", "Mozilla"));
    assert!(received_rst(&mut env), "GFC should inject RSTs");

    // Second blocked flow to the same server:port crosses the penalty
    // threshold; a third, *clean* flow is then blocked too.
    let mut c2 = Client::connect(&mut env, CPORT + 1, 80);
    c2.send(&mut env, &get_request("www.economist.com", "/", "Mozilla"));
    env.network.take_client_inbox();

    let syn = Packet::tcp(CLIENT_ADDR, SERVER_ADDR, CPORT + 2, 80, 9000, 0, vec![])
        .with_flags(TcpFlags::SYN);
    env.network
        .send_from_client(Duration::ZERO, syn.serialize());
    env.network.run_until_idle();
    assert!(
        received_rst(&mut env),
        "penalized server:port should be blocked even for clean flows"
    );

    // A different port on the same server is unaffected.
    let mut c3 = Client::connect(&mut env, CPORT + 3, 8080);
    c3.send(&mut env, &get_request("www.okay.example", "/", "Mozilla"));
    assert!(!received_rst(&mut env));
}

#[test]
fn gfc_dummy_prefix_byte_evades() {
    let mut env = build_environment(EnvKind::Gfc, OsKind::Linux, Box::<EchoApp>::default(), 0);
    let mut c = Client::connect(&mut env, CPORT, 80);
    c.send(&mut env, b"x"); // one dummy byte before the request
    c.send(&mut env, &get_request("www.economist.com", "/", "Mozilla"));
    assert!(!received_rst(&mut env), "dummy prefix should evade the GFC");
}

#[test]
fn gfc_reassembles_split_segments() {
    let mut env = build_environment(EnvKind::Gfc, OsKind::Linux, Box::<EchoApp>::default(), 0);
    let mut c = Client::connect(&mut env, CPORT, 80);
    let req = get_request("www.economist.com", "/", "Mozilla");
    // Split the keyword across two segments: full reassembly still sees it.
    let cut = req.len() / 2;
    c.send(&mut env, &req[..cut]);
    c.send(&mut env, &req[cut..]);
    assert!(
        received_rst(&mut env),
        "the GFC reassembles; splitting fails"
    );
}

#[test]
fn iran_blocks_on_port_80_only_and_splitting_works() {
    // Port 80: blocked with a 403 page.
    let mut env = build_environment(EnvKind::Iran, OsKind::Linux, Box::<EchoApp>::default(), 0);
    let mut c = Client::connect(&mut env, CPORT, 80);
    c.send(&mut env, &get_request("www.facebook.com", "/", "Mozilla"));
    let inbox = env.network.take_client_inbox();
    let saw_403 = inbox.iter().any(|(_, w)| {
        ParsedPacket::parse(w)
            .map(|p| p.payload.windows(13).any(|w| w == b"403 Forbidden"))
            .unwrap_or(false)
    });
    let saw_rst = inbox.iter().any(|(_, w)| {
        ParsedPacket::parse(w)
            .and_then(|p| p.tcp().map(|t| t.flags.rst))
            .unwrap_or(false)
    });
    assert!(saw_403 && saw_rst, "Iran sends a 403 page plus RSTs");

    // Port 8080: same content, untouched.
    let mut env = build_environment(EnvKind::Iran, OsKind::Linux, Box::<EchoApp>::default(), 0);
    let mut c = Client::connect(&mut env, CPORT, 8080);
    c.send(&mut env, &get_request("www.facebook.com", "/", "Mozilla"));
    assert!(!received_rst(&mut env));

    // Port 80 with the keyword split across two packets: per-packet
    // matching misses it.
    let mut env = build_environment(EnvKind::Iran, OsKind::Linux, Box::<EchoApp>::default(), 0);
    let mut c = Client::connect(&mut env, CPORT, 80);
    let req = get_request("www.facebook.com", "/", "Mozilla");
    let cut = liberate_traces::http::find(&req, b"facebook.com").unwrap() + 4;
    c.send(&mut env, &req[..cut]);
    c.send(&mut env, &req[cut..]);
    assert!(!received_rst(&mut env), "splitting the keyword evades Iran");
}

#[test]
fn tmus_zero_rates_video_and_reordering_evades() {
    let mut env = build_environment(
        EnvKind::TMobile,
        OsKind::Linux,
        Box::<EchoApp>::default(),
        0,
    );
    let mut c = Client::connect(&mut env, CPORT, 80);
    c.send(
        &mut env,
        &get_request("x.cloudfront.net", "/v.mp4", "Prime/5"),
    );
    let dpi = env.dpi_mut().unwrap();
    assert!(dpi.zero_rated_bytes > 0, "video flow should be zero-rated");
    assert_eq!(
        dpi.classification_of(liberate_packet::flow::FlowKey::new(
            CLIENT_ADDR,
            SERVER_ADDR,
            CPORT,
            80,
            6
        ))
        .as_deref(),
        Some("video")
    );

    // Reversed two-segment order: the first arriving payload packet does
    // not begin with GET, the gate fails, nothing is classified.
    let mut env = build_environment(
        EnvKind::TMobile,
        OsKind::Linux,
        Box::<EchoApp>::default(),
        0,
    );
    let mut c = Client::connect(&mut env, CPORT, 80);
    let req = get_request("x.cloudfront.net", "/v.mp4", "Prime/5");
    let cut = req.len() / 2;
    // Send the tail first (higher sequence number), then the head.
    let tail = Packet::tcp(
        CLIENT_ADDR,
        SERVER_ADDR,
        CPORT,
        80,
        c.seq.wrapping_add(cut as u32),
        c.ack,
        req[cut..].to_vec(),
    );
    env.network
        .send_from_client(Duration::ZERO, tail.serialize());
    env.network.run_until_idle();
    c.send(&mut env, &req[..cut]);
    let dpi = env.dpi_mut().unwrap();
    assert_eq!(
        dpi.classification_of(liberate_packet::flow::FlowKey::new(
            CLIENT_ADDR,
            SERVER_ADDR,
            CPORT,
            80,
            6
        )),
        None,
        "reordering should evade T-Mobile"
    );
}

#[test]
fn att_proxy_transfers_and_throttles_video() {
    use liberate_netsim::capture::TapPoint;
    // An app that answers any request with an HTTP video response.
    struct VideoApp;
    impl liberate_netsim::server::ServerApp for VideoApp {
        fn on_tcp_data(&mut self, _f: liberate_packet::flow::FlowKey, data: &[u8]) -> Vec<u8> {
            if data.windows(4).any(|w| w == b"GET ") {
                liberate_traces::http::response(
                    200,
                    "OK",
                    "video/mp4",
                    &liberate_traces::apps::media_bytes(500_000, 9),
                )
            } else {
                Vec::new()
            }
        }
        fn on_udp_datagram(
            &mut self,
            _f: liberate_packet::flow::FlowKey,
            _d: &[u8],
        ) -> Vec<Vec<u8>> {
            Vec::new()
        }
    }

    let mut env = build_environment(EnvKind::Att, OsKind::Linux, Box::new(VideoApp), 0);
    let mut c = Client::connect(&mut env, CPORT, 80);
    let t0 = env.network.clock;
    c.send(
        &mut env,
        &get_request("stream.nbcsports.com", "/live", "NBC/7"),
    );
    env.network.run_until_idle();
    let inbox = env.network.take_client_inbox();
    let received: usize = inbox
        .iter()
        .filter_map(|(_, w)| ParsedPacket::parse(w))
        .map(|p| p.payload.len())
        .sum();
    assert!(
        received >= 500_000,
        "proxy must deliver the whole response, got {received}"
    );
    let elapsed = (env.network.clock - t0).as_secs_f64();
    let rate = received as f64 * 8.0 / elapsed;
    assert!(
        rate < 2_500_000.0,
        "video should be throttled to ~1.5 Mbps, measured {rate}"
    );
    assert_eq!(env.proxy_mut().unwrap().classified_flows, 1);
    // The server never saw the client's raw packets: the proxy
    // re-originated everything (check its own SYN arrived instead).
    assert!(env
        .network
        .capture
        .at(TapPoint::ServerIngress)
        .next()
        .is_some());
}
