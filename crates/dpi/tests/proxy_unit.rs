//! Focused tests for the transparent proxy: interception scope, teardown
//! propagation, and stream fidelity under odd client behaviour.

use std::net::Ipv4Addr;
use std::time::Duration;

use liberate_dpi::proxy::{ProxyConfig, TransparentProxy};
use liberate_netsim::element::{Effects, PathElement, Verdict};
use liberate_netsim::network::Network;
use liberate_netsim::os::OsProfile;
use liberate_netsim::server::{EchoApp, ServerHost};
use liberate_netsim::time::SimTime;
use liberate_packet::flow::Direction;
use liberate_packet::packet::{Packet, ParsedPacket};
use liberate_packet::tcp::TcpFlags;

const C: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 2);
const S: Ipv4Addr = Ipv4Addr::new(203, 0, 113, 10);

fn proxied_net() -> Network {
    let server = ServerHost::new(S, OsProfile::linux(), Box::<EchoApp>::default());
    Network::new(
        C,
        vec![Box::new(TransparentProxy::new(ProxyConfig::stream_saver()))],
        server,
    )
}

fn handshake(net: &mut Network, port: u16) -> (u32, u32) {
    let syn = Packet::tcp(C, S, 40_000, port, 777, 0, vec![]).with_flags(TcpFlags::SYN);
    net.send_from_client(Duration::ZERO, syn.serialize());
    net.run_until_idle();
    let inbox = net.take_client_inbox();
    let t = inbox
        .iter()
        .find_map(|(_, w)| {
            let p = ParsedPacket::parse(w)?;
            let t = p.tcp()?;
            (t.flags.syn && t.flags.ack).then_some(t.seq)
        })
        .expect("SYN-ACK");
    (778, t.wrapping_add(1))
}

#[test]
fn non_intercepted_ports_pass_untouched() {
    let mut net = proxied_net();
    let (cseq, _) = handshake(&mut net, 8080);
    let data = Packet::tcp(C, S, 40_000, 8080, cseq, 1, &b"direct"[..]);
    net.send_from_client(Duration::ZERO, data.serialize());
    net.run_until_idle();
    // The SERVER's own ISN space answers (not the proxy's 0x6xxx_xxxx
    // range), and the echo comes back.
    let inbox = net.take_client_inbox();
    assert!(inbox
        .iter()
        .any(|(_, w)| ParsedPacket::parse(w).unwrap().payload == b"direct"));
    // Server ingress saw the client's own sequence numbers.
    use liberate_netsim::capture::TapPoint;
    let saw_raw_seq = net.capture.at(TapPoint::ServerIngress).any(|r| {
        ParsedPacket::parse(&r.wire)
            .and_then(|p| p.tcp().map(|t| t.seq == cseq))
            .unwrap_or(false)
    });
    assert!(saw_raw_seq, "port 8080 must bypass the proxy");
}

#[test]
fn intercepted_port_reoriginates_sequence_space() {
    let mut net = proxied_net();
    let (cseq, _) = handshake(&mut net, 80);
    let payload = b"GET / HTTP/1.1\r\nHost: h\r\n\r\n";
    let data = Packet::tcp(C, S, 40_000, 80, cseq, 1, payload.to_vec());
    net.send_from_client(Duration::ZERO, data.serialize());
    net.run_until_idle();
    // The server never sees the client's sequence numbers on port 80.
    use liberate_netsim::capture::TapPoint;
    let saw_raw_seq = net.capture.at(TapPoint::ServerIngress).any(|r| {
        ParsedPacket::parse(&r.wire)
            .and_then(|p| p.tcp().map(|t| t.seq == cseq))
            .unwrap_or(false)
    });
    assert!(!saw_raw_seq, "the proxy re-originates with its own ISNs");
    // Yet the payload arrives intact and the echo returns.
    let inbox = net.take_client_inbox();
    assert!(inbox
        .iter()
        .any(|(_, w)| ParsedPacket::parse(w).unwrap().payload == payload));
}

#[test]
fn client_rst_tears_down_both_sides() {
    let mut proxy = TransparentProxy::new(ProxyConfig::stream_saver());
    let mut fx = Effects::default();
    let syn = Packet::tcp(C, S, 40_000, 80, 100, 0, vec![]).with_flags(TcpFlags::SYN);
    let v = proxy.process(
        SimTime::ZERO,
        Direction::ClientToServer,
        syn.serialize().into(),
        &mut fx,
    );
    assert_eq!(v, Verdict::Drop, "the proxy absorbs the SYN");
    // It dialed the server and answered the client.
    assert_eq!(fx.toward_server.len(), 1);
    assert_eq!(fx.toward_client.len(), 1);

    let mut fx = Effects::default();
    let rst = Packet::tcp(C, S, 40_000, 80, 101, 1, vec![]).with_flags(TcpFlags::RST);
    let v = proxy.process(
        SimTime::ZERO,
        Direction::ClientToServer,
        rst.serialize().into(),
        &mut fx,
    );
    assert_eq!(v, Verdict::Drop);
    // The teardown propagates as the proxy's own RST toward the server.
    assert_eq!(fx.toward_server.len(), 1);
    let out = ParsedPacket::parse(&fx.toward_server[0].wire).unwrap();
    assert!(out.tcp().unwrap().flags.rst);

    // The flow is gone: further data is swallowed without effects.
    let mut fx = Effects::default();
    let data = Packet::tcp(C, S, 40_000, 80, 101, 1, &b"late"[..]);
    let v = proxy.process(
        SimTime::ZERO,
        Direction::ClientToServer,
        data.serialize().into(),
        &mut fx,
    );
    assert_eq!(v, Verdict::Drop);
    assert!(fx.is_empty());
}

#[test]
fn out_of_order_client_segments_are_reassembled_by_the_proxy() {
    let mut net = proxied_net();
    let (cseq, _) = handshake(&mut net, 80);
    let payload = b"GET /abcdef HTTP/1.1\r\n\r\n";
    let cut = 10;
    // Tail first, then head.
    let tail = Packet::tcp(
        C,
        S,
        40_000,
        80,
        cseq + cut,
        1,
        payload[cut as usize..].to_vec(),
    );
    net.send_from_client(Duration::ZERO, tail.serialize());
    net.run_until_idle();
    let head = Packet::tcp(C, S, 40_000, 80, cseq, 1, payload[..cut as usize].to_vec());
    net.send_from_client(Duration::ZERO, head.serialize());
    net.run_until_idle();
    let inbox = net.take_client_inbox();
    let echoed: Vec<u8> = inbox
        .iter()
        .flat_map(|(_, w)| ParsedPacket::parse(w).unwrap().payload.copy_to_vec())
        .collect();
    assert!(
        echoed
            .windows(payload.len())
            .any(|w| w == payload.as_slice()),
        "the proxy delivers the in-order stream regardless of arrival order"
    );
}

#[test]
fn malformed_packets_die_at_the_proxy() {
    let mut proxy = TransparentProxy::new(ProxyConfig::stream_saver());
    let mut fx = Effects::default();
    let mut bad = Packet::tcp(C, S, 40_000, 80, 100, 0, &b"x"[..]);
    bad.tcp_mut().checksum = liberate_packet::checksum::ChecksumSpec::Fixed(1);
    let v = proxy.process(
        SimTime::ZERO,
        Direction::ClientToServer,
        bad.serialize().into(),
        &mut fx,
    );
    assert_eq!(v, Verdict::Drop);
    assert!(fx.is_empty(), "no proxy reaction to garbage");
}
