//! Property tests for the DPI engine: matcher correctness, assembler
//! order-independence, flow table invariants.

use proptest::prelude::*;
use std::net::Ipv4Addr;
use std::time::Duration;

use liberate_dpi::flowtable::{FlowTable, StreamAssembler};
use liberate_dpi::inspect::{FlowConfig, RstEffect};
use liberate_dpi::matcher::{contains, find};
use liberate_dpi::rules::{MatchRule, RuleSet};
use liberate_netsim::time::SimTime;
use liberate_packet::flow::{Direction, FlowKey};

proptest! {
    /// The matcher agrees with a naive scan for arbitrary inputs.
    #[test]
    fn matcher_agrees_with_naive(
        haystack in proptest::collection::vec(any::<u8>(), 0..512),
        needle in proptest::collection::vec(any::<u8>(), 0..8),
    ) {
        let naive = if needle.is_empty() || haystack.len() < needle.len() {
            None
        } else {
            (0..=haystack.len() - needle.len())
                .find(|&i| &haystack[i..i + needle.len()] == needle.as_slice())
        };
        prop_assert_eq!(find(&haystack, &needle), naive);
        prop_assert_eq!(contains(&haystack, &needle), naive.is_some());
    }

    /// A keyword rule fires iff the keyword is present (subject to its
    /// port and direction constraints) — never otherwise.
    #[test]
    fn rules_fire_exactly_on_keyword(
        payload in proptest::collection::vec(any::<u8>(), 0..256),
        insert_at in any::<prop::sample::Index>(),
        inject in any::<bool>(),
        port in 1u16..65535,
    ) {
        let keyword = b"sentinel-kw";
        let mut data = payload.clone();
        // Ensure the keyword is absent unless we inject it.
        while let Some(i) = find(&data, keyword) {
            data[i] ^= 0xff;
        }
        if inject {
            let at = insert_at.index(data.len() + 1);
            data.splice(at..at, keyword.iter().copied());
        }
        let rule = MatchRule::keyword("k", "class", &keyword[..]).on_ports([80]);
        let fires = rule.matches(&data, Direction::ClientToServer, port, Some(0));
        prop_assert_eq!(fires, inject && port == 80);
    }

    /// First-match-wins is order-stable: permuting payload content never
    /// makes a later rule shadow an earlier one.
    #[test]
    fn first_match_priority(
        payload in proptest::collection::vec(any::<u8>(), 0..128),
    ) {
        let rules = RuleSet::new(vec![
            MatchRule::keyword("a", "A", &b"\x01\x02"[..]),
            MatchRule::keyword("b", "B", &b"\x01\x02"[..]),
        ]);
        if let Some(m) = rules.first_match(&payload, Direction::ClientToServer, 80, Some(0)) {
            prop_assert_eq!(m.class.as_str(), "A");
        }
    }

    /// The stream assembler's output is independent of segment arrival
    /// order (for non-overlapping segments).
    #[test]
    fn assembler_order_independent(
        chunks in proptest::collection::vec(
            proptest::collection::vec(any::<u8>(), 1..64), 1..10),
        seed in any::<u64>(),
    ) {
        let base = 10_000u32;
        // Contiguous segments at sequential offsets.
        let mut segments = Vec::new();
        let mut off = 0u32;
        for c in &chunks {
            segments.push((base.wrapping_add(off), c.clone()));
            off += c.len() as u32;
        }
        let expected: Vec<u8> = chunks.concat();

        // In-order insert.
        let mut a1 = StreamAssembler::new(64 * 1024);
        a1.base_seq = Some(base);
        for (s, d) in &segments {
            a1.insert(*s, d);
        }
        prop_assert_eq!(a1.assembled_prefix(), expected.clone());

        // Shuffled insert (deterministic shuffle from the seed).
        let mut shuffled = segments.clone();
        let mut state = seed | 1;
        for i in (1..shuffled.len()).rev() {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            shuffled.swap(i, (state as usize) % (i + 1));
        }
        let mut a2 = StreamAssembler::new(64 * 1024);
        a2.base_seq = Some(base);
        for (s, d) in &shuffled {
            a2.insert(*s, d);
        }
        prop_assert_eq!(a2.assembled_prefix(), expected);
    }

    /// Flow-table expiry is monotone: if an entry survives `t`, it
    /// survives any earlier lookup too; once expired it stays gone.
    #[test]
    fn flowtable_expiry_monotone(
        timeout_s in 1u64..300,
        probe1 in 0u64..600,
        probe2 in 0u64..600,
    ) {
        let (lo, hi) = if probe1 <= probe2 { (probe1, probe2) } else { (probe2, probe1) };
        let config = FlowConfig {
            result_timeout: None,
            tracking_timeout: Some(Duration::from_secs(timeout_s)),
            rst_after_match: RstEffect::Ignored,
            rst_before_match: RstEffect::Ignored,
        };
        let key = FlowKey::new(
            Ipv4Addr::new(1, 1, 1, 1),
            Ipv4Addr::new(2, 2, 2, 2),
            10, 80, 6,
        );
        let mut table = FlowTable::default();
        table.create(key, SimTime::ZERO, 4096);
        // Lookups at lo then hi WITHOUT refreshing activity.
        let alive_lo = table.lookup(key, SimTime::from_secs(lo), &config, None).is_some();
        let alive_hi = table.lookup(key, SimTime::from_secs(hi), &config, None).is_some();
        prop_assert_eq!(alive_lo, lo <= timeout_s);
        // hi sees the entry only if it had not expired by hi.
        prop_assert_eq!(alive_hi, alive_lo && hi <= timeout_s);
    }
}
