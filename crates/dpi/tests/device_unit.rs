//! Device-local tests for the DPI engine, exercising it as a bare path
//! element (no network around it): accounting, events, validation,
//! loose transport parsing, and resource-model eviction.

use std::net::Ipv4Addr;
use std::time::Duration;

use liberate_dpi::device::DpiDevice;
use liberate_dpi::profiles::{gfc_device, testbed_device, tmus_device};
use liberate_netsim::element::{Effects, PathElement, Verdict};
use liberate_netsim::time::SimTime;
use liberate_packet::flow::{Direction, FlowKey};
use liberate_packet::packet::Packet;
use liberate_packet::tcp::TcpFlags;
use liberate_traces::http::get_request;

const C: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 2);
const S: Ipv4Addr = Ipv4Addr::new(203, 0, 113, 10);

fn feed(dev: &mut DpiDevice, at: SimTime, wire: Vec<u8>) -> Verdict {
    let mut fx = Effects::default();
    dev.process(at, Direction::ClientToServer, wire.into(), &mut fx)
}

fn syn(port: u16, seq: u32) -> Vec<u8> {
    Packet::tcp(C, S, port, 80, seq, 0, vec![])
        .with_flags(TcpFlags::SYN)
        .serialize()
}

fn data(port: u16, seq: u32, payload: &[u8]) -> Vec<u8> {
    Packet::tcp(C, S, port, 80, seq, 1, payload.to_vec()).serialize()
}

#[test]
fn classification_event_records_rule_and_flow() {
    let mut dev = DpiDevice::new(testbed_device());
    feed(&mut dev, SimTime::ZERO, syn(40_000, 100));
    feed(
        &mut dev,
        SimTime::from_secs(1),
        data(40_000, 101, &get_request("x.cloudfront.net", "/v", "p")),
    );
    let ev = dev.last_event().expect("classified");
    assert_eq!(ev.class, "video");
    assert_eq!(ev.rule_id, "cf-host");
    assert_eq!(ev.flow.src_port, 40_000);
    assert_eq!(ev.at, SimTime::from_secs(1));
    assert_eq!(dev.events.len(), 1);
}

#[test]
fn zero_rating_accounting_splits_by_classification() {
    let mut dev = DpiDevice::new(tmus_device());
    // An unclassified flow bills.
    feed(&mut dev, SimTime::ZERO, syn(40_000, 100));
    feed(
        &mut dev,
        SimTime::ZERO,
        data(40_000, 101, &get_request("benign.example.net", "/", "p")),
    );
    let billed_before = dev.billed_bytes;
    assert!(billed_before > 0);
    assert_eq!(dev.zero_rated_bytes, 0);

    // A video flow zero-rates its post-classification bytes.
    feed(&mut dev, SimTime::ZERO, syn(40_001, 200));
    feed(
        &mut dev,
        SimTime::ZERO,
        data(40_001, 201, &get_request("x.cloudfront.net", "/v", "p")),
    );
    feed(&mut dev, SimTime::ZERO, {
        let seq = 201 + get_request("x.cloudfront.net", "/v", "p").len() as u32;
        Packet::tcp(C, S, 40_001, 80, seq, 1, vec![0u8; 1000]).serialize()
    });
    assert!(dev.zero_rated_bytes >= 1000);
}

#[test]
fn reset_clears_everything() {
    let mut dev = DpiDevice::new(testbed_device());
    feed(&mut dev, SimTime::ZERO, syn(40_000, 100));
    feed(
        &mut dev,
        SimTime::ZERO,
        data(40_000, 101, &get_request("x.cloudfront.net", "/v", "p")),
    );
    assert!(!dev.events.is_empty());
    dev.reset();
    assert!(dev.events.is_empty());
    assert_eq!(dev.billed_bytes, 0);
    assert_eq!(dev.zero_rated_bytes, 0);
    let key = FlowKey::new(C, S, 40_000, 80, 6);
    assert_eq!(dev.classification_of(key), None);
}

#[test]
fn loose_transport_parsing_is_testbed_only() {
    // A wrong-protocol packet carrying a matching TCP segment.
    let mk = |port: u16| {
        let mut p = Packet::tcp(
            C,
            S,
            port,
            80,
            101,
            1,
            get_request("x.cloudfront.net", "/v", "p"),
        );
        p.ip.protocol = Some(253);
        p.serialize()
    };

    let mut testbed = DpiDevice::new(testbed_device());
    feed(&mut testbed, SimTime::ZERO, syn(40_000, 100));
    feed(&mut testbed, SimTime::ZERO, mk(40_000));
    assert!(
        testbed.last_event().is_some(),
        "the lax testbed parses TCP despite the bogus protocol number"
    );

    let mut tmus = DpiDevice::new(tmus_device());
    feed(&mut tmus, SimTime::ZERO, syn(40_000, 100));
    feed(&mut tmus, SimTime::ZERO, mk(40_000));
    assert!(
        tmus.last_event().is_none(),
        "stricter devices cannot attribute the packet to a flow"
    );
}

#[test]
fn gfc_resource_model_evicts_by_time_of_day() {
    // Simulation starting at noon (busy: 40 s eviction).
    let mut dev = DpiDevice::new(gfc_device(12 * 3600));
    let req = get_request("www.economist.com", "/", "p");

    // Handshake, then a pause longer than the busy-hour eviction, then
    // the matching request: tracking evicted, flow uninspected.
    feed(&mut dev, SimTime::ZERO, syn(40_000, 100));
    let later = SimTime::from_secs(50);
    feed(&mut dev, later, data(40_000, 101, &req));
    assert!(
        dev.last_event().is_none(),
        "busy-hour state evicted at 40 s"
    );

    // Same play at 3 AM (quiet: no eviction): classified.
    let mut dev = DpiDevice::new(gfc_device(3 * 3600));
    feed(&mut dev, SimTime::ZERO, syn(40_001, 100));
    feed(&mut dev, SimTime::from_secs(230), data(40_001, 101, &req));
    assert!(
        dev.last_event().is_some(),
        "quiet-hour state survives even 230 s"
    );
}

#[test]
fn match_and_forget_stops_inspection() {
    let mut dev = DpiDevice::new(testbed_device());
    feed(&mut dev, SimTime::ZERO, syn(40_000, 100));
    // Classify as the no-op web class first.
    let decoy = get_request("www.example.org", "/", "p");
    feed(&mut dev, SimTime::ZERO, data(40_000, 101, &decoy));
    assert_eq!(dev.last_event().unwrap().class, "web");
    // Matching video content afterwards is never inspected.
    feed(
        &mut dev,
        SimTime::ZERO,
        data(
            40_000,
            101 + decoy.len() as u32,
            &get_request("x.cloudfront.net", "/v", "p"),
        ),
    );
    assert_eq!(dev.events.len(), 1, "no second classification");
    let key = FlowKey::new(C, S, 40_000, 80, 6);
    assert_eq!(dev.classification_of(key).as_deref(), Some("web"));
}

#[test]
fn throttle_delays_server_direction_only() {
    let mut dev = DpiDevice::new(testbed_device());
    feed(&mut dev, SimTime::ZERO, syn(40_000, 100));
    feed(
        &mut dev,
        SimTime::ZERO,
        data(40_000, 101, &get_request("x.cloudfront.net", "/v", "p")),
    );
    // Client-direction packets of a throttled flow pass immediately.
    let v = feed(
        &mut dev,
        SimTime::from_secs(1),
        data(40_000, 50_000, &[1u8; 100]),
    );
    match v {
        Verdict::Forward(out) => assert_eq!(out[0].at, SimTime::from_secs(1)),
        Verdict::Drop => panic!("forwarded"),
    }
    // Server-direction bulk data gets shaped: a large burst departs later
    // than it arrived.
    let mut fx = Effects::default();
    let mut last = SimTime::from_secs(1);
    for i in 0..800u32 {
        let seg = Packet::tcp(S, C, 80, 40_000, 1 + i * 1400, 0, vec![7u8; 1400]).serialize();
        if let Verdict::Forward(out) = dev.process(
            SimTime::from_secs(1),
            Direction::ServerToClient,
            seg.into(),
            &mut fx,
        ) {
            last = out[0].at;
        }
    }
    assert!(
        last > SimTime::from_secs(1) + Duration::from_secs(2),
        "1.1 MB at 1.5 Mbps must take seconds, departed {last}"
    );
}
