//! Zero-copy wire buffers: the hot-path currency of the whole stack.
//!
//! Every layer used to hand packets around as `Vec<u8>`, so forwarding a
//! packet through N path elements, recording it at a capture tap, and
//! feeding its payload into stream reassembly each deep-copied the bytes.
//! [`PacketBuf`] replaces that with a ref-counted shared buffer plus a
//! cheap `(start, end)` range view: cloning or slicing is a refcount
//! bump, and equality/hashing/deref all act on the viewed bytes, so the
//! rest of the code reads exactly as it did over `Vec<u8>`.
//!
//! Mutation goes through one explicit copy-on-write escape hatch,
//! [`PacketBuf::make_mut`]: unique full-range buffers are patched in
//! place (free); shared or sliced ones are first materialized into a
//! fresh buffer, and that copy is tallied — into the caller's
//! [`CopyTally`] (routed to the `payload-copies` / `payload-bytes-copied`
//! journal counters by journal-holding callers) and into a process-wide
//! census the `exp-hotpath` bench reads.
//!
//! For before/after measurement, [`set_eager_copy_mode`] restores the
//! pre-overhaul behavior: every clone and slice deep-copies (and is
//! counted), while observable semantics stay byte-identical — the bench
//! flips it on to reproduce the old world's copy volume on today's code.
//!
//! The type lives here at the bottom of the stack so the tolerant parsers
//! can hand out payload *views* of the wire buffer instead of copies (see
//! [`WireBytes`]); `liberate_substrate::buf` re-exports everything for
//! the layers above.

use std::fmt;
use std::ops::{Bound, Deref, RangeBounds};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

/// Sentinel for "view tracks the end of the backing buffer", so a
/// full-range view stays full-range even if `make_mut` callers grow or
/// shrink the underlying `Vec`.
const TO_END: usize = usize::MAX;

/// Process-wide deep-copy census (copies, bytes). Fed by every
/// materializing operation — CoW faults, eager-mode clones/slices — and
/// read by `exp-hotpath` to report copies-per-replay. Monotonic relaxed
/// counters; never consulted by simulation logic, so determinism holds.
static COPIES: AtomicU64 = AtomicU64::new(0);
static BYTES_COPIED: AtomicU64 = AtomicU64::new(0);

/// When set, `clone()` and `slice()` materialize fresh buffers instead
/// of sharing — the pre-overhaul copy discipline, kept for A/B copy
/// accounting in benches. Off in all normal operation.
static EAGER: AtomicBool = AtomicBool::new(false);

fn census(bytes: usize) {
    COPIES.fetch_add(1, Ordering::Relaxed);
    BYTES_COPIED.fetch_add(bytes as u64, Ordering::Relaxed);
}

/// Enable/disable eager-copy (pre-overhaul) mode. Bench-only.
pub fn set_eager_copy_mode(on: bool) {
    EAGER.store(on, Ordering::Relaxed);
}

/// Snapshot of the process-wide deep-copy census: `(copies, bytes)`.
pub fn copy_census() -> (u64, u64) {
    (
        COPIES.load(Ordering::Relaxed),
        BYTES_COPIED.load(Ordering::Relaxed),
    )
}

/// Per-call-site copy tally, flushed into journal counters by callers
/// that hold one (the DPI device, router hops). Separate from the global
/// census so copies land in the right session's journal.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct CopyTally {
    pub copies: u64,
    pub bytes: u64,
}

impl CopyTally {
    pub fn is_empty(&self) -> bool {
        self.copies == 0
    }
}

/// A ref-counted, immutable-by-default wire buffer with cheap range
/// views. See the module docs for the ownership rules.
pub struct PacketBuf {
    data: Arc<Vec<u8>>,
    start: usize,
    /// Exclusive end, or [`TO_END`] for "to the end of the buffer".
    end: usize,
}

impl PacketBuf {
    /// The empty buffer.
    pub fn empty() -> PacketBuf {
        PacketBuf::from(Vec::new())
    }

    fn upper(&self) -> usize {
        if self.end == TO_END {
            self.data.len()
        } else {
            self.end.min(self.data.len())
        }
    }

    pub fn len(&self) -> usize {
        self.upper().saturating_sub(self.start)
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    pub fn as_slice(&self) -> &[u8] {
        &self.data[self.start.min(self.data.len())..self.upper()]
    }

    /// A cheap sub-view of this buffer (shares the backing allocation).
    /// Out-of-range bounds are clamped to the view.
    pub fn slice(&self, range: impl RangeBounds<usize>) -> PacketBuf {
        let len = self.len();
        let lo = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        }
        .min(len);
        let hi = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => len,
        }
        .clamp(lo, len);
        if EAGER.load(Ordering::Relaxed) {
            let copied = self.as_slice()[lo..hi].to_vec();
            census(copied.len());
            return PacketBuf::from(copied);
        }
        PacketBuf {
            data: Arc::clone(&self.data),
            start: self.start + lo,
            end: self.start + hi,
        }
    }

    /// The copy-on-write escape hatch: a mutable view of the underlying
    /// bytes. A uniquely-owned full-range buffer mutates in place; a
    /// shared or sliced one is first copied into a fresh buffer, and the
    /// copy is tallied (caller tally + global census). After the call
    /// this view tracks the whole backing buffer, so length-changing
    /// edits stay coherent.
    pub fn make_mut(&mut self, tally: &mut CopyTally) -> &mut Vec<u8> {
        let full = self.start == 0 && self.end == TO_END;
        if !full || Arc::get_mut(&mut self.data).is_none() {
            let copied = self.as_slice().to_vec();
            tally.copies += 1;
            tally.bytes += copied.len() as u64;
            census(copied.len());
            self.data = Arc::new(copied);
            self.start = 0;
            self.end = TO_END;
        }
        match Arc::get_mut(&mut self.data) {
            Some(v) => v,
            // Unreachable: the branch above guaranteed unique ownership,
            // and &mut self pins the refcount meanwhile.
            // lint: allow(no-panic) documented invariant, not a runtime condition
            None => unreachable!("PacketBuf::make_mut: buffer not unique after CoW"),
        }
    }

    /// Sanctioned explicit deep copy (pcap export, golden captures).
    /// Counted in the global census but not in any journal tally — it is
    /// an intentional egress copy, not hot-path traffic.
    pub fn copy_to_vec(&self) -> Vec<u8> {
        let v = self.as_slice().to_vec();
        census(v.len());
        v
    }
}

/// Wire-byte input to the tolerant parsers: anything that exposes the
/// raw bytes and can mint a tail view for the payload. [`PacketBuf`]
/// inputs produce shared (zero-copy) payload views; raw slices and
/// `Vec<u8>` inputs materialize a fresh buffer, so test code and legacy
/// callers keep working unchanged.
pub trait WireBytes {
    /// The full wire bytes.
    fn wire(&self) -> &[u8];

    /// A view of the bytes from `start` (clamped) to the end.
    fn tail_view(&self, start: usize) -> PacketBuf;
}

impl WireBytes for PacketBuf {
    fn wire(&self) -> &[u8] {
        self.as_slice()
    }

    fn tail_view(&self, start: usize) -> PacketBuf {
        self.slice(start..)
    }
}

impl WireBytes for [u8] {
    fn wire(&self) -> &[u8] {
        self
    }

    fn tail_view(&self, start: usize) -> PacketBuf {
        PacketBuf::from(&self[start.min(self.len())..])
    }
}

impl WireBytes for Vec<u8> {
    fn wire(&self) -> &[u8] {
        self.as_slice()
    }

    fn tail_view(&self, start: usize) -> PacketBuf {
        self.as_slice().tail_view(start)
    }
}

impl<const N: usize> WireBytes for [u8; N] {
    fn wire(&self) -> &[u8] {
        self.as_slice()
    }

    fn tail_view(&self, start: usize) -> PacketBuf {
        self.as_slice().tail_view(start)
    }
}

impl<W: WireBytes + ?Sized> WireBytes for &W {
    fn wire(&self) -> &[u8] {
        (**self).wire()
    }

    fn tail_view(&self, start: usize) -> PacketBuf {
        (**self).tail_view(start)
    }
}

impl Clone for PacketBuf {
    fn clone(&self) -> PacketBuf {
        if EAGER.load(Ordering::Relaxed) {
            let copied = self.as_slice().to_vec();
            census(copied.len());
            return PacketBuf::from(copied);
        }
        PacketBuf {
            data: Arc::clone(&self.data),
            start: self.start,
            end: self.end,
        }
    }
}

impl Deref for PacketBuf {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for PacketBuf {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl fmt::Debug for PacketBuf {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "PacketBuf({} bytes)", self.len())
    }
}

impl From<Vec<u8>> for PacketBuf {
    fn from(v: Vec<u8>) -> PacketBuf {
        PacketBuf {
            data: Arc::new(v),
            start: 0,
            end: TO_END,
        }
    }
}

impl From<&[u8]> for PacketBuf {
    fn from(v: &[u8]) -> PacketBuf {
        PacketBuf::from(v.to_vec())
    }
}

impl From<&Vec<u8>> for PacketBuf {
    fn from(v: &Vec<u8>) -> PacketBuf {
        PacketBuf::from(v.clone())
    }
}

impl<const N: usize> From<&[u8; N]> for PacketBuf {
    fn from(v: &[u8; N]) -> PacketBuf {
        PacketBuf::from(v.to_vec())
    }
}

impl From<&PacketBuf> for PacketBuf {
    fn from(v: &PacketBuf) -> PacketBuf {
        if EAGER.load(Ordering::Relaxed) {
            let copied = v.as_slice().to_vec();
            census(copied.len());
            return PacketBuf::from(copied);
        }
        v.clone()
    }
}

impl PartialEq for PacketBuf {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for PacketBuf {}

impl PartialEq<[u8]> for PacketBuf {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_slice() == other
    }
}

impl PartialEq<&[u8]> for PacketBuf {
    fn eq(&self, other: &&[u8]) -> bool {
        self.as_slice() == *other
    }
}

impl<const N: usize> PartialEq<[u8; N]> for PacketBuf {
    fn eq(&self, other: &[u8; N]) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl<const N: usize> PartialEq<&[u8; N]> for PacketBuf {
    fn eq(&self, other: &&[u8; N]) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl PartialEq<PacketBuf> for [u8] {
    fn eq(&self, other: &PacketBuf) -> bool {
        self == other.as_slice()
    }
}

impl PartialEq<Vec<u8>> for PacketBuf {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl PartialEq<PacketBuf> for Vec<u8> {
    fn eq(&self, other: &PacketBuf) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl std::hash::Hash for PacketBuf {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.as_slice().hash(state);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn views_share_the_backing_buffer() {
        let buf = PacketBuf::from(vec![1u8, 2, 3, 4, 5]);
        let view = buf.slice(1..4);
        assert_eq!(&*view, &[2, 3, 4]);
        assert_eq!(view.len(), 3);
        assert!(Arc::ptr_eq(&buf.data, &view.data));
        let sub = view.slice(1..);
        assert_eq!(&*sub, &[3, 4]);
        assert!(Arc::ptr_eq(&buf.data, &sub.data));
    }

    #[test]
    fn clone_is_a_refcount_bump() {
        let buf = PacketBuf::from(vec![9u8; 64]);
        let twin = buf.clone();
        assert!(Arc::ptr_eq(&buf.data, &twin.data));
        assert_eq!(buf, twin);
    }

    #[test]
    fn make_mut_in_place_when_unique() {
        let mut buf = PacketBuf::from(vec![0u8; 8]);
        let mut tally = CopyTally::default();
        buf.make_mut(&mut tally)[0] = 7;
        assert!(tally.is_empty(), "unique full-range buffers mutate free");
        assert_eq!(buf[0], 7);
    }

    #[test]
    fn make_mut_copies_when_shared_and_siblings_are_untouched() {
        let mut a = PacketBuf::from(vec![1u8, 2, 3]);
        let b = a.clone();
        let mut tally = CopyTally::default();
        a.make_mut(&mut tally)[1] = 99;
        assert_eq!(tally.copies, 1);
        assert_eq!(tally.bytes, 3);
        assert_eq!(&*a, &[1, 99, 3], "the writer sees its mutation");
        assert_eq!(&*b, &[1, 2, 3], "the sibling is untouched");
    }

    #[test]
    fn make_mut_materializes_slices() {
        let base = PacketBuf::from(vec![1u8, 2, 3, 4]);
        let mut view = base.slice(1..3);
        let mut tally = CopyTally::default();
        view.make_mut(&mut tally)[0] = 42;
        assert_eq!(tally.copies, 1);
        assert_eq!(&*view, &[42, 3]);
        assert_eq!(&*base, &[1, 2, 3, 4], "the source survives view mutation");
    }

    #[test]
    fn views_survive_source_mutation() {
        let mut src = PacketBuf::from(vec![5u8, 6, 7, 8]);
        let view = src.slice(2..);
        let mut tally = CopyTally::default();
        src.make_mut(&mut tally).fill(0);
        assert_eq!(&*view, &[7, 8], "views keep the pre-mutation bytes");
    }

    #[test]
    fn make_mut_tracks_length_changes() {
        let mut buf = PacketBuf::from(vec![1u8, 2]);
        let mut tally = CopyTally::default();
        buf.make_mut(&mut tally).extend_from_slice(&[3, 4]);
        assert_eq!(&*buf, &[1, 2, 3, 4]);
        buf.make_mut(&mut tally).truncate(1);
        assert_eq!(&*buf, &[1]);
    }

    #[test]
    fn equality_is_by_bytes_not_identity() {
        let a = PacketBuf::from(vec![1u8, 2, 3]);
        let b = PacketBuf::from(vec![0u8, 1, 2, 3]).slice(1..);
        assert_eq!(a, b);
        assert_eq!(a, vec![1u8, 2, 3]);
        assert_eq!(vec![1u8, 2, 3], a);
    }

    #[test]
    fn slice_bounds_are_clamped() {
        let buf = PacketBuf::from(vec![1u8, 2]);
        assert_eq!(buf.slice(5..).len(), 0);
        assert_eq!(buf.slice(..10).len(), 2);
        assert_eq!(buf.slice(1..100), vec![2u8]);
    }

    #[test]
    fn copy_census_counts_cow_faults() {
        let (c0, b0) = copy_census();
        let mut a = PacketBuf::from(vec![1u8; 10]);
        let _b = a.clone();
        let mut tally = CopyTally::default();
        a.make_mut(&mut tally)[0] = 2;
        let (c1, b1) = copy_census();
        assert!(c1 >= c0 + 1);
        assert!(b1 >= b0 + 10);
    }
}
