//! Flow identification: five-tuples and direction handling.

use std::fmt;
use std::net::Ipv4Addr;

use serde::{Deserialize, Serialize};

use crate::packet::ParsedPacket;

/// Direction of a packet relative to the flow initiator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Direction {
    /// From the flow initiator (client) toward the responder (server).
    ClientToServer,
    /// From the responder back to the initiator.
    ServerToClient,
}

impl Direction {
    pub fn flip(self) -> Direction {
        match self {
            Direction::ClientToServer => Direction::ServerToClient,
            Direction::ServerToClient => Direction::ClientToServer,
        }
    }
}

/// A transport five-tuple identifying one direction of a flow.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct FlowKey {
    pub src: Ipv4Addr,
    pub dst: Ipv4Addr,
    pub src_port: u16,
    pub dst_port: u16,
    pub protocol: u8,
}

impl FlowKey {
    pub fn new(src: Ipv4Addr, dst: Ipv4Addr, src_port: u16, dst_port: u16, protocol: u8) -> Self {
        FlowKey {
            src,
            dst,
            src_port,
            dst_port,
            protocol,
        }
    }

    /// Extract from a parsed packet; `None` when no transport ports exist
    /// (e.g. non-first fragments or unknown protocols).
    pub fn from_packet(pkt: &ParsedPacket) -> Option<FlowKey> {
        Some(FlowKey {
            src: pkt.ip.src,
            dst: pkt.ip.dst,
            src_port: pkt.src_port()?,
            dst_port: pkt.dst_port()?,
            protocol: pkt.ip.protocol,
        })
    }

    /// The same flow seen from the other direction.
    pub fn reverse(self) -> FlowKey {
        FlowKey {
            src: self.dst,
            dst: self.src,
            src_port: self.dst_port,
            dst_port: self.src_port,
            protocol: self.protocol,
        }
    }

    /// A direction-independent key: both directions of a flow map to the
    /// same canonical value. Used by middlebox flow tables.
    pub fn canonical(self) -> FlowKey {
        let fwd = (self.src, self.src_port);
        let rev = (self.dst, self.dst_port);
        if fwd <= rev {
            self
        } else {
            self.reverse()
        }
    }
}

impl fmt::Display for FlowKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{} -> {}:{} proto {}",
            self.src, self.src_port, self.dst, self.dst_port, self.protocol
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::Packet;

    fn key() -> FlowKey {
        FlowKey::new(
            Ipv4Addr::new(10, 0, 0, 1),
            Ipv4Addr::new(10, 0, 0, 2),
            40000,
            80,
            6,
        )
    }

    #[test]
    fn reverse_is_involution() {
        let k = key();
        assert_eq!(k.reverse().reverse(), k);
        assert_ne!(k.reverse(), k);
    }

    #[test]
    fn canonical_is_direction_independent() {
        let k = key();
        assert_eq!(k.canonical(), k.reverse().canonical());
    }

    #[test]
    fn from_packet_extracts_tuple() {
        let pkt = Packet::tcp(
            Ipv4Addr::new(10, 0, 0, 1),
            Ipv4Addr::new(10, 0, 0, 2),
            40000,
            80,
            0,
            0,
            vec![],
        );
        let parsed = crate::packet::ParsedPacket::parse(&pkt.serialize()).unwrap();
        assert_eq!(FlowKey::from_packet(&parsed), Some(key()));
    }

    #[test]
    fn direction_flip() {
        assert_eq!(Direction::ClientToServer.flip(), Direction::ServerToClient);
        assert_eq!(
            Direction::ServerToClient.flip().flip(),
            Direction::ServerToClient
        );
    }
}
