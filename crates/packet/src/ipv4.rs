//! IPv4 header construction and parsing, including IP options and the
//! ability to emit deliberately malformed headers.
//!
//! lib·erate's inert-packet techniques need headers whose `version`, `ihl`,
//! `total_length`, `protocol`, and `checksum` disagree with the bytes that
//! follow, so every derived field here can be overridden. By default the
//! builder produces a correct header.

use std::net::Ipv4Addr;

use crate::checksum::{internet_checksum, ChecksumSpec};

/// Minimum IPv4 header length in bytes (IHL = 5).
pub const IPV4_MIN_HEADER_LEN: usize = 20;

/// IP protocol numbers used throughout the workspace.
pub mod protocol {
    pub const ICMP: u8 = 1;
    pub const TCP: u8 = 6;
    pub const UDP: u8 = 17;
    /// An unassigned protocol number, used for the "wrong protocol" inert
    /// technique (Fig. 2(b) in the paper).
    pub const UNASSIGNED: u8 = 253;
}

/// IPv4 option kinds relevant to the evasion taxonomy.
///
/// "Invalid options" and "deprecated options" are two distinct rows of
/// Table 3: middleboxes may process packets carrying them while servers
/// (except Windows, for some) drop them.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum IpOption {
    /// End of option list (kind 0).
    EndOfList,
    /// No-operation (kind 1).
    Nop,
    /// Record route (kind 7) with the given pointer and route data.
    RecordRoute { pointer: u8, data: Vec<u8> },
    /// Deprecated Stream Identifier option (kind 136, RFC 791 / deprecated
    /// by RFC 6814).
    StreamId(u16),
    /// Deprecated (historic) Security option (kind 130, RFC 1108).
    Security([u8; 9]),
    /// A structurally invalid option: unknown kind with a length that
    /// overruns the option area.
    InvalidOverrun { kind: u8, claimed_len: u8 },
    /// Raw bytes appended verbatim.
    Raw(Vec<u8>),
}

impl IpOption {
    /// Encode this option, appending to `out`.
    pub fn encode(&self, out: &mut Vec<u8>) {
        match self {
            IpOption::EndOfList => out.push(0),
            IpOption::Nop => out.push(1),
            IpOption::RecordRoute { pointer, data } => {
                out.push(7);
                out.push(3 + data.len() as u8);
                out.push(*pointer);
                out.extend_from_slice(data);
            }
            IpOption::StreamId(id) => {
                out.push(136);
                out.push(4);
                out.extend_from_slice(&id.to_be_bytes());
            }
            IpOption::Security(data) => {
                out.push(130);
                out.push(11);
                out.extend_from_slice(data);
            }
            IpOption::InvalidOverrun { kind, claimed_len } => {
                out.push(*kind);
                out.push(*claimed_len);
            }
            IpOption::Raw(bytes) => out.extend_from_slice(bytes),
        }
    }

    /// Whether this option is deprecated (obsoleted by RFC 6814).
    pub fn is_deprecated(&self) -> bool {
        matches!(self, IpOption::StreamId(_) | IpOption::Security(_))
    }
}

/// Encode a list of options, padding with zeros to a 4-byte boundary.
pub fn encode_options(options: &[IpOption]) -> Vec<u8> {
    let mut out = Vec::new();
    for opt in options {
        opt.encode(&mut out);
    }
    while out.len() % 4 != 0 {
        out.push(0);
    }
    out
}

/// Structural issues found while scanning an encoded option area.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OptionScan {
    /// No options present.
    None,
    /// Only well-formed, currently-valid options.
    Valid,
    /// Contains a deprecated (RFC 6814) option such as Stream ID or
    /// Security.
    Deprecated,
    /// Structurally invalid (zero/overrunning lengths, truncated option).
    Invalid,
}

/// Scan an encoded option area and classify it.
pub fn scan_options(bytes: &[u8]) -> OptionScan {
    if bytes.is_empty() {
        return OptionScan::None;
    }
    let mut saw_deprecated = false;
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            0 => break, // End of list; remainder is padding.
            1 => i += 1,
            kind => {
                if i + 1 >= bytes.len() {
                    return OptionScan::Invalid;
                }
                let len = bytes[i + 1] as usize;
                if len < 2 || i + len > bytes.len() {
                    return OptionScan::Invalid;
                }
                match kind {
                    136 | 130 | 133 | 134 => saw_deprecated = true,
                    7 | 68 | 131 | 137 | 148 => {}
                    _ => return OptionScan::Invalid,
                }
                i += len;
            }
        }
    }
    if saw_deprecated {
        OptionScan::Deprecated
    } else {
        OptionScan::Valid
    }
}

/// An IPv4 header. Fields that are normally derived (`version`, `ihl`,
/// `total_length`, `checksum`, `protocol`) accept overrides so malformed
/// headers can be built; `None`/`Auto` means "derive the correct value".
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Ipv4Header {
    /// IP version; 4 unless crafting an invalid packet.
    pub version: u8,
    /// Header length override in 32-bit words. `None` derives from options.
    pub ihl: Option<u8>,
    /// DSCP/ECN byte.
    pub tos: u8,
    /// Total length override in bytes. `None` derives from the actual size.
    pub total_length: Option<u16>,
    /// Identification field (used to match fragments).
    pub identification: u16,
    /// Don't-fragment flag.
    pub dont_fragment: bool,
    /// More-fragments flag.
    pub more_fragments: bool,
    /// Fragment offset in 8-byte units.
    pub fragment_offset: u16,
    /// Time to live.
    pub ttl: u8,
    /// Protocol override. `None` derives from the transport carried.
    pub protocol: Option<u8>,
    /// Header checksum handling.
    pub checksum: ChecksumSpec,
    /// Source address.
    pub src: Ipv4Addr,
    /// Destination address.
    pub dst: Ipv4Addr,
    /// IP options.
    pub options: Vec<IpOption>,
}

impl Ipv4Header {
    /// A correct header between `src` and `dst` with a default TTL of 64.
    pub fn new(src: Ipv4Addr, dst: Ipv4Addr) -> Self {
        Ipv4Header {
            version: 4,
            ihl: None,
            tos: 0,
            total_length: None,
            identification: 0,
            dont_fragment: false,
            more_fragments: false,
            fragment_offset: 0,
            ttl: 64,
            protocol: None,
            checksum: ChecksumSpec::Auto,
            src,
            dst,
            options: Vec::new(),
        }
    }

    /// Header length in bytes as it will actually be serialized
    /// (independent of any `ihl` override).
    pub fn actual_header_len(&self) -> usize {
        IPV4_MIN_HEADER_LEN + encode_options(&self.options).len()
    }

    /// Serialize, given the transport protocol number to use when no
    /// override is set and the byte length of everything after the header.
    pub fn serialize(&self, derived_protocol: u8, payload_len: usize) -> Vec<u8> {
        let options = encode_options(&self.options);
        let header_len = IPV4_MIN_HEADER_LEN + options.len();
        let ihl = self.ihl.unwrap_or((header_len / 4) as u8) & 0x0f;
        let total_length = self
            .total_length
            .unwrap_or((header_len + payload_len) as u16);
        let protocol = self.protocol.unwrap_or(derived_protocol);

        let mut out = Vec::with_capacity(header_len);
        out.push(((self.version & 0x0f) << 4) | ihl);
        out.push(self.tos);
        out.extend_from_slice(&total_length.to_be_bytes());
        out.extend_from_slice(&self.identification.to_be_bytes());
        let mut flags_frag = self.fragment_offset & 0x1fff;
        if self.dont_fragment {
            flags_frag |= 0x4000;
        }
        if self.more_fragments {
            flags_frag |= 0x2000;
        }
        out.extend_from_slice(&flags_frag.to_be_bytes());
        out.push(self.ttl);
        out.push(protocol);
        out.extend_from_slice(&[0, 0]); // checksum placeholder
        out.extend_from_slice(&self.src.octets());
        out.extend_from_slice(&self.dst.octets());
        out.extend_from_slice(&options);

        let ck = self.checksum.resolve(internet_checksum(&out));
        out[10..12].copy_from_slice(&ck.to_be_bytes());
        out
    }
}

/// A parsed (possibly malformed) IPv4 header view.
///
/// Parsing is deliberately *tolerant*: a middlebox or capture tap must be
/// able to look inside packets an OS would reject, so we extract every field
/// we can and leave judgments about validity to [`crate::validate`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParsedIpv4 {
    pub version: u8,
    pub ihl: u8,
    pub tos: u8,
    pub total_length: u16,
    pub identification: u16,
    pub dont_fragment: bool,
    pub more_fragments: bool,
    pub fragment_offset: u16,
    pub ttl: u8,
    pub protocol: u8,
    pub checksum: u16,
    pub src: Ipv4Addr,
    pub dst: Ipv4Addr,
    /// Raw option bytes (whatever sits between byte 20 and the claimed
    /// header end, clamped to the buffer).
    pub options: Vec<u8>,
    /// Offset where the transport header starts, per the IHL field
    /// (clamped to the buffer length).
    pub payload_offset: usize,
}

impl ParsedIpv4 {
    /// Parse the fixed part of an IPv4 header. Returns `None` only if there
    /// are not even 20 bytes to read.
    pub fn parse(buf: &[u8]) -> Option<ParsedIpv4> {
        if buf.len() < IPV4_MIN_HEADER_LEN {
            return None;
        }
        let version = buf[0] >> 4;
        let ihl = buf[0] & 0x0f;
        let claimed_header_len = (ihl as usize) * 4;
        let header_end = claimed_header_len.max(IPV4_MIN_HEADER_LEN).min(buf.len());
        let flags_frag = u16::from_be_bytes([buf[6], buf[7]]);
        Some(ParsedIpv4 {
            version,
            ihl,
            tos: buf[1],
            total_length: u16::from_be_bytes([buf[2], buf[3]]),
            identification: u16::from_be_bytes([buf[4], buf[5]]),
            dont_fragment: flags_frag & 0x4000 != 0,
            more_fragments: flags_frag & 0x2000 != 0,
            fragment_offset: flags_frag & 0x1fff,
            ttl: buf[8],
            protocol: buf[9],
            checksum: u16::from_be_bytes([buf[10], buf[11]]),
            src: Ipv4Addr::new(buf[12], buf[13], buf[14], buf[15]),
            dst: Ipv4Addr::new(buf[16], buf[17], buf[18], buf[19]),
            options: buf[IPV4_MIN_HEADER_LEN..header_end].to_vec(),
            payload_offset: header_end,
        })
    }

    /// Whether this header describes a fragment (offset > 0 or MF set).
    pub fn is_fragment(&self) -> bool {
        self.fragment_offset > 0 || self.more_fragments
    }

    /// Header length in bytes as claimed by the IHL field.
    pub fn claimed_header_len(&self) -> usize {
        (self.ihl as usize) * 4
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn addr(a: u8) -> Ipv4Addr {
        Ipv4Addr::new(10, 0, 0, a)
    }

    #[test]
    fn serialize_parse_roundtrip() {
        let mut hdr = Ipv4Header::new(addr(1), addr(2));
        hdr.identification = 0xbeef;
        hdr.ttl = 17;
        let bytes = hdr.serialize(protocol::TCP, 100);
        let parsed = ParsedIpv4::parse(&bytes).unwrap();
        assert_eq!(parsed.version, 4);
        assert_eq!(parsed.ihl, 5);
        assert_eq!(parsed.total_length, 120);
        assert_eq!(parsed.identification, 0xbeef);
        assert_eq!(parsed.ttl, 17);
        assert_eq!(parsed.protocol, protocol::TCP);
        assert_eq!(parsed.src, addr(1));
        assert_eq!(parsed.dst, addr(2));
        assert!(crate::checksum::verify_checksum(&bytes));
    }

    #[test]
    fn override_version_and_checksum() {
        let mut hdr = Ipv4Header::new(addr(1), addr(2));
        hdr.version = 6;
        hdr.checksum = ChecksumSpec::Fixed(0xdead);
        let bytes = hdr.serialize(protocol::UDP, 0);
        let parsed = ParsedIpv4::parse(&bytes).unwrap();
        assert_eq!(parsed.version, 6);
        assert_eq!(parsed.checksum, 0xdead);
        assert!(!crate::checksum::verify_checksum(&bytes));
    }

    #[test]
    fn total_length_override_disagrees_with_bytes() {
        let mut hdr = Ipv4Header::new(addr(1), addr(2));
        hdr.total_length = Some(9999);
        let bytes = hdr.serialize(protocol::TCP, 4);
        let parsed = ParsedIpv4::parse(&bytes).unwrap();
        assert_eq!(parsed.total_length, 9999);
        assert_eq!(bytes.len(), 20);
    }

    #[test]
    fn options_are_padded_and_extend_ihl() {
        let mut hdr = Ipv4Header::new(addr(1), addr(2));
        hdr.options = vec![IpOption::StreamId(7)];
        let bytes = hdr.serialize(protocol::TCP, 0);
        assert_eq!(bytes.len(), 24);
        let parsed = ParsedIpv4::parse(&bytes).unwrap();
        assert_eq!(parsed.ihl, 6);
        assert_eq!(parsed.options.len(), 4);
        assert_eq!(scan_options(&parsed.options), OptionScan::Deprecated);
    }

    #[test]
    fn scan_classifies_option_areas() {
        assert_eq!(scan_options(&[]), OptionScan::None);
        assert_eq!(
            scan_options(&encode_options(&[IpOption::Nop])),
            OptionScan::Valid
        );
        assert_eq!(
            scan_options(&encode_options(&[IpOption::RecordRoute {
                pointer: 4,
                data: vec![0; 8]
            }])),
            OptionScan::Valid
        );
        assert_eq!(
            scan_options(&encode_options(&[IpOption::Security([0; 9])])),
            OptionScan::Deprecated
        );
        assert_eq!(
            scan_options(&encode_options(&[IpOption::InvalidOverrun {
                kind: 0x99,
                claimed_len: 40
            }])),
            OptionScan::Invalid
        );
        // Truncated: kind byte with no length byte.
        assert_eq!(scan_options(&[7]), OptionScan::Invalid);
        // Zero length is invalid.
        assert_eq!(scan_options(&[7, 0, 0, 0]), OptionScan::Invalid);
    }

    #[test]
    fn parse_short_buffer_fails() {
        assert!(ParsedIpv4::parse(&[0u8; 19]).is_none());
    }

    #[test]
    fn ihl_claiming_more_than_buffer_is_clamped() {
        let mut hdr = Ipv4Header::new(addr(1), addr(2));
        hdr.ihl = Some(15); // claims a 60-byte header that does not exist
        let bytes = hdr.serialize(protocol::TCP, 0);
        let parsed = ParsedIpv4::parse(&bytes).unwrap();
        assert_eq!(parsed.claimed_header_len(), 60);
        assert_eq!(parsed.payload_offset, bytes.len());
    }

    #[test]
    fn fragment_flags_roundtrip() {
        let mut hdr = Ipv4Header::new(addr(1), addr(2));
        hdr.more_fragments = true;
        hdr.fragment_offset = 185; // 1480 bytes / 8
        let bytes = hdr.serialize(protocol::UDP, 8);
        let parsed = ParsedIpv4::parse(&bytes).unwrap();
        assert!(parsed.more_fragments);
        assert!(!parsed.dont_fragment);
        assert_eq!(parsed.fragment_offset, 185);
        assert!(parsed.is_fragment());
    }
}
