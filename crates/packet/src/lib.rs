//! # liberate-packet
//!
//! Wire formats for the lib·erate reproduction: IPv4, TCP, and UDP headers
//! with full control over every field — including the ability to emit
//! *deliberately malformed* packets, which is the raw material of the
//! paper's inert-packet evasion techniques (Table 3).
//!
//! Design points, following the smoltcp school: simple owned types, no
//! macro tricks, tolerant parsing (extract everything extractable, judge
//! validity separately in [`validate`]), and wire bytes as the canonical
//! exchange format so every component applies its own interpretation.
//!
//! ## Quick example
//!
//! ```
//! use liberate_packet::prelude::*;
//! use std::net::Ipv4Addr;
//!
//! // A correct HTTP request segment...
//! let mut pkt = Packet::tcp(
//!     Ipv4Addr::new(10, 0, 0, 1),
//!     Ipv4Addr::new(93, 184, 216, 34),
//!     40000, 80, 1, 1,
//!     &b"GET / HTTP/1.1\r\nHost: example.com\r\n\r\n"[..],
//! );
//! assert!(is_well_formed(&pkt.serialize()));
//!
//! // ...turned into an inert packet with a wrong TCP checksum.
//! pkt.tcp_mut().checksum = ChecksumSpec::Fixed(0xbeef);
//! let defects = validate_wire(&pkt.serialize());
//! assert!(defects.contains(&Malformation::TcpChecksumWrong));
//! ```

pub mod buf;
pub mod checksum;
pub mod flow;
pub mod fragment;
pub mod ipv4;
pub mod mutate;
pub mod packet;
pub mod pcap;
pub mod tcp;
pub mod udp;
pub mod validate;

/// Convenient glob import of the types used everywhere.
pub mod prelude {
    pub use crate::buf::{CopyTally, PacketBuf, WireBytes};
    pub use crate::checksum::ChecksumSpec;
    pub use crate::flow::{Direction, FlowKey};
    pub use crate::fragment::{fragment_packet, OverlapPolicy, Reassembler};
    pub use crate::ipv4::{protocol, IpOption, Ipv4Header, ParsedIpv4};
    pub use crate::mutate::ByteRegion;
    pub use crate::packet::{Packet, ParsedPacket, ParsedTransport, Transport};
    pub use crate::pcap::CapturedPacket;
    pub use crate::tcp::{TcpFlags, TcpHeader};
    pub use crate::udp::UdpHeader;
    pub use crate::validate::{is_well_formed, validate_wire, Malformation, MalformationSet};
}
