//! Byte-level mutation helpers used by lib·erate's detection and
//! characterization phases.
//!
//! Differentiation detection replays a trace with every payload bit
//! *inverted* (§5.1): inversion is deterministic (unlike randomization, it
//! cannot accidentally re-create a matching keyword) and guarantees the
//! replay differs from the original at every bit. Characterization then
//! "blinds" selected byte ranges the same way to binary-search for the
//! matching fields.

use std::ops::Range;

use rand::Rng;

/// Invert every bit of a byte slice in place.
// lint: allow(checksum-repair: invert_bits) operates on payload bytes
// before packet construction; serialization computes checksums afresh.
pub fn invert_bits(data: &mut [u8]) {
    for b in data.iter_mut() {
        *b = !*b;
    }
}

/// Invert the bits of `range` within `data`, clamped to the slice.
pub fn invert_range(data: &mut [u8], range: Range<usize>) {
    let start = range.start.min(data.len());
    let end = range.end.min(data.len());
    invert_bits(&mut data[start..end]);
}

/// Return a copy with every bit inverted.
pub fn inverted(data: &[u8]) -> Vec<u8> {
    data.iter().map(|b| !b).collect()
}

/// Overwrite `range` with random bytes (the fallback control strategy when a
/// classifier detects bit inversion, §5.1 footnote 7).
// lint: allow(checksum-repair: randomize_range) pre-serialization payload
// blinding; the rebuilt packet's checksums are computed at serialize time.
pub fn randomize_range<R: Rng>(data: &mut [u8], range: Range<usize>, rng: &mut R) {
    let start = range.start.min(data.len());
    let end = range.end.min(data.len());
    rng.fill(&mut data[start..end]);
}

/// Generate `len` random bytes.
// lint: allow(checksum-repair: random_bytes) builds fresh payload material,
// not wire bytes; no checksum exists yet to repair.
pub fn random_bytes<R: Rng>(len: usize, rng: &mut R) -> Vec<u8> {
    let mut v = vec![0u8; len];
    rng.fill(&mut v[..]);
    v
}

/// A half-open byte range tagged with the packet it belongs to — the unit
/// in which characterization reports matching fields.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct ByteRegion {
    /// Index of the payload-bearing packet within the flow (0-based,
    /// counting only packets in the same direction).
    pub packet: usize,
    /// Byte range within that packet's payload.
    pub range: Range<usize>,
}

impl ByteRegion {
    pub fn new(packet: usize, range: Range<usize>) -> Self {
        ByteRegion { packet, range }
    }

    pub fn len(&self) -> usize {
        self.range.end.saturating_sub(self.range.start)
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Whether two regions on the same packet overlap.
    pub fn overlaps(&self, other: &ByteRegion) -> bool {
        self.packet == other.packet
            && self.range.start < other.range.end
            && other.range.start < self.range.end
    }
}

/// Merge overlapping/adjacent regions per packet into a minimal sorted set.
pub fn merge_regions(mut regions: Vec<ByteRegion>) -> Vec<ByteRegion> {
    regions.sort_by_key(|r| (r.packet, r.range.start, r.range.end));
    let mut out: Vec<ByteRegion> = Vec::new();
    for r in regions {
        if r.is_empty() {
            continue;
        }
        match out.last_mut() {
            Some(last) if last.packet == r.packet && r.range.start <= last.range.end => {
                last.range.end = last.range.end.max(r.range.end);
            }
            _ => out.push(r),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn inversion_is_involution() {
        let orig = b"GET / HTTP/1.1\r\nHost: example.com\r\n\r\n".to_vec();
        let mut data = orig.clone();
        invert_bits(&mut data);
        assert_ne!(data, orig);
        assert!(data.iter().zip(&orig).all(|(a, b)| *a == !*b));
        invert_bits(&mut data);
        assert_eq!(data, orig);
    }

    #[test]
    fn invert_range_clamps() {
        let mut data = vec![0u8; 4];
        invert_range(&mut data, 2..100);
        assert_eq!(data, vec![0, 0, 0xff, 0xff]);
    }

    #[test]
    fn inverted_copy_leaves_original() {
        let orig = vec![1, 2, 3];
        let inv = inverted(&orig);
        assert_eq!(orig, vec![1, 2, 3]);
        assert_eq!(inv, vec![254, 253, 252]);
    }

    #[test]
    fn randomize_is_deterministic_with_seed() {
        let mut rng1 = StdRng::seed_from_u64(7);
        let mut rng2 = StdRng::seed_from_u64(7);
        let mut a = vec![0u8; 32];
        let mut b = vec![0u8; 32];
        randomize_range(&mut a, 0..32, &mut rng1);
        randomize_range(&mut b, 0..32, &mut rng2);
        assert_eq!(a, b);
    }

    #[test]
    fn regions_overlap_logic() {
        let a = ByteRegion::new(0, 0..10);
        let b = ByteRegion::new(0, 5..15);
        let c = ByteRegion::new(0, 10..20);
        let d = ByteRegion::new(1, 0..10);
        assert!(a.overlaps(&b));
        assert!(!a.overlaps(&c)); // half-open: touching is not overlap
        assert!(!a.overlaps(&d)); // different packet
    }

    #[test]
    fn merge_regions_coalesces() {
        let merged = merge_regions(vec![
            ByteRegion::new(0, 5..15),
            ByteRegion::new(0, 0..10),
            ByteRegion::new(0, 15..20), // adjacent: merges
            ByteRegion::new(1, 3..4),
            ByteRegion::new(0, 30..30), // empty: dropped
        ]);
        assert_eq!(
            merged,
            vec![ByteRegion::new(0, 0..20), ByteRegion::new(1, 3..4)]
        );
    }
}

/// Replace the first occurrence of `find` with the same-length `replace`
/// inside the transport payload of a serialized TCP packet, repairing the
/// TCP checksum. Returns `None` if `find` is absent, lengths differ, or
/// the packet is not plain TCP. Used to model content-modifying
/// middleboxes (§4.1 lists content modification among the differentiation
/// forms lib·erate detects).
pub fn rewrite_tcp_payload(wire: &[u8], find: &[u8], replace: &[u8]) -> Option<Vec<u8>> {
    use crate::checksum::pseudo_header_checksum;
    use crate::ipv4::{protocol, ParsedIpv4};
    if find.len() != replace.len() || find.is_empty() {
        return None;
    }
    let ip = ParsedIpv4::parse(wire)?;
    if ip.protocol != protocol::TCP || ip.is_fragment() {
        return None;
    }
    let body_off = ip.payload_offset;
    let body = &wire[body_off..];
    if body.len() < crate::tcp::TCP_MIN_HEADER_LEN {
        return None;
    }
    let data_off = ((body[12] >> 4) as usize * 4).clamp(20, body.len());
    let payload_start = body_off + data_off;
    let pos = wire[payload_start..]
        .windows(find.len())
        .position(|w| w == find)?;

    let mut out = wire.to_vec();
    out[payload_start + pos..payload_start + pos + find.len()].copy_from_slice(replace);
    // Repair the TCP checksum.
    out[body_off + 16] = 0;
    out[body_off + 17] = 0;
    let ck = pseudo_header_checksum(ip.src, ip.dst, protocol::TCP, &out[body_off..]);
    out[body_off + 16..body_off + 18].copy_from_slice(&ck.to_be_bytes());
    Some(out)
}

#[cfg(test)]
mod rewrite_tests {
    use super::rewrite_tcp_payload;
    use crate::packet::{Packet, ParsedPacket};
    use crate::validate::is_well_formed;
    use std::net::Ipv4Addr;

    #[test]
    fn rewrites_and_repairs_checksum() {
        let pkt = Packet::tcp(
            Ipv4Addr::new(1, 1, 1, 1),
            Ipv4Addr::new(2, 2, 2, 2),
            10,
            80,
            7,
            9,
            &b"quality=1080p;rest"[..],
        );
        let wire = pkt.serialize();
        let out = rewrite_tcp_payload(&wire, b"1080p", b"0480p").unwrap();
        assert!(is_well_formed(&out));
        let parsed = ParsedPacket::parse(&out).unwrap();
        assert_eq!(parsed.payload, b"quality=0480p;rest");
        // Headers untouched.
        assert_eq!(parsed.tcp().unwrap().seq, 7);
    }

    #[test]
    fn refuses_bad_inputs() {
        let wire = Packet::tcp(
            Ipv4Addr::new(1, 1, 1, 1),
            Ipv4Addr::new(2, 2, 2, 2),
            10,
            80,
            0,
            0,
            &b"abc"[..],
        )
        .serialize();
        assert!(
            rewrite_tcp_payload(&wire, b"zzz", b"yyy").is_none(),
            "absent"
        );
        assert!(
            rewrite_tcp_payload(&wire, b"ab", b"xyz").is_none(),
            "length"
        );
        let udp = Packet::udp(
            Ipv4Addr::new(1, 1, 1, 1),
            Ipv4Addr::new(2, 2, 2, 2),
            1,
            2,
            &b"abc"[..],
        )
        .serialize();
        assert!(rewrite_tcp_payload(&udp, b"ab", b"xy").is_none(), "not tcp");
    }
}
