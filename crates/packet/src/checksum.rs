//! The Internet checksum (RFC 1071) and the TCP/UDP pseudo-header variants.
//!
//! Every header type in this crate lets the caller either compute the
//! correct checksum or force an arbitrary (possibly wrong) value — crafting
//! packets with deliberately bad checksums is one of lib·erate's inert-packet
//! insertion techniques (Table 3 of the paper).

use std::net::Ipv4Addr;

/// How a checksum field should be filled in when serializing a header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChecksumSpec {
    /// Compute the correct RFC 1071 checksum.
    Auto,
    /// Force this exact value (used to craft invalid packets).
    Fixed(u16),
}

impl Default for ChecksumSpec {
    fn default() -> Self {
        ChecksumSpec::Auto
    }
}

impl ChecksumSpec {
    /// Resolve the spec given the correct checksum value.
    pub fn resolve(self, correct: u16) -> u16 {
        match self {
            ChecksumSpec::Auto => correct,
            ChecksumSpec::Fixed(v) => v,
        }
    }
}

/// One's-complement sum over `data`, folding carries, without the final
/// complement. Useful for composing sums over several byte ranges.
pub fn ones_complement_sum(data: &[u8], mut acc: u32) -> u32 {
    let mut chunks = data.chunks_exact(2);
    for chunk in &mut chunks {
        acc += u32::from(u16::from_be_bytes([chunk[0], chunk[1]]));
    }
    if let [last] = chunks.remainder() {
        acc += u32::from(u16::from_be_bytes([*last, 0]));
    }
    while acc > 0xffff {
        acc = (acc & 0xffff) + (acc >> 16);
    }
    acc
}

/// Standard Internet checksum of a byte slice.
pub fn internet_checksum(data: &[u8]) -> u16 {
    !(ones_complement_sum(data, 0) as u16)
}

/// Checksum of a TCP or UDP segment including the IPv4 pseudo-header.
///
/// `proto` is the IP protocol number (6 for TCP, 17 for UDP) and `segment`
/// is the transport header plus payload with the checksum field zeroed.
pub fn pseudo_header_checksum(src: Ipv4Addr, dst: Ipv4Addr, proto: u8, segment: &[u8]) -> u16 {
    let mut acc = 0u32;
    acc = ones_complement_sum(&src.octets(), acc);
    acc = ones_complement_sum(&dst.octets(), acc);
    acc += u32::from(proto);
    // UDP length / TCP length field of the pseudo header.
    acc += segment.len() as u32;
    acc = ones_complement_sum(segment, acc);
    !(acc as u16)
}

/// Verify a checksum by summing over data that *includes* the checksum
/// field; a valid packet sums to `0xffff` before complementing.
pub fn verify_checksum(data: &[u8]) -> bool {
    ones_complement_sum(data, 0) == 0xffff
}

/// Verify the transport checksum of a segment (checksum field included)
/// against the pseudo header.
pub fn verify_pseudo_checksum(src: Ipv4Addr, dst: Ipv4Addr, proto: u8, segment: &[u8]) -> bool {
    // A UDP checksum of zero means "not computed" and is legal (RFC 768).
    if proto == 17 && segment.len() >= 8 && segment[6] == 0 && segment[7] == 0 {
        return true;
    }
    let mut acc = 0u32;
    acc = ones_complement_sum(&src.octets(), acc);
    acc = ones_complement_sum(&dst.octets(), acc);
    acc += u32::from(proto);
    acc += segment.len() as u32;
    acc = ones_complement_sum(segment, acc);
    acc == 0xffff
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rfc1071_example() {
        // Classic example from RFC 1071 §3.
        let data = [0x00u8, 0x01, 0xf2, 0x03, 0xf4, 0xf5, 0xf6, 0xf7];
        let sum = ones_complement_sum(&data, 0);
        assert_eq!(sum, 0xddf2);
        assert_eq!(internet_checksum(&data), !0xddf2u16);
    }

    #[test]
    fn odd_length_pads_with_zero() {
        assert_eq!(internet_checksum(&[0xab]), internet_checksum(&[0xab, 0x00]));
    }

    #[test]
    fn verify_roundtrip() {
        let mut header = vec![0x45u8, 0x00, 0x00, 0x14, 0x12, 0x34, 0x00, 0x00, 0x40, 0x06];
        header.extend_from_slice(&[0, 0]); // checksum placeholder
        header.extend_from_slice(&[10, 0, 0, 1, 10, 0, 0, 2]);
        let ck = internet_checksum(&header);
        header[10..12].copy_from_slice(&ck.to_be_bytes());
        assert!(verify_checksum(&header));
        header[0] ^= 0x01;
        assert!(!verify_checksum(&header));
    }

    #[test]
    fn pseudo_roundtrip_tcp() {
        let src = Ipv4Addr::new(192, 168, 0, 1);
        let dst = Ipv4Addr::new(10, 0, 0, 2);
        let mut seg = vec![
            0x1f, 0x90, 0x00, 0x50, // ports
            0, 0, 0, 1, 0, 0, 0, 0, // seq/ack
            0x50, 0x18, 0xff, 0xff, // offset/flags/window
            0x00, 0x00, 0x00, 0x00, // checksum + urgent
            b'h', b'i',
        ];
        let ck = pseudo_header_checksum(src, dst, 6, &seg);
        seg[16..18].copy_from_slice(&ck.to_be_bytes());
        assert!(verify_pseudo_checksum(src, dst, 6, &seg));
        seg[20] ^= 0xff;
        assert!(!verify_pseudo_checksum(src, dst, 6, &seg));
    }

    #[test]
    fn udp_zero_checksum_is_valid() {
        let src = Ipv4Addr::new(1, 2, 3, 4);
        let dst = Ipv4Addr::new(5, 6, 7, 8);
        let seg = vec![0x00, 0x35, 0x00, 0x35, 0x00, 0x09, 0x00, 0x00, b'x'];
        assert!(verify_pseudo_checksum(src, dst, 17, &seg));
    }

    #[test]
    fn fixed_spec_overrides() {
        assert_eq!(ChecksumSpec::Auto.resolve(0x1234), 0x1234);
        assert_eq!(ChecksumSpec::Fixed(0xdead).resolve(0x1234), 0xdead);
    }
}
