//! Minimal libpcap file writer (LINKTYPE_RAW = 101, raw IPv4 datagrams).
//!
//! Capture taps in the simulator can dump everything they saw to a `.pcap`
//! for inspection in Wireshark — the observability idiom the networking
//! guides call for.

use std::io::{self, Write};

/// LINKTYPE_RAW: packets begin directly with the IPv4 header.
pub const LINKTYPE_RAW: u32 = 101;

/// A timestamped captured packet.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CapturedPacket {
    /// Microseconds since the start of the simulation.
    pub timestamp_micros: u64,
    /// Raw wire bytes.
    pub bytes: Vec<u8>,
}

/// Write a pcap file containing `packets` to `w`.
pub fn write_pcap<W: Write>(mut w: W, packets: &[CapturedPacket]) -> io::Result<()> {
    // Global header: magic, version 2.4, thiszone 0, sigfigs 0,
    // snaplen 65535, network.
    w.write_all(&0xa1b2c3d4u32.to_le_bytes())?;
    w.write_all(&2u16.to_le_bytes())?;
    w.write_all(&4u16.to_le_bytes())?;
    w.write_all(&0i32.to_le_bytes())?;
    w.write_all(&0u32.to_le_bytes())?;
    w.write_all(&65535u32.to_le_bytes())?;
    w.write_all(&LINKTYPE_RAW.to_le_bytes())?;
    for pkt in packets {
        let secs = (pkt.timestamp_micros / 1_000_000) as u32;
        let micros = (pkt.timestamp_micros % 1_000_000) as u32;
        let len = pkt.bytes.len() as u32;
        w.write_all(&secs.to_le_bytes())?;
        w.write_all(&micros.to_le_bytes())?;
        w.write_all(&len.to_le_bytes())?;
        w.write_all(&len.to_le_bytes())?;
        w.write_all(&pkt.bytes)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pcap_layout() {
        let packets = vec![
            CapturedPacket {
                timestamp_micros: 1_500_000,
                bytes: vec![0x45, 0x00],
            },
            CapturedPacket {
                timestamp_micros: 2_000_001,
                bytes: vec![0x45],
            },
        ];
        let mut buf = Vec::new();
        write_pcap(&mut buf, &packets).unwrap();
        assert_eq!(&buf[0..4], &0xa1b2c3d4u32.to_le_bytes());
        assert_eq!(&buf[20..24], &LINKTYPE_RAW.to_le_bytes());
        // First record header at offset 24.
        assert_eq!(&buf[24..28], &1u32.to_le_bytes()); // 1 second
        assert_eq!(&buf[28..32], &500_000u32.to_le_bytes());
        assert_eq!(&buf[32..36], &2u32.to_le_bytes()); // included length
        assert_eq!(buf.len(), 24 + 16 + 2 + 16 + 1);
    }

    #[test]
    fn empty_capture_is_just_header() {
        let mut buf = Vec::new();
        write_pcap(&mut buf, &[]).unwrap();
        assert_eq!(buf.len(), 24);
    }
}
