//! The composite packet type: an IPv4 header plus a transport header plus a
//! payload, serializable to wire bytes, and a tolerant parsed view.
//!
//! Wire bytes (`Vec<u8>`) are the canonical unit exchanged inside the
//! simulator — exactly what would cross a real link — so that middleboxes,
//! router hops, and endpoint stacks each apply *their own* interpretation of
//! possibly-malformed data, which is the entire premise of the paper.

use std::net::Ipv4Addr;

use crate::buf::{PacketBuf, WireBytes};
use crate::ipv4::{protocol, Ipv4Header, ParsedIpv4};
use crate::tcp::{ParsedTcp, TcpFlags, TcpHeader};
use crate::udp::{ParsedUdp, UdpHeader};

/// The transport layer carried by a [`Packet`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Transport {
    Tcp(TcpHeader),
    Udp(UdpHeader),
    /// No transport header: the payload sits directly after the IP header.
    /// The associated value is the protocol number to advertise.
    Raw(u8),
}

/// A packet under construction. Serializing never fails: invalid field
/// combinations are the point.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Packet {
    pub ip: Ipv4Header,
    pub transport: Transport,
    pub payload: Vec<u8>,
}

impl Packet {
    /// A TCP data segment with PSH+ACK.
    pub fn tcp(
        src: Ipv4Addr,
        dst: Ipv4Addr,
        src_port: u16,
        dst_port: u16,
        seq: u32,
        ack: u32,
        payload: impl Into<Vec<u8>>,
    ) -> Packet {
        Packet {
            ip: Ipv4Header::new(src, dst),
            transport: Transport::Tcp(TcpHeader::new(src_port, dst_port, seq, ack)),
            payload: payload.into(),
        }
    }

    /// A UDP datagram.
    pub fn udp(
        src: Ipv4Addr,
        dst: Ipv4Addr,
        src_port: u16,
        dst_port: u16,
        payload: impl Into<Vec<u8>>,
    ) -> Packet {
        Packet {
            ip: Ipv4Header::new(src, dst),
            transport: Transport::Udp(UdpHeader::new(src_port, dst_port)),
            payload: payload.into(),
        }
    }

    /// Mutable access to the TCP header; panics if not TCP. Convenience for
    /// the evasion transforms, which know what they built — a mismatch is
    /// a construction bug, not a runtime condition.
    pub fn tcp_mut(&mut self) -> &mut TcpHeader {
        match &mut self.transport {
            Transport::Tcp(h) => h,
            // lint: allow(no-panic) documented contract: caller constructed the packet as TCP
            other => panic!("expected TCP transport, found {other:?}"),
        }
    }

    /// Mutable access to the UDP header; panics if not UDP.
    pub fn udp_mut(&mut self) -> &mut UdpHeader {
        match &mut self.transport {
            Transport::Udp(h) => h,
            // lint: allow(no-panic) documented contract: caller constructed the packet as UDP
            other => panic!("expected UDP transport, found {other:?}"),
        }
    }

    /// Set TCP flags (convenience; panics if not TCP).
    pub fn with_flags(mut self, flags: TcpFlags) -> Packet {
        self.tcp_mut().flags = flags;
        self
    }

    /// Serialize to wire bytes.
    pub fn serialize(&self) -> Vec<u8> {
        let (derived_proto, segment) = match &self.transport {
            Transport::Tcp(h) => (
                protocol::TCP,
                h.serialize(self.ip.src, self.ip.dst, &self.payload),
            ),
            Transport::Udp(h) => (
                protocol::UDP,
                h.serialize(self.ip.src, self.ip.dst, &self.payload),
            ),
            Transport::Raw(p) => (*p, self.payload.clone()),
        };
        let mut out = self.ip.serialize(derived_proto, segment.len());
        out.extend_from_slice(&segment);
        out
    }
}

/// Parsed transport layer of a [`ParsedPacket`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParsedTransport {
    Tcp(ParsedTcp),
    Udp(ParsedUdp),
    /// Unknown or unparsable transport; the protocol number is recorded.
    Other(u8),
}

/// A tolerant parsed view over wire bytes. Everything that can be extracted
/// is extracted; judgments about validity live in [`crate::validate`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParsedPacket {
    pub ip: ParsedIpv4,
    pub transport: ParsedTransport,
    /// Transport payload bytes actually present in the buffer — a shared
    /// view of the wire buffer when parsed from a [`PacketBuf`], never a
    /// copy.
    pub payload: PacketBuf,
    /// The full wire bytes this view was parsed from.
    pub wire_len: usize,
}

impl ParsedPacket {
    /// Parse wire bytes. Returns `None` only when there is no usable IPv4
    /// fixed header at all.
    ///
    /// Accepts any [`WireBytes`] input: parsing a [`PacketBuf`] yields a
    /// zero-copy payload view sharing the wire buffer; raw slices and
    /// `Vec<u8>` inputs (tests, legacy callers) materialize the payload.
    pub fn parse<W: WireBytes + ?Sized>(input: &W) -> Option<ParsedPacket> {
        let buf = input.wire();
        let ip = ParsedIpv4::parse(buf)?;
        let body_start = ip.payload_offset.min(buf.len());
        let body = &buf[body_start..];
        // Fragments with non-zero offset carry raw payload, not a transport
        // header.
        let transport = if ip.fragment_offset > 0 {
            ParsedTransport::Other(ip.protocol)
        } else {
            match ip.protocol {
                protocol::TCP => match ParsedTcp::parse(body) {
                    Some(t) => ParsedTransport::Tcp(t),
                    None => ParsedTransport::Other(protocol::TCP),
                },
                protocol::UDP => match ParsedUdp::parse(body) {
                    Some(u) => ParsedTransport::Udp(u),
                    None => ParsedTransport::Other(protocol::UDP),
                },
                other => ParsedTransport::Other(other),
            }
        };
        let payload_start = body_start
            + match &transport {
                ParsedTransport::Tcp(t) => t.payload_offset.min(body.len()),
                ParsedTransport::Udp(_) => crate::udp::UDP_HEADER_LEN.min(body.len()),
                ParsedTransport::Other(_) => 0,
            };
        Some(ParsedPacket {
            ip,
            transport,
            payload: input.tail_view(payload_start),
            wire_len: buf.len(),
        })
    }

    /// Source port if a transport header was parsed.
    pub fn src_port(&self) -> Option<u16> {
        match &self.transport {
            ParsedTransport::Tcp(t) => Some(t.src_port),
            ParsedTransport::Udp(u) => Some(u.src_port),
            ParsedTransport::Other(_) => None,
        }
    }

    /// Destination port if a transport header was parsed.
    pub fn dst_port(&self) -> Option<u16> {
        match &self.transport {
            ParsedTransport::Tcp(t) => Some(t.dst_port),
            ParsedTransport::Udp(u) => Some(u.dst_port),
            ParsedTransport::Other(_) => None,
        }
    }

    /// TCP view, if this is a parsed TCP packet.
    pub fn tcp(&self) -> Option<&ParsedTcp> {
        match &self.transport {
            ParsedTransport::Tcp(t) => Some(t),
            _ => None,
        }
    }

    /// UDP view, if this is a parsed UDP packet.
    pub fn udp(&self) -> Option<&ParsedUdp> {
        match &self.transport {
            ParsedTransport::Udp(u) => Some(u),
            _ => None,
        }
    }

    /// True when this packet carries transport payload bytes.
    pub fn has_payload(&self) -> bool {
        !self.payload.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn addr(a: u8) -> Ipv4Addr {
        Ipv4Addr::new(10, 0, 0, a)
    }

    #[test]
    fn tcp_packet_roundtrip() {
        let pkt = Packet::tcp(addr(1), addr(2), 40000, 80, 100, 200, &b"hello"[..]);
        let wire = pkt.serialize();
        let parsed = ParsedPacket::parse(&wire).unwrap();
        assert_eq!(parsed.ip.protocol, protocol::TCP);
        assert_eq!(parsed.src_port(), Some(40000));
        assert_eq!(parsed.dst_port(), Some(80));
        assert_eq!(parsed.payload, b"hello");
        assert_eq!(parsed.wire_len, wire.len());
    }

    #[test]
    fn udp_packet_roundtrip() {
        let pkt = Packet::udp(addr(1), addr(2), 3478, 3478, &b"stun!"[..]);
        let wire = pkt.serialize();
        let parsed = ParsedPacket::parse(&wire).unwrap();
        assert_eq!(parsed.ip.protocol, protocol::UDP);
        assert_eq!(parsed.payload, b"stun!");
        assert!(parsed.udp().is_some());
    }

    #[test]
    fn wrong_protocol_override_carries_tcp_bytes() {
        // The "wrong IP protocol" technique: a valid TCP segment whose IP
        // header advertises an unassigned protocol number.
        let mut pkt = Packet::tcp(addr(1), addr(2), 1, 2, 0, 0, &b"GET /"[..]);
        pkt.ip.protocol = Some(protocol::UNASSIGNED);
        let wire = pkt.serialize();
        let parsed = ParsedPacket::parse(&wire).unwrap();
        assert_eq!(parsed.ip.protocol, protocol::UNASSIGNED);
        // Parsed per the advertised protocol: opaque bytes.
        assert!(matches!(parsed.transport, ParsedTransport::Other(_)));
        // But the raw body still contains the TCP header + payload, which a
        // sloppy DPI engine might parse anyway.
        assert!(parsed.payload.windows(5).any(|w| w == b"GET /"));
    }

    #[test]
    fn raw_transport() {
        let pkt = Packet {
            ip: Ipv4Header::new(addr(1), addr(2)),
            transport: Transport::Raw(protocol::ICMP),
            payload: vec![8, 0, 0, 0],
        };
        let wire = pkt.serialize();
        let parsed = ParsedPacket::parse(&wire).unwrap();
        assert_eq!(parsed.ip.protocol, protocol::ICMP);
        assert_eq!(parsed.payload, vec![8, 0, 0, 0]);
    }

    #[test]
    fn fragment_body_is_not_parsed_as_transport() {
        let mut pkt = Packet::tcp(addr(1), addr(2), 1, 2, 0, 0, &b"abcdefgh"[..]);
        pkt.ip.fragment_offset = 3;
        let wire = pkt.serialize();
        let parsed = ParsedPacket::parse(&wire).unwrap();
        assert!(matches!(parsed.transport, ParsedTransport::Other(_)));
    }

    #[test]
    fn with_flags_builder() {
        let pkt = Packet::tcp(addr(1), addr(2), 1, 2, 9, 9, vec![]).with_flags(TcpFlags::RST);
        let parsed = ParsedPacket::parse(&pkt.serialize()).unwrap();
        assert!(parsed.tcp().unwrap().flags.rst);
    }
}
