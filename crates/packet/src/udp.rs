//! UDP header construction and parsing, with length and checksum overrides
//! for the UDP inert-packet techniques.

use std::net::Ipv4Addr;

use crate::checksum::{pseudo_header_checksum, ChecksumSpec};

/// UDP header length in bytes.
pub const UDP_HEADER_LEN: usize = 8;

/// A UDP header. `length` can be overridden to claim more or fewer bytes
/// than the datagram actually carries ("UDP Length longer/shorter than
/// payload" in Table 3).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UdpHeader {
    pub src_port: u16,
    pub dst_port: u16,
    /// Length override (header + payload). `None` derives the real size.
    pub length: Option<u16>,
    pub checksum: ChecksumSpec,
}

impl UdpHeader {
    pub fn new(src_port: u16, dst_port: u16) -> Self {
        UdpHeader {
            src_port,
            dst_port,
            length: None,
            checksum: ChecksumSpec::Auto,
        }
    }

    /// Serialize the datagram (header + payload) with the pseudo-header
    /// checksum computed against `src`/`dst` unless overridden.
    pub fn serialize(&self, src: Ipv4Addr, dst: Ipv4Addr, payload: &[u8]) -> Vec<u8> {
        let length = self
            .length
            .unwrap_or((UDP_HEADER_LEN + payload.len()) as u16);
        let mut out = Vec::with_capacity(UDP_HEADER_LEN + payload.len());
        out.extend_from_slice(&self.src_port.to_be_bytes());
        out.extend_from_slice(&self.dst_port.to_be_bytes());
        out.extend_from_slice(&length.to_be_bytes());
        out.extend_from_slice(&[0, 0]); // checksum placeholder
        out.extend_from_slice(payload);
        let ck = self.checksum.resolve(pseudo_header_checksum(
            src,
            dst,
            crate::ipv4::protocol::UDP,
            &out,
        ));
        // RFC 768: a computed checksum of zero is transmitted as 0xffff
        // (zero means "no checksum").
        let ck = if ck == 0 && self.checksum == ChecksumSpec::Auto {
            0xffff
        } else {
            ck
        };
        out[6..8].copy_from_slice(&ck.to_be_bytes());
        out
    }
}

/// A parsed UDP datagram view.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParsedUdp {
    pub src_port: u16,
    pub dst_port: u16,
    pub length: u16,
    pub checksum: u16,
    /// Number of payload bytes actually present in the buffer.
    pub actual_payload_len: usize,
}

impl ParsedUdp {
    pub fn parse(buf: &[u8]) -> Option<ParsedUdp> {
        if buf.len() < UDP_HEADER_LEN {
            return None;
        }
        Some(ParsedUdp {
            src_port: u16::from_be_bytes([buf[0], buf[1]]),
            dst_port: u16::from_be_bytes([buf[2], buf[3]]),
            length: u16::from_be_bytes([buf[4], buf[5]]),
            checksum: u16::from_be_bytes([buf[6], buf[7]]),
            actual_payload_len: buf.len() - UDP_HEADER_LEN,
        })
    }

    /// Payload length claimed by the header, saturating at zero for
    /// lengths smaller than the header itself.
    pub fn claimed_payload_len(&self) -> usize {
        (self.length as usize).saturating_sub(UDP_HEADER_LEN)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn addrs() -> (Ipv4Addr, Ipv4Addr) {
        (Ipv4Addr::new(10, 0, 0, 1), Ipv4Addr::new(10, 0, 0, 2))
    }

    #[test]
    fn roundtrip() {
        let (src, dst) = addrs();
        let dgram = UdpHeader::new(3478, 3478).serialize(src, dst, b"stun");
        let parsed = ParsedUdp::parse(&dgram).unwrap();
        assert_eq!(parsed.src_port, 3478);
        assert_eq!(parsed.length, 12);
        assert_eq!(parsed.actual_payload_len, 4);
        assert_eq!(parsed.claimed_payload_len(), 4);
        assert!(crate::checksum::verify_pseudo_checksum(
            src, dst, 17, &dgram
        ));
    }

    #[test]
    fn length_overrides() {
        let (src, dst) = addrs();
        let mut hdr = UdpHeader::new(1, 2);
        hdr.length = Some(100);
        let long = hdr.serialize(src, dst, b"abc");
        let parsed = ParsedUdp::parse(&long).unwrap();
        assert_eq!(parsed.length, 100);
        assert_eq!(parsed.actual_payload_len, 3);
        assert!(parsed.claimed_payload_len() > parsed.actual_payload_len);

        hdr.length = Some(9); // claims 1 byte of payload while carrying 3
        let short = hdr.serialize(src, dst, b"abc");
        let parsed = ParsedUdp::parse(&short).unwrap();
        assert_eq!(parsed.claimed_payload_len(), 1);
    }

    #[test]
    fn forced_bad_checksum() {
        let (src, dst) = addrs();
        let mut hdr = UdpHeader::new(1, 2);
        hdr.checksum = ChecksumSpec::Fixed(0x0bad);
        let dgram = hdr.serialize(src, dst, b"xyz");
        assert!(!crate::checksum::verify_pseudo_checksum(
            src, dst, 17, &dgram
        ));
    }

    #[test]
    fn zero_checksum_means_unchecked() {
        let (src, dst) = addrs();
        let mut hdr = UdpHeader::new(1, 2);
        hdr.checksum = ChecksumSpec::Fixed(0);
        let dgram = hdr.serialize(src, dst, b"xyz");
        assert!(crate::checksum::verify_pseudo_checksum(
            src, dst, 17, &dgram
        ));
    }

    #[test]
    fn parse_short_fails() {
        assert!(ParsedUdp::parse(&[0u8; 7]).is_none());
    }
}
