//! Packet-level validation: every structural check a host, router, or
//! middlebox *could* perform, reported individually.
//!
//! The paper's central observation is that different devices perform
//! different subsets of these checks (§4.3, Table 3): the testbed DPI box
//! skips most of them, the GFC performs nearly all, endpoints' OSes each
//! have their own set. Consumers therefore receive the full list of
//! [`Malformation`]s and apply their own policy about which ones matter.

use std::collections::BTreeSet;

use serde::{Deserialize, Serialize};

use crate::checksum::{verify_checksum, verify_pseudo_checksum};
use crate::ipv4::{protocol, scan_options, OptionScan, ParsedIpv4, IPV4_MIN_HEADER_LEN};
use crate::packet::{ParsedPacket, ParsedTransport};
use crate::tcp::TCP_MIN_HEADER_LEN;
use crate::udp::UDP_HEADER_LEN;

/// A structural defect in a single packet. The variants map one-to-one onto
/// the inert-packet rows of Table 3 (flow-context defects such as a wrong
/// sequence number are judged by stateful components, not here).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Malformation {
    /// IP version field is not 4.
    IpVersionInvalid,
    /// IHL below 5, or the claimed header length overruns the packet.
    IpHeaderLengthInvalid,
    /// Total-length field claims more bytes than were received.
    IpTotalLengthLong,
    /// Total-length field claims fewer bytes than were received.
    IpTotalLengthShort,
    /// IP header checksum does not verify.
    IpChecksumWrong,
    /// Structurally invalid IP options.
    IpOptionsInvalid,
    /// Deprecated (RFC 6814) IP options such as Stream ID or Security.
    IpOptionsDeprecated,
    /// Protocol number is not TCP, UDP, or ICMP.
    IpProtocolUnknown,
    /// TTL is zero on arrival.
    TtlExpired,
    /// TCP checksum does not verify against the pseudo header.
    TcpChecksumWrong,
    /// TCP data offset below 5 or overrunning the segment.
    TcpDataOffsetInvalid,
    /// A flag combination no compliant stack emits (SYN+FIN, none, ...).
    TcpFlagsInvalid,
    /// A data-bearing, non-SYN, non-RST segment without the ACK flag
    /// (RFC 793 requires ACK on established-state segments).
    TcpAckFlagMissing,
    /// Truncated transport header.
    TransportTruncated,
    /// UDP checksum present but wrong.
    UdpChecksumWrong,
    /// UDP length field claims more bytes than were received.
    UdpLengthLong,
    /// UDP length field claims fewer bytes than were received.
    UdpLengthShort,
}

/// An ordered set of malformations found in one packet.
pub type MalformationSet = BTreeSet<Malformation>;

/// Run every structural check against raw wire bytes.
///
/// Checks on the transport layer are skipped for *all* fragments: a
/// non-first fragment carries no transport header, and a first fragment
/// (MF set) carries only part of the segment, so its transport checksum
/// cannot be verified by any on-path device.
pub fn validate_wire(buf: &[u8]) -> MalformationSet {
    let mut out = MalformationSet::new();
    let Some(pkt) = ParsedPacket::parse(buf) else {
        out.insert(Malformation::IpHeaderLengthInvalid);
        return out;
    };
    validate_ip(&pkt.ip, buf, &mut out);
    if !pkt.ip.is_fragment() {
        validate_transport(&pkt, buf, &mut out);
    }
    out
}

fn validate_ip(ip: &ParsedIpv4, buf: &[u8], out: &mut MalformationSet) {
    if ip.version != 4 {
        out.insert(Malformation::IpVersionInvalid);
    }
    if ip.ihl < 5 || ip.claimed_header_len() > buf.len() {
        out.insert(Malformation::IpHeaderLengthInvalid);
    }
    let total = ip.total_length as usize;
    if total > buf.len() {
        out.insert(Malformation::IpTotalLengthLong);
    }
    if total < buf.len() && total >= IPV4_MIN_HEADER_LEN {
        out.insert(Malformation::IpTotalLengthShort);
    }
    if total < IPV4_MIN_HEADER_LEN {
        out.insert(Malformation::IpTotalLengthShort);
    }
    let header_end = ip
        .claimed_header_len()
        .min(buf.len())
        .max(IPV4_MIN_HEADER_LEN);
    if buf.len() >= IPV4_MIN_HEADER_LEN && !verify_checksum(&buf[..header_end]) {
        out.insert(Malformation::IpChecksumWrong);
    }
    match scan_options(&ip.options) {
        OptionScan::Invalid => {
            out.insert(Malformation::IpOptionsInvalid);
        }
        OptionScan::Deprecated => {
            out.insert(Malformation::IpOptionsDeprecated);
        }
        OptionScan::None | OptionScan::Valid => {}
    }
    if !matches!(ip.protocol, protocol::TCP | protocol::UDP | protocol::ICMP) {
        out.insert(Malformation::IpProtocolUnknown);
    }
    if ip.ttl == 0 {
        out.insert(Malformation::TtlExpired);
    }
}

fn validate_transport(pkt: &ParsedPacket, buf: &[u8], out: &mut MalformationSet) {
    let body = &buf[pkt.ip.payload_offset.min(buf.len())..];
    match &pkt.transport {
        ParsedTransport::Tcp(t) => {
            if !verify_pseudo_checksum(pkt.ip.src, pkt.ip.dst, protocol::TCP, body) {
                out.insert(Malformation::TcpChecksumWrong);
            }
            if t.data_offset < 5 || t.claimed_header_len() > body.len() {
                out.insert(Malformation::TcpDataOffsetInvalid);
            }
            if t.flags.is_invalid_combination() {
                out.insert(Malformation::TcpFlagsInvalid);
            }
            if !pkt.payload.is_empty() && !t.flags.ack && !t.flags.syn && !t.flags.rst {
                out.insert(Malformation::TcpAckFlagMissing);
            }
        }
        ParsedTransport::Udp(u) => {
            if !verify_pseudo_checksum(pkt.ip.src, pkt.ip.dst, protocol::UDP, body) {
                out.insert(Malformation::UdpChecksumWrong);
            }
            let claimed = u.length as usize;
            if claimed > body.len() {
                out.insert(Malformation::UdpLengthLong);
            }
            if claimed < body.len() || claimed < UDP_HEADER_LEN {
                out.insert(Malformation::UdpLengthShort);
            }
        }
        ParsedTransport::Other(proto) => {
            // A truncated TCP/UDP header parses as Other.
            if (*proto == protocol::TCP && body.len() < TCP_MIN_HEADER_LEN)
                || (*proto == protocol::UDP && body.len() < UDP_HEADER_LEN)
            {
                out.insert(Malformation::TransportTruncated);
            }
        }
    }
}

/// True when a packet is fully well-formed.
pub fn is_well_formed(buf: &[u8]) -> bool {
    validate_wire(buf).is_empty()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::checksum::ChecksumSpec;
    use crate::ipv4::IpOption;
    use crate::packet::Packet;
    use crate::tcp::TcpFlags;
    use std::net::Ipv4Addr;

    fn base_tcp() -> Packet {
        Packet::tcp(
            Ipv4Addr::new(10, 0, 0, 1),
            Ipv4Addr::new(10, 0, 0, 2),
            40000,
            80,
            1,
            1,
            &b"GET / HTTP/1.1\r\nHost: x\r\n\r\n"[..],
        )
    }

    fn base_udp() -> Packet {
        Packet::udp(
            Ipv4Addr::new(10, 0, 0, 1),
            Ipv4Addr::new(10, 0, 0, 2),
            3478,
            3478,
            &b"payload"[..],
        )
    }

    #[test]
    fn well_formed_packets_pass() {
        assert!(is_well_formed(&base_tcp().serialize()));
        assert!(is_well_formed(&base_udp().serialize()));
    }

    #[test]
    fn each_ip_defect_is_detected() {
        let mut p = base_tcp();
        p.ip.version = 7;
        assert!(validate_wire(&p.serialize()).contains(&Malformation::IpVersionInvalid));

        let mut p = base_tcp();
        p.ip.ihl = Some(3);
        assert!(validate_wire(&p.serialize()).contains(&Malformation::IpHeaderLengthInvalid));

        let mut p = base_tcp();
        p.ip.total_length = Some(4000);
        assert!(validate_wire(&p.serialize()).contains(&Malformation::IpTotalLengthLong));

        let mut p = base_tcp();
        p.ip.total_length = Some(24);
        assert!(validate_wire(&p.serialize()).contains(&Malformation::IpTotalLengthShort));

        let mut p = base_tcp();
        p.ip.checksum = ChecksumSpec::Fixed(0x1111);
        assert!(validate_wire(&p.serialize()).contains(&Malformation::IpChecksumWrong));

        let mut p = base_tcp();
        p.ip.options = vec![IpOption::InvalidOverrun {
            kind: 0x99,
            claimed_len: 60,
        }];
        assert!(validate_wire(&p.serialize()).contains(&Malformation::IpOptionsInvalid));

        let mut p = base_tcp();
        p.ip.options = vec![IpOption::StreamId(1)];
        assert!(validate_wire(&p.serialize()).contains(&Malformation::IpOptionsDeprecated));

        let mut p = base_tcp();
        p.ip.protocol = Some(253);
        assert!(validate_wire(&p.serialize()).contains(&Malformation::IpProtocolUnknown));

        let mut p = base_tcp();
        p.ip.ttl = 0;
        assert!(validate_wire(&p.serialize()).contains(&Malformation::TtlExpired));
    }

    #[test]
    fn each_tcp_defect_is_detected() {
        let mut p = base_tcp();
        p.tcp_mut().checksum = ChecksumSpec::Fixed(0x2222);
        assert!(validate_wire(&p.serialize()).contains(&Malformation::TcpChecksumWrong));

        let mut p = base_tcp();
        p.tcp_mut().data_offset = Some(12);
        assert!(validate_wire(&p.serialize()).contains(&Malformation::TcpDataOffsetInvalid));

        let mut p = base_tcp();
        p.tcp_mut().flags = TcpFlags::XMAS;
        assert!(validate_wire(&p.serialize()).contains(&Malformation::TcpFlagsInvalid));

        let mut p = base_tcp();
        p.tcp_mut().flags = TcpFlags::PSH_ONLY;
        assert!(validate_wire(&p.serialize()).contains(&Malformation::TcpAckFlagMissing));
    }

    #[test]
    fn each_udp_defect_is_detected() {
        let mut p = base_udp();
        p.udp_mut().checksum = ChecksumSpec::Fixed(0x3333);
        assert!(validate_wire(&p.serialize()).contains(&Malformation::UdpChecksumWrong));

        let mut p = base_udp();
        p.udp_mut().length = Some(500);
        assert!(validate_wire(&p.serialize()).contains(&Malformation::UdpLengthLong));

        let mut p = base_udp();
        p.udp_mut().length = Some(9);
        assert!(validate_wire(&p.serialize()).contains(&Malformation::UdpLengthShort));
    }

    #[test]
    fn syn_without_ack_is_fine() {
        let mut p = base_tcp();
        p.payload.clear();
        p.tcp_mut().flags = TcpFlags::SYN;
        assert!(is_well_formed(&p.serialize()));
    }

    #[test]
    fn fragments_skip_transport_checks() {
        let mut p = base_tcp();
        p.ip.fragment_offset = 10;
        // The "TCP header" bytes are now mid-stream payload; no TCP checks.
        let set = validate_wire(&p.serialize());
        assert!(!set.contains(&Malformation::TcpChecksumWrong));
    }

    #[test]
    fn multiple_defects_all_reported() {
        let mut p = base_tcp();
        p.ip.ttl = 0;
        p.ip.checksum = ChecksumSpec::Fixed(1);
        p.tcp_mut().flags = TcpFlags::XMAS;
        let set = validate_wire(&p.serialize());
        assert!(set.contains(&Malformation::TtlExpired));
        assert!(set.contains(&Malformation::IpChecksumWrong));
        assert!(set.contains(&Malformation::TcpFlagsInvalid));
        assert!(set.len() >= 3);
    }
}
