//! IPv4 fragmentation and reassembly.
//!
//! Used in three places: the evasion transforms split packets into fragments
//! ("Break packet into fragments", Table 3), endpoint stacks reassemble them
//! per their OS profile, and some middleboxes reassemble while others give
//! up — exactly the inconsistency lib·erate exploits.

use std::collections::HashMap;
use std::net::Ipv4Addr;

use crate::checksum::internet_checksum;
use crate::ipv4::{ParsedIpv4, IPV4_MIN_HEADER_LEN};

/// Split a serialized IPv4 packet into fragments whose payloads are at most
/// `max_fragment_payload` bytes (rounded down to a multiple of 8, minimum 8).
///
/// Returns the original packet unchanged if it already fits or is itself a
/// fragment with the DF bit set.
pub fn fragment_packet(wire: &[u8], max_fragment_payload: usize) -> Vec<Vec<u8>> {
    let Some(ip) = ParsedIpv4::parse(wire) else {
        return vec![wire.to_vec()];
    };
    let header_len = ip.payload_offset;
    let payload = &wire[header_len..];
    let chunk = (max_fragment_payload / 8).max(1) * 8;
    if payload.len() <= chunk {
        return vec![wire.to_vec()];
    }

    let mut fragments = Vec::new();
    let mut offset_units = ip.fragment_offset as usize;
    let mut remaining = payload;
    while !remaining.is_empty() {
        let take = remaining.len().min(chunk);
        let (part, rest) = remaining.split_at(take);
        let more = !rest.is_empty() || ip.more_fragments;

        let mut frag = wire[..header_len].to_vec();
        let total_length = (header_len + part.len()) as u16;
        frag[2..4].copy_from_slice(&total_length.to_be_bytes());
        let mut flags_frag = (offset_units as u16) & 0x1fff;
        if more {
            flags_frag |= 0x2000;
        }
        frag[6..8].copy_from_slice(&flags_frag.to_be_bytes());
        frag[10..12].copy_from_slice(&[0, 0]);
        let ck = internet_checksum(&frag[..header_len]);
        frag[10..12].copy_from_slice(&ck.to_be_bytes());
        frag.extend_from_slice(part);
        fragments.push(frag);

        offset_units += take / 8;
        remaining = rest;
    }
    fragments
}

/// Key identifying a datagram being reassembled (RFC 791).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FragmentKey {
    pub src: Ipv4Addr,
    pub dst: Ipv4Addr,
    pub identification: u16,
    pub protocol: u8,
}

/// Policy for overlapping fragment data. Different stacks resolve overlaps
/// differently, which NIDS-evasion work (Ptacek & Newsham) exploits; we
/// support both so OS profiles and middleboxes can diverge.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum OverlapPolicy {
    /// Earlier-arriving data wins (BSD-style).
    #[default]
    FirstWins,
    /// Later-arriving data wins (some middleboxes / Linux for new data).
    LastWins,
}

struct PendingDatagram {
    /// Received payload spans: (offset_bytes, data).
    spans: Vec<(usize, Vec<u8>)>,
    /// Total payload length, known once the final fragment arrives.
    total_len: Option<usize>,
    /// Header bytes from the first fragment (offset 0).
    first_header: Option<Vec<u8>>,
}

/// Reassembles fragmented IPv4 datagrams.
pub struct Reassembler {
    policy: OverlapPolicy,
    pending: HashMap<FragmentKey, PendingDatagram>,
}

impl Reassembler {
    pub fn new(policy: OverlapPolicy) -> Self {
        Reassembler {
            policy,
            pending: HashMap::new(),
        }
    }

    /// Number of datagrams currently awaiting fragments.
    pub fn pending_count(&self) -> usize {
        self.pending.len()
    }

    /// Feed one wire packet. Non-fragments are returned unchanged. Returns
    /// `Some(complete_datagram)` when reassembly finishes, `None` while
    /// fragments are still missing.
    pub fn push(&mut self, wire: &[u8]) -> Option<Vec<u8>> {
        let ip = ParsedIpv4::parse(wire)?;
        if !ip.is_fragment() {
            return Some(wire.to_vec());
        }
        let key = FragmentKey {
            src: ip.src,
            dst: ip.dst,
            identification: ip.identification,
            protocol: ip.protocol,
        };
        let header_len = ip.payload_offset;
        let payload = wire[header_len..].to_vec();
        let offset_bytes = ip.fragment_offset as usize * 8;

        let entry = self.pending.entry(key).or_insert_with(|| PendingDatagram {
            spans: Vec::new(),
            total_len: None,
            first_header: None,
        });
        if ip.fragment_offset == 0 {
            entry.first_header = Some(wire[..header_len].to_vec());
        }
        if !ip.more_fragments {
            entry.total_len = Some(offset_bytes + payload.len());
        }
        entry.spans.push((offset_bytes, payload));

        let total = entry.total_len?;
        let header = entry.first_header.clone()?;
        // Try to assemble.
        let mut buf = vec![None::<u8>; total];
        let spans: Box<dyn Iterator<Item = &(usize, Vec<u8>)>> = match self.policy {
            // FirstWins: apply later arrivals first so earlier overwrite...
            // simpler: iterate in arrival order and only fill empty slots.
            OverlapPolicy::FirstWins => Box::new(entry.spans.iter()),
            OverlapPolicy::LastWins => Box::new(entry.spans.iter().rev()),
        };
        for (off, data) in spans {
            for (i, b) in data.iter().enumerate() {
                let idx = off + i;
                if idx < total && buf[idx].is_none() {
                    buf[idx] = Some(*b);
                }
            }
        }
        if buf.iter().any(|b| b.is_none()) {
            return None; // holes remain
        }
        self.pending.remove(&key);

        // No holes remain (checked above), so flatten keeps every byte.
        let payload: Vec<u8> = buf.into_iter().flatten().collect();
        let mut out = header;
        let header_len = out.len();
        let total_length = (header_len + payload.len()) as u16;
        out[2..4].copy_from_slice(&total_length.to_be_bytes());
        out[6..8].copy_from_slice(&[0, 0]); // clear MF + offset
        out[10..12].copy_from_slice(&[0, 0]);
        let ck = internet_checksum(&out[..header_len.max(IPV4_MIN_HEADER_LEN)]);
        out[10..12].copy_from_slice(&ck.to_be_bytes());
        out.extend_from_slice(&payload);
        Some(out)
    }

    /// Drop all partially reassembled state (e.g. on timeout).
    pub fn clear(&mut self) {
        self.pending.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::{Packet, ParsedPacket};
    use std::net::Ipv4Addr;

    fn packet_with_payload(n: usize) -> Vec<u8> {
        let payload: Vec<u8> = (0..n).map(|i| (i % 251) as u8).collect();
        let mut p = Packet::tcp(
            Ipv4Addr::new(10, 0, 0, 1),
            Ipv4Addr::new(10, 0, 0, 2),
            40000,
            80,
            1,
            1,
            payload,
        );
        p.ip.identification = 0x4242;
        p.serialize()
    }

    #[test]
    fn small_packet_not_fragmented() {
        let wire = packet_with_payload(100);
        let frags = fragment_packet(&wire, 1400);
        assert_eq!(frags.len(), 1);
        assert_eq!(frags[0], wire);
    }

    #[test]
    fn fragment_and_reassemble_roundtrip() {
        let wire = packet_with_payload(1000);
        let frags = fragment_packet(&wire, 256);
        assert!(frags.len() > 1);
        // Every fragment except the last has MF set; offsets are 8-aligned.
        for (i, f) in frags.iter().enumerate() {
            let ip = ParsedIpv4::parse(f).unwrap();
            assert_eq!(ip.more_fragments, i + 1 != frags.len());
            assert!(crate::checksum::verify_checksum(&f[..ip.payload_offset]));
        }
        let mut reasm = Reassembler::new(OverlapPolicy::FirstWins);
        let mut done = None;
        for f in &frags {
            done = reasm.push(f);
        }
        let done = done.expect("reassembly completes on the last fragment");
        let orig = ParsedPacket::parse(&wire).unwrap();
        let got = ParsedPacket::parse(&done).unwrap();
        assert_eq!(orig.payload, got.payload);
        assert_eq!(got.ip.fragment_offset, 0);
        assert!(!got.ip.more_fragments);
    }

    #[test]
    fn out_of_order_fragments_reassemble() {
        let wire = packet_with_payload(2000);
        let mut frags = fragment_packet(&wire, 512);
        frags.reverse();
        let mut reasm = Reassembler::new(OverlapPolicy::FirstWins);
        let mut done = None;
        for f in &frags {
            let r = reasm.push(f);
            if r.is_some() {
                done = r;
            }
        }
        let done = done.expect("reassembly completes");
        assert_eq!(
            ParsedPacket::parse(&done).unwrap().payload,
            ParsedPacket::parse(&wire).unwrap().payload
        );
    }

    #[test]
    fn missing_fragment_keeps_pending() {
        let wire = packet_with_payload(1000);
        let frags = fragment_packet(&wire, 256);
        let mut reasm = Reassembler::new(OverlapPolicy::FirstWins);
        for f in frags.iter().skip(1) {
            assert!(reasm.push(f).is_none());
        }
        assert_eq!(reasm.pending_count(), 1);
        reasm.clear();
        assert_eq!(reasm.pending_count(), 0);
    }

    #[test]
    fn non_fragment_passes_through() {
        let wire = packet_with_payload(64);
        let mut reasm = Reassembler::new(OverlapPolicy::FirstWins);
        assert_eq!(reasm.push(&wire), Some(wire));
    }

    #[test]
    fn overlap_policies_differ() {
        // Two fragments whose data overlaps in bytes 8..16 of the datagram
        // payload: the first covers 0..16 with 0xaa, the second covers
        // 8..24 with 0xbb and terminates the datagram.
        let mk = |offset_units: u16, more: bool, fill: u8, len: usize| {
            let mut p = Packet {
                ip: crate::ipv4::Ipv4Header::new(
                    Ipv4Addr::new(10, 0, 0, 1),
                    Ipv4Addr::new(10, 0, 0, 2),
                ),
                transport: crate::packet::Transport::Raw(253),
                payload: vec![fill; len],
            };
            p.ip.identification = 7;
            p.ip.fragment_offset = offset_units;
            p.ip.more_fragments = more;
            p.serialize()
        };
        let a = mk(0, true, 0xaa, 16);
        let b = mk(1, false, 0xbb, 16); // starts at byte 8

        let check = |policy: OverlapPolicy, want_overlap: u8| {
            let mut reasm = Reassembler::new(policy);
            assert!(reasm.push(&a).is_none());
            let done = reasm.push(&b).unwrap();
            let payload = &done[20..];
            assert_eq!(payload.len(), 24);
            assert!(payload[0..8].iter().all(|&x| x == 0xaa));
            assert!(payload[8..16].iter().all(|&x| x == want_overlap));
            assert!(payload[16..24].iter().all(|&x| x == 0xbb));
        };
        check(OverlapPolicy::FirstWins, 0xaa);
        check(OverlapPolicy::LastWins, 0xbb);
    }
}
