//! TCP header construction and parsing, with support for invalid flag
//! combinations, bogus data offsets, and forced checksums.

use std::net::Ipv4Addr;

use crate::checksum::{pseudo_header_checksum, ChecksumSpec};

/// Minimum TCP header length in bytes (data offset = 5).
pub const TCP_MIN_HEADER_LEN: usize = 20;

/// TCP flag bits.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct TcpFlags {
    pub fin: bool,
    pub syn: bool,
    pub rst: bool,
    pub psh: bool,
    pub ack: bool,
    pub urg: bool,
    pub ece: bool,
    pub cwr: bool,
}

impl TcpFlags {
    pub const SYN: TcpFlags = TcpFlags {
        syn: true,
        ..TcpFlags::empty()
    };
    pub const SYN_ACK: TcpFlags = TcpFlags {
        syn: true,
        ack: true,
        ..TcpFlags::empty()
    };
    pub const ACK: TcpFlags = TcpFlags {
        ack: true,
        ..TcpFlags::empty()
    };
    pub const PSH_ACK: TcpFlags = TcpFlags {
        psh: true,
        ack: true,
        ..TcpFlags::empty()
    };
    pub const RST: TcpFlags = TcpFlags {
        rst: true,
        ..TcpFlags::empty()
    };
    pub const FIN_ACK: TcpFlags = TcpFlags {
        fin: true,
        ack: true,
        ..TcpFlags::empty()
    };
    /// The classic invalid "Christmas tree" combination: SYN+FIN+RST set at
    /// once. Used by the "invalid flag combination" inert technique.
    pub const XMAS: TcpFlags = TcpFlags {
        syn: true,
        fin: true,
        rst: true,
        ..TcpFlags::empty()
    };
    /// PSH without ACK on an established flow — data packets must carry ACK
    /// (RFC 793); omitting it is the "ACK flag not set" technique.
    pub const PSH_ONLY: TcpFlags = TcpFlags {
        psh: true,
        ..TcpFlags::empty()
    };

    const fn empty() -> TcpFlags {
        TcpFlags {
            fin: false,
            syn: false,
            rst: false,
            psh: false,
            ack: false,
            urg: false,
            ece: false,
            cwr: false,
        }
    }

    /// Encode into the low 8 bits of the flags field.
    pub fn to_byte(self) -> u8 {
        (self.fin as u8)
            | (self.syn as u8) << 1
            | (self.rst as u8) << 2
            | (self.psh as u8) << 3
            | (self.ack as u8) << 4
            | (self.urg as u8) << 5
            | (self.ece as u8) << 6
            | (self.cwr as u8) << 7
    }

    /// Decode from the low 8 bits of the flags field.
    pub fn from_byte(b: u8) -> TcpFlags {
        TcpFlags {
            fin: b & 0x01 != 0,
            syn: b & 0x02 != 0,
            rst: b & 0x04 != 0,
            psh: b & 0x08 != 0,
            ack: b & 0x10 != 0,
            urg: b & 0x20 != 0,
            ece: b & 0x40 != 0,
            cwr: b & 0x80 != 0,
        }
    }

    /// Whether this is a combination no compliant stack ever emits
    /// (e.g. SYN+FIN, SYN+RST, or no flags at all).
    pub fn is_invalid_combination(self) -> bool {
        let none_set = !(self.fin || self.syn || self.rst || self.psh || self.ack || self.urg);
        (self.syn && self.fin) || (self.syn && self.rst) || (self.rst && self.fin) || none_set
    }
}

/// A TCP header. `data_offset` and `checksum` can be overridden to craft
/// malformed segments.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TcpHeader {
    pub src_port: u16,
    pub dst_port: u16,
    pub seq: u32,
    pub ack: u32,
    /// Data offset override in 32-bit words; `None` derives from options.
    pub data_offset: Option<u8>,
    pub flags: TcpFlags,
    pub window: u16,
    pub checksum: ChecksumSpec,
    pub urgent: u16,
    /// Raw option bytes; padded to a 4-byte boundary when serialized.
    pub options: Vec<u8>,
}

impl TcpHeader {
    /// A data segment with PSH+ACK set, window 65535.
    pub fn new(src_port: u16, dst_port: u16, seq: u32, ack: u32) -> Self {
        TcpHeader {
            src_port,
            dst_port,
            seq,
            ack,
            data_offset: None,
            flags: TcpFlags::PSH_ACK,
            window: 65535,
            checksum: ChecksumSpec::Auto,
            urgent: 0,
            options: Vec::new(),
        }
    }

    /// Actual serialized header length in bytes.
    pub fn actual_header_len(&self) -> usize {
        TCP_MIN_HEADER_LEN + (self.options.len() + 3) / 4 * 4
    }

    /// Serialize the segment (header + payload), computing the pseudo-header
    /// checksum against `src`/`dst` unless overridden.
    pub fn serialize(&self, src: Ipv4Addr, dst: Ipv4Addr, payload: &[u8]) -> Vec<u8> {
        let mut options = self.options.clone();
        while options.len() % 4 != 0 {
            options.push(0); // pad with EOL
        }
        let header_len = TCP_MIN_HEADER_LEN + options.len();
        let offset = self.data_offset.unwrap_or((header_len / 4) as u8) & 0x0f;

        let mut out = Vec::with_capacity(header_len + payload.len());
        out.extend_from_slice(&self.src_port.to_be_bytes());
        out.extend_from_slice(&self.dst_port.to_be_bytes());
        out.extend_from_slice(&self.seq.to_be_bytes());
        out.extend_from_slice(&self.ack.to_be_bytes());
        out.push(offset << 4);
        out.push(self.flags.to_byte());
        out.extend_from_slice(&self.window.to_be_bytes());
        out.extend_from_slice(&[0, 0]); // checksum placeholder
        out.extend_from_slice(&self.urgent.to_be_bytes());
        out.extend_from_slice(&options);
        out.extend_from_slice(payload);

        let ck = self.checksum.resolve(pseudo_header_checksum(
            src,
            dst,
            crate::ipv4::protocol::TCP,
            &out,
        ));
        out[16..18].copy_from_slice(&ck.to_be_bytes());
        out
    }
}

/// A parsed (possibly malformed) TCP segment view.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParsedTcp {
    pub src_port: u16,
    pub dst_port: u16,
    pub seq: u32,
    pub ack: u32,
    pub data_offset: u8,
    pub flags: TcpFlags,
    pub window: u16,
    pub checksum: u16,
    pub urgent: u16,
    pub options: Vec<u8>,
    /// Offset of the payload within the segment buffer, per the data offset
    /// field (clamped to the buffer).
    pub payload_offset: usize,
}

impl ParsedTcp {
    /// Parse a TCP segment. Returns `None` if fewer than 20 bytes.
    pub fn parse(buf: &[u8]) -> Option<ParsedTcp> {
        if buf.len() < TCP_MIN_HEADER_LEN {
            return None;
        }
        let data_offset = buf[12] >> 4;
        let claimed = (data_offset as usize) * 4;
        let header_end = claimed.max(TCP_MIN_HEADER_LEN).min(buf.len());
        Some(ParsedTcp {
            src_port: u16::from_be_bytes([buf[0], buf[1]]),
            dst_port: u16::from_be_bytes([buf[2], buf[3]]),
            seq: u32::from_be_bytes([buf[4], buf[5], buf[6], buf[7]]),
            ack: u32::from_be_bytes([buf[8], buf[9], buf[10], buf[11]]),
            data_offset,
            flags: TcpFlags::from_byte(buf[13]),
            window: u16::from_be_bytes([buf[14], buf[15]]),
            checksum: u16::from_be_bytes([buf[16], buf[17]]),
            urgent: u16::from_be_bytes([buf[18], buf[19]]),
            options: buf[TCP_MIN_HEADER_LEN..header_end].to_vec(),
            payload_offset: header_end,
        })
    }

    /// Claimed header length per the data offset field, in bytes.
    pub fn claimed_header_len(&self) -> usize {
        (self.data_offset as usize) * 4
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn addrs() -> (Ipv4Addr, Ipv4Addr) {
        (Ipv4Addr::new(10, 0, 0, 1), Ipv4Addr::new(10, 0, 0, 2))
    }

    #[test]
    fn roundtrip() {
        let (src, dst) = addrs();
        let hdr = TcpHeader::new(40000, 80, 1000, 2000);
        let seg = hdr.serialize(src, dst, b"GET / HTTP/1.1\r\n");
        let parsed = ParsedTcp::parse(&seg).unwrap();
        assert_eq!(parsed.src_port, 40000);
        assert_eq!(parsed.dst_port, 80);
        assert_eq!(parsed.seq, 1000);
        assert_eq!(parsed.ack, 2000);
        assert_eq!(parsed.data_offset, 5);
        assert_eq!(parsed.flags, TcpFlags::PSH_ACK);
        assert_eq!(&seg[parsed.payload_offset..], b"GET / HTTP/1.1\r\n");
        assert!(crate::checksum::verify_pseudo_checksum(src, dst, 6, &seg));
    }

    #[test]
    fn flag_byte_roundtrip_all_256() {
        for b in 0..=255u8 {
            assert_eq!(TcpFlags::from_byte(b).to_byte(), b);
        }
    }

    #[test]
    fn invalid_combinations_detected() {
        assert!(TcpFlags::XMAS.is_invalid_combination());
        assert!(TcpFlags::from_byte(0).is_invalid_combination());
        assert!(TcpFlags::from_byte(0x03).is_invalid_combination()); // SYN+FIN
        assert!(!TcpFlags::SYN.is_invalid_combination());
        assert!(!TcpFlags::PSH_ACK.is_invalid_combination());
        assert!(!TcpFlags::RST.is_invalid_combination());
    }

    #[test]
    fn forced_checksum_and_offset() {
        let (src, dst) = addrs();
        let mut hdr = TcpHeader::new(1, 2, 0, 0);
        hdr.checksum = ChecksumSpec::Fixed(0xbad0);
        hdr.data_offset = Some(15);
        let seg = hdr.serialize(src, dst, b"x");
        let parsed = ParsedTcp::parse(&seg).unwrap();
        assert_eq!(parsed.checksum, 0xbad0);
        assert_eq!(parsed.data_offset, 15);
        assert_eq!(parsed.claimed_header_len(), 60);
        // Claimed header overruns the actual segment; payload clamps away.
        assert_eq!(parsed.payload_offset, seg.len());
        assert!(!crate::checksum::verify_pseudo_checksum(src, dst, 6, &seg));
    }

    #[test]
    fn options_padded() {
        let (src, dst) = addrs();
        let mut hdr = TcpHeader::new(1, 2, 0, 0);
        hdr.options = vec![2, 4, 0x05, 0xb4]; // MSS 1460
        let seg = hdr.serialize(src, dst, &[]);
        let parsed = ParsedTcp::parse(&seg).unwrap();
        assert_eq!(parsed.data_offset, 6);
        assert_eq!(parsed.options, vec![2, 4, 0x05, 0xb4]);
    }

    #[test]
    fn parse_short_fails() {
        assert!(ParsedTcp::parse(&[0u8; 19]).is_none());
    }
}
