//! Property tests for the wire-format layer: parsers never panic on
//! arbitrary bytes, crafted defects are always detected, round-trips are
//! exact.

use proptest::prelude::*;

use liberate_packet::checksum::ChecksumSpec;
use liberate_packet::fragment::{fragment_packet, OverlapPolicy, Reassembler};
use liberate_packet::ipv4::{scan_options, IpOption, ParsedIpv4};
use liberate_packet::packet::{Packet, ParsedPacket};
use liberate_packet::tcp::{ParsedTcp, TcpFlags};
use liberate_packet::udp::ParsedUdp;
use liberate_packet::validate::{validate_wire, Malformation};
use std::net::Ipv4Addr;

proptest! {
    /// No parser panics on arbitrary input bytes.
    #[test]
    fn parsers_are_total(bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
        let _ = ParsedPacket::parse(&bytes);
        let _ = ParsedIpv4::parse(&bytes);
        let _ = ParsedTcp::parse(&bytes);
        let _ = ParsedUdp::parse(&bytes);
        let _ = validate_wire(&bytes);
        let _ = scan_options(&bytes);
    }

    /// TcpFlags byte encoding is a bijection.
    #[test]
    fn tcp_flags_bijective(b in any::<u8>()) {
        prop_assert_eq!(TcpFlags::from_byte(b).to_byte(), b);
    }

    /// Every single-field corruption is detected as exactly the
    /// corresponding malformation (and a clean packet has none).
    #[test]
    fn crafted_defects_always_detected(
        payload in proptest::collection::vec(any::<u8>(), 1..512),
        which in 0usize..6,
    ) {
        let mut p = Packet::tcp(
            Ipv4Addr::new(10, 0, 0, 1),
            Ipv4Addr::new(10, 0, 0, 2),
            1000, 80, 7, 9, payload,
        );
        let expected = match which {
            0 => { p.ip.version = 6; Malformation::IpVersionInvalid }
            1 => { p.ip.checksum = ChecksumSpec::Fixed(0x0bad); Malformation::IpChecksumWrong }
            2 => { p.tcp_mut().checksum = ChecksumSpec::Fixed(0x0bad); Malformation::TcpChecksumWrong }
            3 => { p.tcp_mut().flags = TcpFlags::XMAS; Malformation::TcpFlagsInvalid }
            4 => { p.ip.options = vec![IpOption::StreamId(3)]; Malformation::IpOptionsDeprecated }
            _ => { p.ip.protocol = Some(200); Malformation::IpProtocolUnknown }
        };
        let defects = validate_wire(&p.serialize());
        prop_assert!(defects.contains(&expected), "{which}: {defects:?}");
    }

    /// Fragmenting at any granularity and reassembling in any rotation of
    /// the fragment order is the identity on payload.
    #[test]
    fn fragmentation_identity_under_rotation(
        payload in proptest::collection::vec(any::<u8>(), 64..2048),
        chunk in 8usize..512,
        rot in 0usize..16,
    ) {
        let mut p = Packet::udp(
            Ipv4Addr::new(10, 0, 0, 1),
            Ipv4Addr::new(10, 0, 0, 2),
            5000, 53, payload.clone(),
        );
        p.ip.identification = 0x77;
        let wire = p.serialize();
        let mut frags = fragment_packet(&wire, chunk);
        let n = frags.len();
        frags.rotate_left(rot % n);
        let mut r = Reassembler::new(OverlapPolicy::FirstWins);
        let mut done = None;
        for f in &frags {
            if let Some(w) = r.push(f) {
                done = Some(w);
            }
        }
        let done = done.expect("complete");
        prop_assert_eq!(ParsedPacket::parse(&done).unwrap().payload, payload);
    }

    /// Serialized IP headers always carry a self-consistent checksum when
    /// crafted with Auto, whatever the options.
    #[test]
    fn auto_checksums_verify(
        opt_kind in 0usize..4,
        ttl in 1u8..=255,
        id in any::<u16>(),
    ) {
        let mut p = Packet::tcp(
            Ipv4Addr::new(192, 168, 1, 1),
            Ipv4Addr::new(192, 168, 1, 2),
            1, 2, 3, 4, vec![9u8; 32],
        );
        p.ip.ttl = ttl;
        p.ip.identification = id;
        p.ip.options = match opt_kind {
            0 => vec![],
            1 => vec![IpOption::Nop, IpOption::Nop],
            2 => vec![IpOption::RecordRoute { pointer: 4, data: vec![0; 8] }],
            _ => vec![IpOption::StreamId(id)],
        };
        let wire = p.serialize();
        let ip = ParsedIpv4::parse(&wire).unwrap();
        prop_assert!(liberate_packet::checksum::verify_checksum(&wire[..ip.payload_offset]));
    }

    /// The flow key canonicalization is stable: canonical(canonical(k)) ==
    /// canonical(k), and both directions agree.
    #[test]
    fn flow_canonicalization(
        a in any::<u32>(), b in any::<u32>(),
        pa in any::<u16>(), pb in any::<u16>(),
        proto in prop_oneof![Just(6u8), Just(17u8)],
    ) {
        use liberate_packet::flow::FlowKey;
        let k = FlowKey::new(Ipv4Addr::from(a), Ipv4Addr::from(b), pa, pb, proto);
        let c = k.canonical();
        prop_assert_eq!(c.canonical(), c);
        prop_assert_eq!(k.reverse().canonical(), c);
    }
}
