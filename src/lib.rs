//! Umbrella crate for the lib·erate reproduction workspace.
//!
//! This crate only re-exports the workspace members so that the root-level
//! `examples/` and `tests/` can use one import path. The real code lives in
//! the member crates:
//!
//! - [`liberate_packet`] — wire formats (IPv4/TCP/UDP), checksums, fragments.
//! - [`liberate_netsim`] — deterministic discrete-event network simulator.
//! - [`liberate_dpi`] — configurable DPI middlebox with calibrated profiles.
//! - [`liberate_traces`] — synthetic application traffic (HTTP/TLS/STUN/QUIC).
//! - [`liberate`] — the paper's contribution: detection, characterization,
//!   evasion, and deployment.

pub use liberate;
pub use liberate_dpi;
pub use liberate_netsim;
pub use liberate_packet;
pub use liberate_traces;
